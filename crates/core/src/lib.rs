//! # clgemm — auto-tuned OpenCL GEMM on simulated GPUs and CPUs
//!
//! A reproduction of *"Performance Tuning of Matrix Multiplication in
//! OpenCL on Different GPUs and CPUs"* (Matsumoto, Nakasato, Sedukhin,
//! SC Companion 2012): a code generator for `C ← α·Aᵀ·B + β·C` kernels in
//! OpenCL C, a heuristic search engine that tunes the generator's
//! parameters per processor, and a GEMM routine layer that serves all
//! four BLAS GEMM types through the tuned kernel.
//!
//! Since this workspace targets *simulated* devices (see `clgemm-device`
//! and `clgemm-sim`), "measuring" a kernel means running a calibrated
//! analytic timing model, while *correctness* is established end to end:
//! generated source is compiled by the `clgemm-clc` OpenCL C frontend and
//! executed with true work-group semantics, then compared bit-for-bit
//! against a native oracle.
//!
//! ## Quickstart
//!
//! ```
//! use clgemm::prelude::*;
//!
//! // Pick a device and tune (a thinned space keeps doctests fast).
//! let device = DeviceId::Tahiti.spec();
//! let space = SearchSpace::smoke(&device);
//! let opts = SearchOpts { top_k: 5, max_sweep_points: 4, ..Default::default() };
//! let result = tune(&device, Precision::F64, &space, &opts);
//! assert!(result.verified);
//!
//! // Wrap the winners into a BLAS-like routine.
//! let tuned = TunedGemm::new(
//!     device,
//!     result.best.params,
//!     clgemm::params::small_test_params(Precision::F32),
//! );
//! let a = Matrix::<f64>::test_pattern(64, 48, StorageOrder::ColMajor, 1);
//! let b = Matrix::<f64>::test_pattern(48, 32, StorageOrder::ColMajor, 2);
//! let mut c = Matrix::<f64>::zeros(64, 32, StorageOrder::ColMajor);
//! let run = tuned.gemm(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
//! assert!(run.gflops > 0.0);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`params`] | §III | the parameter space and its constraints |
//! | [`codegen`] | §III-A..E | OpenCL C kernel emission (BA/PL/DB) |
//! | [`profile`] | §III/§IV | analytic launch profiles for the timing model |
//! | [`executor`] | — | native oracle with generated-kernel numerics |
//! | [`tuner`] | §III-F | candidate enumeration + 3-stage search |
//! | [`routine`] | §III-D/§IV-B | pack/pad + kernel + merge GEMM layer |
//! | [`tile`] | §III-B (host) | SIMD-width-aware register-tile selection |
//! | [`direct`] | §V (future work) | copy-free guarded kernel for small sizes |
//! | [`repo`] | — | persistence of tuning results |
//! | [`predict`] | §III inverted | analytical parameter prediction, zero search |
//! | [`tuning_db`] | — | versioned on-disk tuning database for serving |

pub mod batched;
pub mod codegen;
pub mod direct;
pub mod executor;
pub mod paper_params;
pub mod params;
pub mod predict;
pub mod profile;
pub mod repo;
pub mod routine;
pub mod tile;
pub mod tuner;
pub mod tuning_db;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::batched::{BatchOptions, BatchPath, BatchRun, DIRECT_BATCH_MAX};
    pub use crate::codegen::{generate, GeneratedKernel, KERNEL_NAME};
    pub use crate::direct::{generate_direct, DirectParams, DIRECT_KERNEL_NAME};
    pub use crate::params::{Algorithm, KernelParams, StrideMode};
    pub use crate::predict::{
        predict, predict_best, predict_enabled, FeasibleSet, Prediction, PruneReason,
    };
    pub use crate::repo::{KernelRepo, RepoError, SCHEMA_VERSION};
    pub use crate::routine::{GemmPath, GemmRun, HybridGemm, PackDecision, TunedGemm};
    pub use crate::tile::{TileDecision, TileReason, TileSelector};
    pub use crate::tuner::{tune, Measurement, SearchOpts, SearchSpace, TuningResult};
    pub use crate::tuning_db::{DbError, DbKey, TuningDb, DB_SCHEMA_VERSION};
    pub use clgemm_blas::layout::BlockLayout;
    pub use clgemm_blas::matrix::{Matrix, StorageOrder};
    pub use clgemm_blas::scalar::{Precision, Scalar};
    pub use clgemm_blas::{
        BatchError, BatchWorkspace, Bf16, GemmBatch, GemmType, StorageScalar, Trans, Workspace, F16,
    };
    pub use clgemm_device::{DeviceId, DeviceSpec};
}
