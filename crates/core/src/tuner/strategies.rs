//! Alternative search strategies.
//!
//! The paper's engine measures *every* heuristically enumerated candidate
//! (cheap here, five-plus hours on real hardware). On a real device a
//! sample-efficient strategy matters, so this module adds three classic
//! auto-tuning searches over the same space and the `strategies`
//! experiment compares their quality-vs-evaluations trade-off:
//!
//! * [`Strategy::Random`] — uniform sampling;
//! * [`Strategy::CoordinateDescent`] — greedy one-knob-at-a-time
//!   refinement with restarts (the ATLAS approach);
//! * [`Strategy::Anneal`] — simulated annealing over one-knob mutations.
//!
//! All strategies "measure" through the same deterministic model as the
//! exhaustive search, so results are exactly comparable.

use crate::params::KernelParams;
use crate::tuner::search::{measure_gflops, Measurement};
use crate::tuner::space::SearchSpace;
use clgemm_blas::scalar::Precision;
use clgemm_device::{DeviceKind, DeviceSpec};
use clgemm_shim::Rng;

/// A search strategy over a [`SearchSpace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Measure every candidate (the paper's approach).
    Exhaustive,
    /// Measure `samples` uniformly random candidates.
    Random { samples: usize, seed: u64 },
    /// Greedy per-knob refinement from `restarts` random starting points.
    CoordinateDescent { restarts: usize, seed: u64 },
    /// Simulated annealing for `iters` steps.
    Anneal { iters: usize, seed: u64 },
}

/// Outcome of a strategy run.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    pub best: Measurement,
    /// Number of timing-model evaluations spent.
    pub evaluations: usize,
    /// Size of the underlying candidate space.
    pub space_size: usize,
}

/// Stage-1 problem size (same rule as the exhaustive search).
fn eval_n(p: &KernelParams, dev: &DeviceSpec) -> usize {
    let base = match dev.kind {
        DeviceKind::Gpu => 4096,
        DeviceKind::Cpu => 1536,
    };
    let lcm = p.lcm_block().max(1);
    if lcm > base {
        clgemm_blas::layout::round_up(base, lcm)
    } else {
        (base / lcm) * lcm
    }
}

struct Evaluator<'a> {
    dev: &'a DeviceSpec,
    count: usize,
}

impl<'a> Evaluator<'a> {
    fn eval(&mut self, p: &KernelParams) -> f64 {
        self.count += 1;
        measure_gflops(p, self.dev, eval_n(p, self.dev)).unwrap_or(0.0)
    }
}

/// Run a strategy.
///
/// # Panics
/// Panics if the space enumerates to nothing on the device.
#[must_use]
pub fn tune_with_strategy(
    dev: &DeviceSpec,
    precision: Precision,
    space: &SearchSpace,
    strategy: Strategy,
) -> StrategyResult {
    let candidates = space.enumerate(dev, precision);
    assert!(!candidates.is_empty(), "empty search space");
    let space_size = candidates.len();
    let mut ev = Evaluator { dev, count: 0 };

    let (best_params, best_g) = match strategy {
        Strategy::Exhaustive => {
            let mut best = (candidates[0], f64::MIN);
            for p in &candidates {
                let g = ev.eval(p);
                if g > best.1 {
                    best = (*p, g);
                }
            }
            best
        }
        Strategy::Random { samples, seed } => {
            let mut rng = Rng::new(seed);
            let mut best = (candidates[0], f64::MIN);
            for _ in 0..samples.max(1) {
                let p = rng.choose(&candidates).expect("non-empty");
                let g = ev.eval(p);
                if g > best.1 {
                    best = (*p, g);
                }
            }
            best
        }
        Strategy::CoordinateDescent { restarts, seed } => {
            let mut rng = Rng::new(seed);
            let mut best = (candidates[0], f64::MIN);
            for _ in 0..restarts.max(1) {
                let start = *rng.choose(&candidates).expect("non-empty");
                let (p, g) = descend(start, space, dev, precision, &mut ev);
                if g > best.1 {
                    best = (p, g);
                }
            }
            best
        }
        Strategy::Anneal { iters, seed } => {
            let mut rng = Rng::new(seed);
            let mut cur = *rng.choose(&candidates).expect("non-empty");
            let mut cur_g = ev.eval(&cur);
            let mut best = (cur, cur_g);
            let t0 = (best.1.max(1.0)) * 0.2;
            for step in 0..iters.max(1) {
                let temp = t0 * (1.0 - step as f64 / iters.max(1) as f64) + 1e-9;
                let Some(next) = mutate(&cur, space, dev, precision, &mut rng) else {
                    continue;
                };
                let next_g = ev.eval(&next);
                let accept = next_g >= cur_g || rng.f64() < ((next_g - cur_g) / temp).exp();
                if accept {
                    cur = next;
                    cur_g = next_g;
                    if cur_g > best.1 {
                        best = (cur, cur_g);
                    }
                }
            }
            best
        }
    };

    StrategyResult {
        best: Measurement {
            params: best_params,
            n: eval_n(&best_params, dev),
            gflops: best_g,
        },
        evaluations: ev.count,
        space_size,
    }
}

/// All single-knob variants of `p` present in the space lists.
fn neighbors(p: &KernelParams, space: &SearchSpace, precision: Precision) -> Vec<KernelParams> {
    let mut out = Vec::new();
    let mut push = |q: KernelParams| {
        if q != *p && q.validate().is_ok() {
            out.push(q);
        }
    };
    for &(mdimc, ndimc) in &space.wg_shapes {
        let mut q = *p;
        // Keep the work-item tile, move the group shape.
        q.mwg = mdimc * p.mwi();
        q.nwg = ndimc * p.nwi();
        q.mdimc = mdimc;
        q.ndimc = ndimc;
        q.mdima = mdimc;
        q.ndimb = ndimc;
        push(q);
    }
    for &(mwi, nwi) in &space.wi_tiles {
        let mut q = *p;
        q.mwg = p.mdimc * mwi;
        q.nwg = p.ndimc * nwi;
        push(q);
    }
    for &kwg in &space.kwg {
        let mut q = *p;
        q.kwg = kwg;
        push(q);
    }
    for &kwi in &space.kwi {
        let mut q = *p;
        q.kwi = kwi;
        push(q);
    }
    for &vw in &space.vw {
        let mut q = *p;
        q.vw = vw;
        push(q);
    }
    for &(sm, sn) in &space.strides {
        let mut q = *p;
        q.stride_m = sm;
        q.stride_n = sn;
        push(q);
    }
    for &(la, lb) in &space.locals {
        let mut q = *p;
        q.local_a = la;
        q.local_b = lb;
        push(q);
    }
    for &(la, lb) in &space.layouts {
        let mut q = *p;
        q.layout_a = la;
        q.layout_b = lb;
        push(q);
    }
    for &alg in &space.algorithms {
        let mut q = *p;
        q.algorithm = alg;
        if alg != crate::params::Algorithm::Ba {
            q.local_a = true;
            q.local_b = true;
        }
        push(q);
    }
    let _ = precision;
    out
}

/// Greedy descent: accept the best neighbour until none improves.
fn descend(
    start: KernelParams,
    space: &SearchSpace,
    _dev: &DeviceSpec,
    precision: Precision,
    ev: &mut Evaluator<'_>,
) -> (KernelParams, f64) {
    let mut cur = start;
    let mut cur_g = ev.eval(&cur);
    loop {
        let mut improved = false;
        for q in neighbors(&cur, space, precision) {
            let g = ev.eval(&q);
            if g > cur_g {
                cur = q;
                cur_g = g;
                improved = true;
            }
        }
        if !improved {
            return (cur, cur_g);
        }
    }
}

/// One random single-knob mutation.
fn mutate(
    p: &KernelParams,
    space: &SearchSpace,
    _dev: &DeviceSpec,
    precision: Precision,
    rng: &mut Rng,
) -> Option<KernelParams> {
    let nbs = neighbors(p, space, precision);
    rng.choose(&nbs).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    fn setup() -> (DeviceSpec, SearchSpace) {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        (dev, space)
    }

    #[test]
    fn exhaustive_matches_candidate_count() {
        let (dev, space) = setup();
        let res = tune_with_strategy(&dev, Precision::F64, &space, Strategy::Exhaustive);
        assert_eq!(res.evaluations, res.space_size);
        assert!(res.best.gflops > 0.0);
    }

    #[test]
    fn random_uses_exactly_its_budget() {
        let (dev, space) = setup();
        let res = tune_with_strategy(
            &dev,
            Precision::F64,
            &space,
            Strategy::Random {
                samples: 40,
                seed: 7,
            },
        );
        assert_eq!(res.evaluations, 40);
        assert!(res.best.gflops > 0.0);
    }

    #[test]
    fn coordinate_descent_beats_random_at_similar_budget() {
        let (dev, space) = setup();
        let cd = tune_with_strategy(
            &dev,
            Precision::F64,
            &space,
            Strategy::CoordinateDescent {
                restarts: 2,
                seed: 3,
            },
        );
        let rnd = tune_with_strategy(
            &dev,
            Precision::F64,
            &space,
            Strategy::Random {
                samples: cd.evaluations,
                seed: 3,
            },
        );
        assert!(
            cd.best.gflops >= 0.95 * rnd.best.gflops,
            "CD {} vs random {} at {} evals",
            cd.best.gflops,
            rnd.best.gflops,
            cd.evaluations
        );
    }

    #[test]
    fn heuristic_strategies_approach_the_exhaustive_optimum() {
        let (dev, space) = setup();
        let full = tune_with_strategy(&dev, Precision::F64, &space, Strategy::Exhaustive);
        let cd = tune_with_strategy(
            &dev,
            Precision::F64,
            &space,
            Strategy::CoordinateDescent {
                restarts: 3,
                seed: 11,
            },
        );
        assert!(
            cd.best.gflops >= 0.9 * full.best.gflops,
            "CD reached {} of exhaustive {}",
            cd.best.gflops,
            full.best.gflops
        );
        assert!(
            cd.evaluations < full.evaluations,
            "CD must be sample-efficient"
        );
        let sa = tune_with_strategy(
            &dev,
            Precision::F64,
            &space,
            Strategy::Anneal {
                iters: 150,
                seed: 11,
            },
        );
        assert!(
            sa.best.gflops >= 0.8 * full.best.gflops,
            "SA reached {} of exhaustive {}",
            sa.best.gflops,
            full.best.gflops
        );
    }

    #[test]
    fn strategies_are_deterministic_given_a_seed() {
        let (dev, space) = setup();
        let a = tune_with_strategy(
            &dev,
            Precision::F32,
            &space,
            Strategy::Anneal { iters: 50, seed: 5 },
        );
        let b = tune_with_strategy(
            &dev,
            Precision::F32,
            &space,
            Strategy::Anneal { iters: 50, seed: 5 },
        );
        assert_eq!(a.best.params, b.best.params);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn neighbors_are_valid_and_distinct() {
        let (dev, space) = setup();
        let cands = space.enumerate(&dev, Precision::F64);
        let nbs = neighbors(&cands[0], &space, Precision::F64);
        assert!(!nbs.is_empty());
        for n in &nbs {
            n.validate().unwrap();
            assert_ne!(n, &cands[0]);
        }
    }
}
