//! The heuristic search engine (§III-F).
//!
//! The paper searches "tens of thousands of kernel variants per single
//! GEMM type on an OpenCL device", keeping only kernels that survive code
//! generation, compilation and testing, and selects the fastest in a
//! three-stage procedure. This module reproduces that engine:
//!
//! * [`space`] — heuristic enumeration of candidate parameter sets, with
//!   every knob restrictable (the ablation benches fix one dimension at a
//!   time);
//! * [`search`] — the three-stage procedure of §III-F: measure every
//!   candidate at `N = ⌊base/LCM⌋·LCM` (4096 base on GPUs, 1536 on CPUs),
//!   re-measure the fastest 50 across all `N` multiples of LCM up to
//!   8192, pick the winner, then functionally verify it end-to-end
//!   (generate → compile → execute in the VM → compare against the
//!   reference GEMM).

pub mod search;
pub mod space;
pub mod strategies;

pub use search::{tune, Measurement, SearchOpts, TuningResult};
pub use space::SearchSpace;
pub use strategies::{tune_with_strategy, Strategy, StrategyResult};
