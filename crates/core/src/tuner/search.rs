//! The three-stage search procedure (§III-F) plus functional verification.

use crate::codegen::{generate, KERNEL_NAME};
use crate::executor::run_native;
use crate::params::KernelParams;
use crate::profile::launch_profile;
use crate::tuner::space::SearchSpace;
use clgemm_blas::layout::round_up;
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, ExecOptions, Program};
use clgemm_device::{estimate, DeviceKind, DeviceSpec};
use clgemm_shim::{Json, JsonError};
use clgemm_trace::Registry;

/// Options for one tuning run.
#[derive(Debug, Clone)]
pub struct SearchOpts {
    /// How many stage-1 survivors get the full size sweep (paper: 50).
    pub top_k: usize,
    /// Stage-2 sweep upper bound (paper: 8192).
    pub max_n: usize,
    /// Stage-1 base problem size; `None` picks the paper's default
    /// (4096 on GPUs, 1536 on CPUs).
    pub stage1_base: Option<usize>,
    /// Cap on stage-2 sweep points per kernel (the paper measures every
    /// LCM multiple; a cap keeps tests fast without changing winners).
    pub max_sweep_points: usize,
    /// Functionally verify the winner (generate → compile → run in the
    /// VM → compare against the reference) before reporting it.
    pub verify_winner: bool,
    /// Multiplicative measurement noise amplitude (0 = deterministic).
    /// Used by robustness tests of the selection procedure.
    pub noise: f64,
    /// Seed for the noise generator.
    pub noise_seed: u64,
    /// Prune stage 1 through the analytical predictor's feasible set
    /// ([`crate::predict::FeasibleSet`]) before measuring — ≥10× fewer
    /// candidates with the winner preserved (within model noise).
    pub predictor_prune: bool,
}

impl Default for SearchOpts {
    fn default() -> Self {
        SearchOpts {
            top_k: 50,
            max_n: 8192,
            stage1_base: None,
            max_sweep_points: 64,
            verify_winner: true,
            noise: 0.0,
            noise_seed: 0,
            predictor_prune: false,
        }
    }
}

/// One measured kernel: parameters plus achieved GFlop/s.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub params: KernelParams,
    /// Problem size of the best measurement.
    pub n: usize,
    pub gflops: f64,
}

impl Measurement {
    /// Serialise to the shim JSON value used by [`crate::repo::KernelRepo`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("params", self.params.to_json()),
            ("n", Json::from(self.n)),
            ("gflops", Json::from(self.gflops)),
        ])
    }

    /// Parse from the shim JSON value written by [`Measurement::to_json`].
    pub fn from_json(v: &Json) -> Result<Measurement, JsonError> {
        Ok(Measurement {
            params: KernelParams::from_json(v.field("params")?)?,
            n: v.field("n")?.expect_usize()?,
            gflops: v.field("gflops")?.expect_f64()?,
        })
    }
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    pub device: String,
    pub precision: Precision,
    /// The winning kernel.
    pub best: Measurement,
    /// Peak-efficiency of the winner against the device's listed peak.
    pub efficiency: f64,
    /// Stage-2 survivors in rank order (winner first).
    pub top: Vec<Measurement>,
    /// Winner's performance across the stage-2 size sweep.
    pub sweep: Vec<(usize, f64)>,
    /// Number of candidates enumerated (≈ the paper's "tens of
    /// thousands of kernel variants").
    pub candidates: usize,
    /// Candidates that failed launch/resource checks during measurement
    /// (the paper's uncounted "failed" kernels).
    pub failures: usize,
    /// Candidates removed before measurement by the analytical
    /// predictor's feasible set (0 unless `predictor_prune` was set).
    pub pruned: usize,
    /// Whether the winner passed functional verification.
    pub verified: bool,
}

impl TuningResult {
    /// Serialise to the shim JSON value used by [`crate::repo::KernelRepo`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("device", Json::from(self.device.as_str())),
            ("precision", Json::from(format!("{:?}", self.precision))),
            ("best", self.best.to_json()),
            ("efficiency", Json::from(self.efficiency)),
            (
                "top",
                Json::Arr(self.top.iter().map(Measurement::to_json).collect()),
            ),
            (
                "sweep",
                Json::Arr(
                    self.sweep
                        .iter()
                        .map(|&(n, g)| Json::Arr(vec![Json::from(n), Json::from(g)]))
                        .collect(),
                ),
            ),
            ("candidates", Json::from(self.candidates)),
            ("failures", Json::from(self.failures)),
            ("pruned", Json::from(self.pruned)),
            ("verified", Json::from(self.verified)),
        ])
    }

    /// Parse from the shim JSON value written by [`TuningResult::to_json`].
    pub fn from_json(v: &Json) -> Result<TuningResult, JsonError> {
        let top = v
            .field("top")?
            .expect_arr()?
            .iter()
            .map(Measurement::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let sweep = v
            .field("sweep")?
            .expect_arr()?
            .iter()
            .map(|pt| {
                let pair = pt.expect_arr()?;
                if pair.len() != 2 {
                    return Err(JsonError::new("sweep point is not a [n, gflops] pair"));
                }
                Ok((pair[0].expect_usize()?, pair[1].expect_f64()?))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(TuningResult {
            device: v.field("device")?.expect_str()?.to_string(),
            precision: v
                .field("precision")?
                .expect_str()?
                .parse()
                .map_err(JsonError::new)?,
            best: Measurement::from_json(v.field("best")?)?,
            efficiency: v.field("efficiency")?.expect_f64()?,
            top,
            sweep,
            candidates: v.field("candidates")?.expect_usize()?,
            failures: v.field("failures")?.expect_usize()?,
            // Absent in documents written before the predictor existed.
            pruned: v.get("pruned").and_then(Json::as_usize).unwrap_or(0),
            verified: v.field("verified")?.expect_bool()?,
        })
    }
}

/// Measure one candidate at one size with the timing model; `None` when
/// the kernel cannot launch (counted as a failure).
#[must_use]
pub fn measure_gflops(p: &KernelParams, dev: &DeviceSpec, n: usize) -> Option<f64> {
    let prof = launch_profile(p, dev, n, n, n);
    let est = estimate(dev, &prof).ok()?;
    Some(est.gflops(2.0 * (n as f64).powi(3)))
}

/// Stage-1 problem size for a candidate: `⌊base/LCM⌋·LCM` (§III-F).
/// Shared with the analytical predictor so its ranking evaluates at
/// the exact size the search would have used.
pub(crate) fn stage1_n(p: &KernelParams, base: usize) -> usize {
    let lcm = p.lcm_block();
    if lcm == 0 || lcm > base {
        round_up(base, lcm.max(1))
    } else {
        (base / lcm) * lcm
    }
}

/// Deterministic per-candidate noise factor in `[1-amp, 1+amp]`.
fn noise_factor(seed: u64, idx: usize, amp: f64) -> f64 {
    if amp == 0.0 {
        return 1.0;
    }
    let mut x = seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + amp * (2.0 * u - 1.0)
}

/// Run the full three-stage search.
#[must_use]
pub fn tune(
    dev: &DeviceSpec,
    precision: Precision,
    space: &SearchSpace,
    opts: &SearchOpts,
) -> TuningResult {
    let _run_span = clgemm_trace::span!("tuner.run");
    let reg = Registry::global();
    reg.counter("tuner_runs_total").inc();

    let base = opts.stage1_base.unwrap_or(match dev.kind {
        DeviceKind::Gpu => 4096,
        DeviceKind::Cpu => 1536,
    });
    let mut candidates = space.enumerate(dev, precision);
    let n_candidates = candidates.len();
    reg.counter("tuner_candidates_total")
        .add(n_candidates as u64);

    // ---- stage 0 (optional): analytical feasible-set pruning -----------
    let mut pruned = 0usize;
    if opts.predictor_prune {
        use crate::predict::{FeasibleSet, PruneReason};
        let feasible = FeasibleSet::derive(dev, precision);
        let mut tally = [0u64; PruneReason::ALL.len()];
        let kept: Vec<KernelParams> = candidates
            .iter()
            .copied()
            .filter(|p| match feasible.reject(p) {
                None => true,
                Some(r) => {
                    tally[r.index()] += 1;
                    false
                }
            })
            .collect();
        // The built-in profiles never empty the space, but an exotic
        // spec must degrade to the unpruned search, not panic.
        if !kept.is_empty() {
            pruned = n_candidates - kept.len();
            candidates = kept;
            for (reason, &count) in PruneReason::ALL.iter().zip(&tally) {
                if count > 0 {
                    reg.counter_labeled(
                        "tuner_pruned_total",
                        &[("stage", "1"), ("reason", reason.tag())],
                    )
                    .add(count);
                }
            }
        }
    }

    // ---- stage 1: measure everything at its base size ------------------
    let stage1_span = clgemm_trace::span!("tuner.stage1", n_candidates as u64);
    let stage1: Vec<(usize, f64, usize)> =
        clgemm_shim::par::par_map(&candidates, |idx, p: &KernelParams| {
            let n = stage1_n(p, base);
            let g = measure_gflops(p, dev, n)?;
            Some((idx, g * noise_factor(opts.noise_seed, idx, opts.noise), n))
        })
        .into_iter()
        .flatten()
        .collect();
    drop(stage1_span);
    let failures = candidates.len() - stage1.len();
    // Pruning counters are created at the point of use — a search whose
    // space never prunes should not register an eternally-zero metric.
    if failures > 0 {
        reg.counter_labeled(
            "tuner_pruned_total",
            &[("stage", "1"), ("reason", "launch")],
        )
        .add(failures as u64);
    }

    // ---- stage 2: sweep the fastest top_k across LCM multiples ---------
    let mut ranked = stage1;
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite gflops"));
    let survivors = ranked.len();
    ranked.truncate(opts.top_k);
    if survivors > ranked.len() {
        reg.counter_labeled("tuner_pruned_total", &[("stage", "2"), ("reason", "rank")])
            .add((survivors - ranked.len()) as u64);
    }
    if let Some(leader) = ranked.first() {
        // Best-so-far after the coarse stage; refined again after stage 3.
        reg.gauge("tuner_best_gflops").set(leader.1);
    }

    let stage2_span = clgemm_trace::span!("tuner.stage2", ranked.len() as u64);
    let sweeps: Vec<(usize, Vec<(usize, f64)>)> =
        clgemm_shim::par::par_map(&ranked, |_, entry: &(usize, f64, usize)| {
            let idx = entry.0;
            let p = &candidates[idx];
            let lcm = p.lcm_block().max(1);
            let n_points = (opts.max_n / lcm).max(1);
            let step = (n_points / opts.max_sweep_points).max(1);
            let mut sweep = Vec::new();
            let mut mult = 1;
            while mult * lcm <= opts.max_n {
                let n = mult * lcm;
                if let Some(g) = measure_gflops(p, dev, n) {
                    sweep.push((n, g));
                }
                mult += step;
            }
            (idx, sweep)
        });
    drop(stage2_span);

    // ---- stage 3: pick the best kernel ----------------------------------
    let stage3_span = clgemm_trace::span!("tuner.stage3");
    let mut top: Vec<Measurement> = sweeps
        .iter()
        .filter_map(|(idx, sweep)| {
            let (n, g) = sweep
                .iter()
                .copied()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))?;
            Some(Measurement {
                params: candidates[*idx],
                n,
                gflops: g,
            })
        })
        .collect();
    top.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).expect("finite"));
    assert!(
        !top.is_empty(),
        "search space produced no launchable kernels"
    );

    let best = top[0].clone();
    let sweep = sweeps
        .iter()
        .find(|(idx, _)| candidates[*idx] == best.params)
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    drop(stage3_span);
    reg.gauge("tuner_best_gflops").set(best.gflops);
    clgemm_trace::event!("tuner.best", best.gflops as u64);

    let verified = if opts.verify_winner {
        let _verify_span = clgemm_trace::span!("tuner.verify");
        let ok = verify_kernel(&best.params).is_ok();
        if ok {
            reg.counter("tuner_verified_total").inc();
        }
        ok
    } else {
        false
    };
    let dp = precision == Precision::F64;

    TuningResult {
        device: dev.code_name.clone(),
        precision,
        efficiency: best.gflops / dev.peak_gflops(dp),
        best,
        top,
        sweep,
        candidates: n_candidates,
        failures,
        pruned,
        verified,
    }
}

/// Functional verification at the smallest representative size: generate
/// the kernel, compile it with `clgemm-clc`, execute it in the VM on a
/// deterministic problem and compare bit-for-bit against the native
/// executor (plus a tolerance check against packed-operand semantics).
pub fn verify_kernel(p: &KernelParams) -> Result<(), String> {
    let (m, n) = (p.mwg, p.nwg);
    let k = p.k_multiple().max(2 * p.kwg.min(p.k_multiple()));
    let gen = generate(p).map_err(|e| e.to_string())?;
    let prog = Program::compile(&gen.source).map_err(|e| format!("{e}\n{}", gen.source))?;
    let kernel = prog.kernel(KERNEL_NAME).ok_or("kernel missing")?;

    match p.precision {
        Precision::F64 => verify_typed::<f64>(p, &gen, &prog, kernel.name(), m, n, k),
        Precision::F32 => verify_typed::<f32>(p, &gen, &prog, kernel.name(), m, n, k),
    }
}

fn verify_typed<T: clgemm_blas::Scalar + VmBuf>(
    p: &KernelParams,
    gen: &crate::codegen::GeneratedKernel,
    prog: &Program,
    kname: &str,
    m: usize,
    n: usize,
    k: usize,
) -> Result<(), String> {
    use clgemm_blas::layout::PackedDims;

    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).map_err(|e| e.to_string())?;
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).map_err(|e| e.to_string())?;
    let mut a = vec![T::ZERO; a_dims.len()];
    let mut b = vec![T::ZERO; b_dims.len()];
    for (i, v) in a.iter_mut().enumerate() {
        *v = T::from_f64(((i * 37 + 11) % 23) as f64 / 23.0 - 0.5);
    }
    for (i, v) in b.iter_mut().enumerate() {
        *v = T::from_f64(((i * 53 + 7) % 29) as f64 / 29.0 - 0.5);
    }
    let c0: Vec<T> = (0..m * n)
        .map(|i| T::from_f64(((i * 13 + 5) % 17) as f64 / 17.0 - 0.5))
        .collect();
    let alpha = T::from_f64(0.75);
    let beta = T::from_f64(-0.5);

    // Native oracle.
    let mut c_native = c0.clone();
    run_native(
        m,
        n,
        k,
        alpha,
        &a,
        a_dims,
        p.layout_a,
        &b,
        b_dims,
        p.layout_b,
        beta,
        &mut c_native,
    );

    // VM execution of the generated source.
    let mut bufs = vec![T::to_buf(a), T::to_buf(b), T::to_buf(c0)];
    let args = [
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
        T::scalar_arg(alpha),
        T::scalar_arg(beta),
    ];
    let kernel = prog.kernel(kname).ok_or("kernel missing")?;
    kernel
        .launch(gen.ndrange(m, n), &args, &mut bufs, &ExecOptions::default())
        .map_err(|e| format!("VM execution failed: {e}"))?;
    let c_vm = T::from_buf(&bufs[2]).ok_or("C buffer lost precision")?;

    for i in 0..m * n {
        if c_vm[i].to_f64().to_bits() != c_native[i].to_f64().to_bits() {
            return Err(format!(
                "bit mismatch at {i}: VM {} vs native {} ({})",
                c_vm[i],
                c_native[i],
                p.describe()
            ));
        }
    }
    Ok(())
}

/// Glue between `Scalar` and the VM's buffer/argument types.
pub trait VmBuf: Sized {
    fn to_buf(v: Vec<Self>) -> BufData;
    fn from_buf(b: &BufData) -> Option<Vec<Self>>;
    fn scalar_arg(v: Self) -> Arg;
}

impl VmBuf for f64 {
    fn to_buf(v: Vec<Self>) -> BufData {
        BufData::F64(v)
    }
    fn from_buf(b: &BufData) -> Option<Vec<Self>> {
        match b {
            BufData::F64(v) => Some(v.clone()),
            _ => None,
        }
    }
    fn scalar_arg(v: Self) -> Arg {
        Arg::F64(v)
    }
}

impl VmBuf for f32 {
    fn to_buf(v: Vec<Self>) -> BufData {
        BufData::F32(v)
    }
    fn from_buf(b: &BufData) -> Option<Vec<Self>> {
        match b {
            BufData::F32(v) => Some(v.clone()),
            _ => None,
        }
    }
    fn scalar_arg(v: Self) -> Arg {
        Arg::F32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{small_test_params, tahiti_dgemm_best, Algorithm};
    use clgemm_device::DeviceId;

    #[test]
    fn verify_paper_tahiti_kernel_end_to_end() {
        verify_kernel(&tahiti_dgemm_best()).unwrap();
    }

    #[test]
    fn verify_all_algorithms_end_to_end() {
        for alg in Algorithm::ALL {
            let mut p = small_test_params(Precision::F32);
            p.algorithm = alg;
            verify_kernel(&p).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn smoke_search_finds_a_verified_kernel() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let opts = SearchOpts {
            top_k: 10,
            max_sweep_points: 8,
            ..Default::default()
        };
        let res = tune(&dev, Precision::F64, &space, &opts);
        assert!(
            res.candidates > 50,
            "smoke space still has candidates: {}",
            res.candidates
        );
        assert!(
            res.best.gflops > 100.0,
            "Tahiti DGEMM should exceed 100 GFlop/s, got {}",
            res.best.gflops
        );
        assert!(res.efficiency > 0.2 && res.efficiency <= 1.2);
        assert!(res.verified, "winner must pass functional verification");
        assert!(!res.sweep.is_empty());
        assert!(res.top.len() <= 10);
        // Ranked order.
        for w in res.top.windows(2) {
            assert!(w[0].gflops >= w[1].gflops);
        }
    }

    #[test]
    fn stage1_size_follows_paper_rule() {
        let p = tahiti_dgemm_best(); // LCM 96
        assert_eq!(stage1_n(&p, 4096), (4096 / 96) * 96);
        assert_eq!(stage1_n(&p, 1536), 1536);
    }

    #[test]
    fn noise_does_not_change_winner_much() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let quiet = tune(
            &dev,
            Precision::F64,
            &space,
            &SearchOpts {
                top_k: 10,
                max_sweep_points: 4,
                verify_winner: false,
                ..Default::default()
            },
        );
        let noisy = tune(
            &dev,
            Precision::F64,
            &space,
            &SearchOpts {
                top_k: 10,
                max_sweep_points: 4,
                verify_winner: false,
                noise: 0.03,
                noise_seed: 42,
                ..Default::default()
            },
        );
        // 3 % measurement noise may permute near-ties, but the winner's
        // performance must stay within a few percent of the quiet run.
        let rel = (noisy.best.gflops - quiet.best.gflops).abs() / quiet.best.gflops;
        assert!(rel < 0.10, "noise perturbed the winner by {rel:.3}");
    }

    #[test]
    fn predictor_prune_shrinks_stage1_and_preserves_winner() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let base = SearchOpts {
            top_k: 10,
            max_sweep_points: 4,
            verify_winner: false,
            ..Default::default()
        };
        let full = tune(&dev, Precision::F64, &space, &base);
        let pruned = tune(
            &dev,
            Precision::F64,
            &space,
            &SearchOpts {
                predictor_prune: true,
                ..base
            },
        );
        assert!(pruned.pruned > 0, "smoke space should prune something");
        assert_eq!(pruned.candidates, full.candidates, "full count reported");
        // The feasible set must not cost the searched winner (the ≥10×
        // ratio itself is gated on the full space in benches/predict.rs).
        assert!(
            pruned.best.gflops >= 0.98 * full.best.gflops,
            "pruning lost the winner: {} vs {}",
            pruned.best.gflops,
            full.best.gflops
        );
    }

    #[test]
    fn measure_rejects_unlaunchable_kernels() {
        let dev = DeviceId::Cayman.spec(); // 32 KiB local memory
        let mut p = small_test_params(Precision::F64);
        p.mwg = 64;
        p.nwg = 64;
        p.kwg = 64;
        p.mdimc = 16;
        p.ndimc = 16;
        p.mdima = 16;
        p.ndimb = 16;
        // 2 * 64*64*8 = 64 KiB of LDS > 32 KiB.
        assert!(p.validate().is_ok());
        assert!(measure_gflops(&p, &dev, 1024).is_none());
    }

    #[test]
    fn json_round_trip_of_results() {
        let dev = DeviceId::Kepler.spec();
        let space = SearchSpace::smoke(&dev);
        let res = tune(
            &dev,
            Precision::F32,
            &space,
            &SearchOpts {
                top_k: 5,
                max_sweep_points: 4,
                verify_winner: false,
                ..Default::default()
            },
        );
        let text = res.to_json().to_string_pretty();
        let back = TuningResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.best.params, res.best.params);
        assert_eq!(back.device, res.device);
        assert_eq!(back.sweep, res.sweep);
        assert_eq!(back.top.len(), res.top.len());
    }
}
