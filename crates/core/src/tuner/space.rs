//! Heuristic enumeration of the kernel parameter space.

use crate::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_device::{DeviceKind, DeviceSpec};
use std::collections::HashSet;

/// The (restrictable) candidate space. Every field lists the values one
/// knob may take; the cross product, filtered by [`KernelParams::validate`]
/// and device resource sanity, is the candidate set.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Work-group shapes `(MdimC, NdimC)`.
    pub wg_shapes: Vec<(usize, usize)>,
    /// Work-item tiles `(Mwi, Nwi)`.
    pub wi_tiles: Vec<(usize, usize)>,
    /// Depth blocking factors `Kwg`.
    pub kwg: Vec<usize>,
    /// Unroll factors `Kwi`.
    pub kwi: Vec<usize>,
    /// Vector widths.
    pub vw: Vec<usize>,
    /// Stride-mode combinations `(M, N)`.
    pub strides: Vec<(StrideMode, StrideMode)>,
    /// Local-memory usage combinations `(A, B)`.
    pub locals: Vec<(bool, bool)>,
    /// Layout combinations `(A, B)`.
    pub layouts: Vec<(BlockLayout, BlockLayout)>,
    /// Algorithms.
    pub algorithms: Vec<Algorithm>,
    /// Upper bound on `Mwg`/`Nwg` (tile footprint guard).
    pub max_wg_tile: usize,
}

impl SearchSpace {
    /// The default heuristic space for a device: work-group shapes are
    /// clipped to the device's maximum work-group size; CPUs drop the
    /// sub-wavefront shapes that only make sense on SIMT hardware and
    /// prefer larger vectors (implicit AVX vectorisation).
    #[must_use]
    pub fn for_device(dev: &DeviceSpec) -> SearchSpace {
        let gpu = dev.kind == DeviceKind::Gpu;
        let wg_shapes: Vec<(usize, usize)> = [
            (4, 4),
            (8, 4),
            (4, 8),
            (8, 8),
            (16, 4),
            (4, 16),
            (16, 8),
            (8, 16),
            (16, 16),
            (24, 4),
            (32, 8),
            (8, 32),
        ]
        .into_iter()
        .filter(|(m, n)| {
            let wg = m * n;
            wg <= dev.micro.max_wg_size
                && if gpu {
                    wg >= 32
                } else {
                    (8..=256).contains(&wg)
                }
        })
        .collect();
        SearchSpace {
            wg_shapes,
            wi_tiles: vec![
                (2, 2),
                (2, 4),
                (4, 2),
                (4, 4),
                (6, 2),
                (2, 6),
                (6, 6),
                (4, 8),
                (8, 4),
                (2, 8),
                (8, 8),
            ],
            kwg: vec![16, 32, 48, 64],
            kwi: vec![2, 8],
            vw: vec![1, 2, 4, 8],
            strides: vec![
                (StrideMode::Unit, StrideMode::Unit),
                (StrideMode::NonUnit, StrideMode::NonUnit),
                (StrideMode::NonUnit, StrideMode::Unit),
            ],
            locals: vec![(false, false), (false, true), (true, false), (true, true)],
            layouts: vec![
                (BlockLayout::Cbl, BlockLayout::Cbl),
                (BlockLayout::Cbl, BlockLayout::Rbl),
                (BlockLayout::RowMajor, BlockLayout::RowMajor),
            ],
            algorithms: Algorithm::ALL.to_vec(),
            max_wg_tile: 160,
        }
    }

    /// A heavily thinned space for unit/integration tests (hundreds of
    /// candidates rather than tens of thousands).
    #[must_use]
    pub fn smoke(dev: &DeviceSpec) -> SearchSpace {
        let mut s = SearchSpace::for_device(dev);
        s.wg_shapes
            .retain(|w| matches!(w, (8, 8) | (16, 8) | (16, 16)));
        s.wi_tiles
            .retain(|t| matches!(t, (2, 2) | (4, 4) | (6, 2) | (8, 8)));
        s.kwg = vec![16, 32];
        s.kwi = vec![2];
        // Keep the full vector-width axis: CPUs need wide vectors to fill
        // their SIMD lanes, and quick-mode searches should stay
        // representative there.
        s.vw = vec![1, 2, 4, 8];
        s.strides.truncate(2);
        s.layouts.truncate(2);
        s
    }

    /// Restrict to a single algorithm (the Fig. 8 ablation).
    #[must_use]
    pub fn with_algorithm(mut self, alg: Algorithm) -> SearchSpace {
        self.algorithms = vec![alg];
        // PL/DB require both operands staged in local memory.
        if alg != Algorithm::Ba {
            self.locals = vec![(true, true)];
        }
        self
    }

    /// Restrict local-memory usage (the §IV-A local-memory ablation).
    #[must_use]
    pub fn with_locals(mut self, locals: Vec<(bool, bool)>) -> SearchSpace {
        self.locals = locals;
        self.algorithms
            .retain(|a| *a == Algorithm::Ba || self.locals.contains(&(true, true)));
        self
    }

    /// Restrict layouts (the block-major ablation: row-major only).
    #[must_use]
    pub fn with_layouts(mut self, layouts: Vec<(BlockLayout, BlockLayout)>) -> SearchSpace {
        self.layouts = layouts;
        self
    }

    /// Enumerate all structurally valid candidates for the device.
    ///
    /// Loader shapes `MdimA`/`NdimB` are derived per local-memory
    /// combination: the canonical choice equals the work-group shape, and
    /// one wider/narrower alternate is added when it divides cleanly.
    #[must_use]
    pub fn enumerate(&self, dev: &DeviceSpec, precision: Precision) -> Vec<KernelParams> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &(mdimc, ndimc) in &self.wg_shapes {
            let wg = mdimc * ndimc;
            for &(mwi, nwi) in &self.wi_tiles {
                let (mwg, nwg) = (mdimc * mwi, ndimc * nwi);
                if mwg > self.max_wg_tile || nwg > self.max_wg_tile {
                    continue;
                }
                for &kwg in &self.kwg {
                    for &kwi in &self.kwi {
                        if kwg % kwi != 0 {
                            continue;
                        }
                        for &vw in &self.vw {
                            if nwi % vw != 0 {
                                continue;
                            }
                            for &(sm, sn) in &self.strides {
                                for &(la, lb) in &self.layouts {
                                    for &alg in &self.algorithms {
                                        for &(loc_a, loc_b) in &self.locals {
                                            if alg != Algorithm::Ba && !(loc_a && loc_b) {
                                                continue;
                                            }
                                            for mdima in loader_dims(wg, mwg, kwg, mdimc, loc_a) {
                                                for ndimb in loader_dims(wg, nwg, kwg, ndimc, loc_b)
                                                {
                                                    let p = KernelParams {
                                                        mwg,
                                                        nwg,
                                                        kwg,
                                                        mdimc,
                                                        ndimc,
                                                        kwi,
                                                        mdima,
                                                        ndimb,
                                                        vw,
                                                        stride_m: sm,
                                                        stride_n: sn,
                                                        local_a: loc_a,
                                                        local_b: loc_b,
                                                        layout_a: la,
                                                        layout_b: lb,
                                                        algorithm: alg,
                                                        precision,
                                                    };
                                                    if p.validate().is_err() {
                                                        continue;
                                                    }
                                                    if !resource_sane(&p, dev) {
                                                        continue;
                                                    }
                                                    if seen.insert(p) {
                                                        out.push(p);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Loader-shape choices for one operand: the work-group's own shape plus
/// a 2× alternate in each direction when the divisibility works out. For
/// operands not staged in local memory the loader shape is irrelevant —
/// one canonical value avoids duplicate candidates.
fn loader_dims(wg: usize, wwg: usize, kwg: usize, dimc: usize, uses_local: bool) -> Vec<usize> {
    if !uses_local {
        return vec![dimc];
    }
    let mut dims: Vec<usize> = [dimc, dimc * 2]
        .into_iter()
        .filter(|&d| wg.is_multiple_of(d) && wwg.is_multiple_of(d) && kwg.is_multiple_of(wg / d))
        .collect();
    dims.dedup();
    if dims.is_empty() {
        // Fall back to any divisor of the work-group size that tiles the
        // block, so local-memory candidates are not lost entirely.
        for d in [4usize, 8, 16, 32, 64] {
            if d <= wg
                && wg.is_multiple_of(d)
                && wwg.is_multiple_of(d)
                && kwg.is_multiple_of(wg / d)
            {
                dims.push(d);
                break;
            }
        }
    }
    dims
}

/// Cheap resource plausibility: local memory must fit the device and the
/// register estimate must leave at least one resident work-group.
fn resource_sane(p: &KernelParams, dev: &DeviceSpec) -> bool {
    if p.wg_size() > dev.micro.max_wg_size {
        return false;
    }
    if p.lds_bytes() > dev.local_mem_bytes() {
        return false;
    }
    p.regs_per_wi() * p.wg_size() <= dev.micro.regs_per_cu
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    #[test]
    fn default_space_is_tens_of_thousands_on_gpus() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::for_device(&dev);
        let n = space.enumerate(&dev, Precision::F64).len();
        assert!(
            (10_000..=500_000).contains(&n),
            "expected tens of thousands of candidates, got {n}"
        );
    }

    #[test]
    fn all_enumerated_candidates_are_valid() {
        let dev = DeviceId::Fermi.spec();
        let space = SearchSpace::smoke(&dev);
        let cands = space.enumerate(&dev, Precision::F32);
        assert!(!cands.is_empty());
        for c in &cands {
            c.validate().unwrap_or_else(|e| panic!("{e}: {c:?}"));
            assert!(c.lds_bytes() <= dev.local_mem_bytes());
        }
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let dev = DeviceId::Cayman.spec();
        let space = SearchSpace::smoke(&dev);
        let cands = space.enumerate(&dev, Precision::F64);
        let set: HashSet<_> = cands.iter().collect();
        assert_eq!(set.len(), cands.len());
    }

    #[test]
    fn algorithm_restriction_propagates() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev).with_algorithm(Algorithm::Pl);
        let cands = space.enumerate(&dev, Precision::F64);
        assert!(!cands.is_empty());
        assert!(cands
            .iter()
            .all(|c| c.algorithm == Algorithm::Pl && c.local_a && c.local_b));
    }

    #[test]
    fn cpu_space_respects_work_group_limits() {
        let dev = DeviceId::SandyBridge.spec();
        let space = SearchSpace::for_device(&dev);
        let cands = space.enumerate(&dev, Precision::F64);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.wg_size() <= 256));
    }

    #[test]
    fn amd_gpu_space_respects_256_wg_cap() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::for_device(&dev);
        assert!(space.wg_shapes.iter().all(|(m, n)| m * n <= 256));
    }

    #[test]
    fn layout_restriction_works() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev)
            .with_layouts(vec![(BlockLayout::RowMajor, BlockLayout::RowMajor)]);
        let cands = space.enumerate(&dev, Precision::F64);
        assert!(cands
            .iter()
            .all(|c| c.layout_a == BlockLayout::RowMajor && c.layout_b == BlockLayout::RowMajor));
    }
}
