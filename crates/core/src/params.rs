//! The kernel parameter space of §III.
//!
//! A [`KernelParams`] value is one point in the tuner's search space: the
//! eight blocking-related parameters, the vector width, the stride modes,
//! local-memory usage, the two matrix layouts and the algorithm choice.
//! [`KernelParams::validate`] enforces every divisibility constraint the
//! paper's generator imposes, and the derived quantities (work-item
//! blocking factors, loader shapes, resource estimates) are computed here
//! so the code generator, the launch-profile builder and the native
//! executor all agree on them.

use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_shim::{Json, JsonError};

/// Whether a work-item's C elements are adjacent (unit stride) or
/// interleaved across the work-group (non-unit stride, §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrideMode {
    Unit,
    NonUnit,
}

impl StrideMode {
    /// Tag used in parameter tables (matching Table II's "Stride" row
    /// convention: the row lists the directions using non-unit access).
    #[must_use]
    pub fn is_non_unit(self) -> bool {
        matches!(self, StrideMode::NonUnit)
    }
}

/// One of the three GEMM algorithms of §III-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Basic algorithm (Fig. 4), after Volkov & Demmel.
    Ba,
    /// Software pipelining (Fig. 5), after the MAGMA Fermi GEMM.
    Pl,
    /// Double buffering (Fig. 6), after Tan et al.
    Db,
}

impl Algorithm {
    /// All algorithms.
    pub const ALL: [Algorithm; 3] = [Algorithm::Ba, Algorithm::Pl, Algorithm::Db];

    /// Paper tag ("BA"/"PL"/"DB").
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Algorithm::Ba => "BA",
            Algorithm::Pl => "PL",
            Algorithm::Db => "DB",
        }
    }

    /// Barriers per outer-loop iteration.
    #[must_use]
    pub fn barriers_per_iter(self) -> f64 {
        match self {
            Algorithm::Ba => 2.0,
            Algorithm::Pl => 3.0,
            // DB issues two barriers per *pair* of Kwg blocks.
            Algorithm::Db => 1.0,
        }
    }

    /// Per-iteration non-overlappable global-latency weight (the whole
    /// point of PL/DB is overlapping the next block's loads with the
    /// current block's arithmetic).
    #[must_use]
    pub fn serial_latency_factor(self) -> f64 {
        match self {
            Algorithm::Ba => 1.0,
            Algorithm::Pl => 0.35,
            Algorithm::Db => 0.5,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BA" => Ok(Algorithm::Ba),
            "PL" => Ok(Algorithm::Pl),
            "DB" => Ok(Algorithm::Db),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// A full parameter set for the `C ← α·Aᵀ·B + β·C` kernel generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelParams {
    /// Work-group blocking factors (§III-A).
    pub mwg: usize,
    pub nwg: usize,
    pub kwg: usize,
    /// Work-group shape; `Mwi = Mwg/MdimC`, `Nwi = Nwg/NdimC`.
    pub mdimc: usize,
    pub ndimc: usize,
    /// Inner-loop unroll factor (§III-A).
    pub kwi: usize,
    /// Local-memory loader reshape (§III-C): `KdimA = wg/MdimA`,
    /// `KdimB = wg/NdimB`.
    pub mdima: usize,
    pub ndimb: usize,
    /// Vector width (§III-B), applied along the N direction for C/B and
    /// along M for A.
    pub vw: usize,
    /// Stride modes (§III-B).
    pub stride_m: StrideMode,
    pub stride_n: StrideMode,
    /// Local-memory staging for each operand (§III-C).
    pub local_a: bool,
    pub local_b: bool,
    /// Packed data layouts (§III-D).
    pub layout_a: BlockLayout,
    pub layout_b: BlockLayout,
    /// Algorithm (§III-E).
    pub algorithm: Algorithm,
    /// Kernel precision.
    pub precision: Precision,
}

/// Why a parameter set is invalid (would fail "code generation" in the
/// paper's pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub String);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid kernel parameters: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

impl KernelParams {
    /// Work-group size in work-items.
    #[must_use]
    pub fn wg_size(&self) -> usize {
        self.mdimc * self.ndimc
    }

    /// Work-item blocking factor in M.
    #[must_use]
    pub fn mwi(&self) -> usize {
        self.mwg / self.mdimc
    }

    /// Work-item blocking factor in N.
    #[must_use]
    pub fn nwi(&self) -> usize {
        self.nwg / self.ndimc
    }

    /// Loader depth `KdimA` (derived, §III-C).
    #[must_use]
    pub fn kdima(&self) -> usize {
        self.wg_size() / self.mdima
    }

    /// Loader depth `KdimB`.
    #[must_use]
    pub fn kdimb(&self) -> usize {
        self.wg_size() / self.ndimb
    }

    /// Per-loader element counts `MwiA`, `KwiA`, `KwiB`, `NwiB`.
    #[must_use]
    pub fn mwia(&self) -> usize {
        self.mwg / self.mdima
    }

    #[must_use]
    pub fn kwia(&self) -> usize {
        self.kwg / self.kdima()
    }

    #[must_use]
    pub fn kwib(&self) -> usize {
        self.kwg / self.kdimb()
    }

    #[must_use]
    pub fn nwib(&self) -> usize {
        self.nwg / self.ndimb
    }

    /// `true` when the A loader can use width-`vw` vector loads.
    #[must_use]
    pub fn loader_a_vec(&self) -> bool {
        self.local_a && self.mwg.is_multiple_of(self.mdima * self.vw)
    }

    /// `true` when the B loader can use width-`vw` vector loads.
    #[must_use]
    pub fn loader_b_vec(&self) -> bool {
        self.local_b && self.nwg.is_multiple_of(self.ndimb * self.vw)
    }

    /// `true` when direct (non-local) A loads can be vectorised: rows per
    /// work-item are adjacent and divisible by `vw`.
    #[must_use]
    pub fn direct_a_vec(&self) -> bool {
        !self.local_a && self.stride_m == StrideMode::Unit && self.mwi().is_multiple_of(self.vw)
    }

    /// `true` when compute-phase reads of A (from local memory or global)
    /// are vectorised along M.
    #[must_use]
    pub fn read_a_vec(&self) -> bool {
        self.stride_m == StrideMode::Unit && self.mwi().is_multiple_of(self.vw)
    }

    /// Element size in bytes.
    #[must_use]
    pub fn elem_bytes(&self) -> usize {
        self.precision.bytes()
    }

    /// Local-memory bytes per work-group the generated kernel allocates.
    #[must_use]
    pub fn lds_bytes(&self) -> usize {
        let e = self.elem_bytes();
        let db = if self.algorithm == Algorithm::Db {
            2
        } else {
            1
        };
        let a = if self.local_a {
            db * self.kwg * self.mwg * e
        } else {
            0
        };
        let b = if self.local_b {
            db * self.kwg * self.nwg * e
        } else {
            0
        };
        a + b
    }

    /// Estimated 32-bit register slots per work-item: accumulators,
    /// staging registers, PL prefetch registers, plus addressing
    /// overhead. This is the occupancy input of §III-E.
    #[must_use]
    pub fn regs_per_wi(&self) -> usize {
        let words = self.elem_bytes() / 4;
        let acc = self.mwi() * self.nwi();
        // Staged operands have short live ranges (loaded, multiplied,
        // dead); compilers reuse their registers across unroll steps, so
        // the live set stops growing after a few Kwi steps.
        let staging = self.kwi.min(4) * (self.mwi() + self.nwi());
        let prefetch = if self.algorithm == Algorithm::Pl {
            let a = if self.local_a {
                self.mwia() * self.kwia()
            } else {
                0
            };
            let b = if self.local_b {
                self.kwib() * self.nwib()
            } else {
                0
            };
            a + b
        } else {
            0
        };
        (acc + staging + prefetch) * words + 24
    }

    /// The problem-size granularity in K this kernel requires (`Kwg`, or
    /// `2·Kwg` for the double-buffered algorithm whose main loop is
    /// unrolled by two blocks).
    #[must_use]
    pub fn k_multiple(&self) -> usize {
        match self.algorithm {
            Algorithm::Db => 2 * self.kwg,
            _ => self.kwg,
        }
    }

    /// Least common multiple of the work-group blocking factors — the
    /// paper sizes its search problems as multiples of this.
    #[must_use]
    pub fn lcm_block(&self) -> usize {
        lcm(lcm(self.mwg, self.nwg), self.k_multiple())
    }

    /// Validate all structural constraints. A set that fails here would
    /// "fail in code generation" in the paper's pipeline and is not
    /// counted among tested variants.
    pub fn validate(&self) -> Result<(), ParamError> {
        let err = |m: String| Err(ParamError(m));
        for (name, v) in [
            ("Mwg", self.mwg),
            ("Nwg", self.nwg),
            ("Kwg", self.kwg),
            ("MdimC", self.mdimc),
            ("NdimC", self.ndimc),
            ("Kwi", self.kwi),
            ("MdimA", self.mdima),
            ("NdimB", self.ndimb),
            ("vw", self.vw),
        ] {
            if v == 0 {
                return err(format!("{name} must be positive"));
            }
        }
        if ![1, 2, 4, 8].contains(&self.vw) {
            return err(format!("vector width {} not in {{1,2,4,8}}", self.vw));
        }
        if !self.mwg.is_multiple_of(self.mdimc) {
            return err(format!(
                "Mwg {} not divisible by MdimC {}",
                self.mwg, self.mdimc
            ));
        }
        if !self.nwg.is_multiple_of(self.ndimc) {
            return err(format!(
                "Nwg {} not divisible by NdimC {}",
                self.nwg, self.ndimc
            ));
        }
        if !self.kwg.is_multiple_of(self.kwi) {
            return err(format!(
                "Kwg {} not divisible by Kwi {}",
                self.kwg, self.kwi
            ));
        }
        if !self.nwi().is_multiple_of(self.vw) {
            return err(format!(
                "Nwi {} not divisible by vector width {}",
                self.nwi(),
                self.vw
            ));
        }
        let wg = self.wg_size();
        if wg > 1024 {
            return err(format!("work-group size {wg} exceeds 1024"));
        }
        if self.local_a {
            if !wg.is_multiple_of(self.mdima) {
                return err(format!(
                    "work-group size {wg} not divisible by MdimA {}",
                    self.mdima
                ));
            }
            if !self.mwg.is_multiple_of(self.mdima) {
                return err(format!(
                    "Mwg {} not divisible by MdimA {}",
                    self.mwg, self.mdima
                ));
            }
            if !self.kwg.is_multiple_of(self.kdima()) {
                return err(format!(
                    "Kwg {} not divisible by KdimA {}",
                    self.kwg,
                    self.kdima()
                ));
            }
        }
        if self.local_b {
            if !wg.is_multiple_of(self.ndimb) {
                return err(format!(
                    "work-group size {wg} not divisible by NdimB {}",
                    self.ndimb
                ));
            }
            if !self.nwg.is_multiple_of(self.ndimb) {
                return err(format!(
                    "Nwg {} not divisible by NdimB {}",
                    self.nwg, self.ndimb
                ));
            }
            if !self.kwg.is_multiple_of(self.kdimb()) {
                return err(format!(
                    "Kwg {} not divisible by KdimB {}",
                    self.kwg,
                    self.kdimb()
                ));
            }
        }
        if matches!(self.algorithm, Algorithm::Pl | Algorithm::Db)
            && !(self.local_a && self.local_b)
        {
            return err(format!(
                "algorithm {} requires local memory for both matrices",
                self.algorithm
            ));
        }
        Ok(())
    }

    /// A compact one-line description in the paper's Table II style.
    #[must_use]
    pub fn describe(&self) -> String {
        let shared = match (self.local_a, self.local_b) {
            (true, true) => "A,B",
            (true, false) => "A",
            (false, true) => "B",
            (false, false) => "-",
        };
        let stride = match (self.stride_m.is_non_unit(), self.stride_n.is_non_unit()) {
            (true, true) => "M,N",
            (true, false) => "M",
            (false, true) => "N",
            (false, false) => "-",
        };
        format!(
            "Mwg,Nwg,Kwg={},{},{} Mwi,Nwi,Kwi={},{},{} dimC={}x{} dimA={}x{} dimB={}x{} vw={} stride={} shared={} layout={},{} alg={}",
            self.mwg,
            self.nwg,
            self.kwg,
            self.mwi(),
            self.nwi(),
            self.kwi,
            self.mdimc,
            self.ndimc,
            self.mdima,
            self.kdima(),
            self.kdimb(),
            self.ndimb,
            self.vw,
            stride,
            shared,
            self.layout_a.tag(),
            self.layout_b.tag(),
            self.algorithm
        )
    }
}

impl KernelParams {
    /// JSON encoding used by [`crate::repo::KernelRepo`] persistence.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mwg", Json::from(self.mwg)),
            ("nwg", Json::from(self.nwg)),
            ("kwg", Json::from(self.kwg)),
            ("mdimc", Json::from(self.mdimc)),
            ("ndimc", Json::from(self.ndimc)),
            ("kwi", Json::from(self.kwi)),
            ("mdima", Json::from(self.mdima)),
            ("ndimb", Json::from(self.ndimb)),
            ("vw", Json::from(self.vw)),
            ("stride_m", Json::from(self.stride_m.is_non_unit())),
            ("stride_n", Json::from(self.stride_n.is_non_unit())),
            ("local_a", Json::from(self.local_a)),
            ("local_b", Json::from(self.local_b)),
            ("layout_a", Json::from(self.layout_a.tag())),
            ("layout_b", Json::from(self.layout_b.tag())),
            ("algorithm", Json::from(self.algorithm.tag())),
            ("precision", Json::from(format!("{:?}", self.precision))),
        ])
    }

    /// Decode a parameter set previously written by [`Self::to_json`].
    pub fn from_json(v: &Json) -> Result<KernelParams, JsonError> {
        let num = |key: &str| -> Result<usize, JsonError> {
            v.field(key)?.as_usize().ok_or_else(|| JsonError {
                msg: format!("{key} not an integer"),
            })
        };
        let flag = |key: &str| -> Result<bool, JsonError> {
            v.field(key)?.as_bool().ok_or_else(|| JsonError {
                msg: format!("{key} not a bool"),
            })
        };
        let text = |key: &str| -> Result<&str, JsonError> {
            v.field(key)?.as_str().ok_or_else(|| JsonError {
                msg: format!("{key} not a string"),
            })
        };
        let stride = |non_unit: bool| {
            if non_unit {
                StrideMode::NonUnit
            } else {
                StrideMode::Unit
            }
        };
        let parse = |key: &str, what: &str| -> Result<String, JsonError> {
            text(key).map(str::to_string).and_then(|s| {
                if s.is_empty() {
                    Err(JsonError {
                        msg: format!("empty {what}"),
                    })
                } else {
                    Ok(s)
                }
            })
        };
        Ok(KernelParams {
            mwg: num("mwg")?,
            nwg: num("nwg")?,
            kwg: num("kwg")?,
            mdimc: num("mdimc")?,
            ndimc: num("ndimc")?,
            kwi: num("kwi")?,
            mdima: num("mdima")?,
            ndimb: num("ndimb")?,
            vw: num("vw")?,
            stride_m: stride(flag("stride_m")?),
            stride_n: stride(flag("stride_n")?),
            local_a: flag("local_a")?,
            local_b: flag("local_b")?,
            layout_a: parse("layout_a", "layout")?
                .parse()
                .map_err(|e: String| JsonError { msg: e })?,
            layout_b: parse("layout_b", "layout")?
                .parse()
                .map_err(|e: String| JsonError { msg: e })?,
            algorithm: parse("algorithm", "algorithm")?
                .parse()
                .map_err(|e: String| JsonError { msg: e })?,
            precision: parse("precision", "precision")?
                .parse()
                .map_err(|e: String| JsonError { msg: e })?,
        })
    }
}

/// Least common multiple.
#[must_use]
pub fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Greatest common divisor.
#[must_use]
pub fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// The paper's winning Tahiti DGEMM parameters (Table II), used as a
/// smoke-test fixture and quickstart default.
#[must_use]
pub fn tahiti_dgemm_best() -> KernelParams {
    KernelParams {
        mwg: 96,
        nwg: 32,
        kwg: 48,
        mdimc: 16,
        ndimc: 16,
        kwi: 2,
        mdima: 16,
        ndimb: 16,
        vw: 2,
        stride_m: StrideMode::Unit,
        stride_n: StrideMode::Unit,
        local_a: false,
        local_b: true,
        layout_a: BlockLayout::Cbl,
        layout_b: BlockLayout::Cbl,
        algorithm: Algorithm::Ba,
        precision: Precision::F64,
    }
}

/// A small, fully-featured parameter set that exercises local memory for
/// both operands — convenient in tests where kernels must run quickly in
/// the VM.
#[must_use]
pub fn small_test_params(precision: Precision) -> KernelParams {
    KernelParams {
        mwg: 16,
        nwg: 16,
        kwg: 8,
        mdimc: 4,
        ndimc: 4,
        kwi: 2,
        mdima: 4,
        ndimb: 4,
        vw: 2,
        stride_m: StrideMode::Unit,
        stride_n: StrideMode::Unit,
        local_a: true,
        local_b: true,
        layout_a: BlockLayout::Cbl,
        layout_b: BlockLayout::Cbl,
        algorithm: Algorithm::Ba,
        precision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tahiti_params_are_valid() {
        let p = tahiti_dgemm_best();
        p.validate().unwrap();
        assert_eq!(p.wg_size(), 256);
        assert_eq!(p.mwi(), 6);
        assert_eq!(p.nwi(), 2);
        assert_eq!(p.kdima(), 16);
        assert_eq!(p.kdimb(), 16);
    }

    #[test]
    fn lcm_of_paper_tahiti_factors() {
        let p = tahiti_dgemm_best();
        // lcm(96, 32, 48) = 96*... = 96 and 48 -> 96; with 32 -> 96? No:
        // lcm(96,32)=96, lcm(96,48)=96.
        assert_eq!(p.lcm_block(), 96);
    }

    #[test]
    fn derived_work_item_factors() {
        let p = small_test_params(Precision::F32);
        assert_eq!(p.mwi(), 4);
        assert_eq!(p.nwi(), 4);
        assert_eq!(p.mwia(), 4);
        assert_eq!(p.kwia(), 2);
        assert_eq!(p.nwib(), 4);
        assert_eq!(p.kwib(), 2);
    }

    #[test]
    fn invalid_divisibility_is_rejected() {
        let mut p = small_test_params(Precision::F32);
        p.mwg = 18; // not divisible by mdimc=4
        assert!(p.validate().is_err());

        let mut p = small_test_params(Precision::F32);
        p.kwi = 3; // kwg=8 not divisible
        assert!(p.validate().is_err());

        let mut p = small_test_params(Precision::F32);
        p.vw = 8; // nwi=4 not divisible by 8
        assert!(p.validate().is_err());

        let mut p = small_test_params(Precision::F32);
        p.vw = 3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn pl_and_db_require_both_operands_in_local_memory() {
        let mut p = small_test_params(Precision::F64);
        p.algorithm = Algorithm::Pl;
        p.local_a = false;
        assert!(p.validate().is_err());
        p.local_a = true;
        assert!(p.validate().is_ok());
        p.algorithm = Algorithm::Db;
        p.local_b = false;
        assert!(p.validate().is_err());
    }

    #[test]
    fn lds_doubles_under_db() {
        let mut p = small_test_params(Precision::F64);
        let base = p.lds_bytes();
        p.algorithm = Algorithm::Db;
        assert_eq!(p.lds_bytes(), 2 * base);
        assert_eq!(p.k_multiple(), 2 * p.kwg);
    }

    #[test]
    fn pl_increases_register_estimate() {
        let mut p = small_test_params(Precision::F64);
        let base = p.regs_per_wi();
        p.algorithm = Algorithm::Pl;
        assert!(p.regs_per_wi() > base);
    }

    #[test]
    fn loader_vectorisation_conditions() {
        let p = small_test_params(Precision::F32); // mwg=16 mdima=4 vw=2
        assert!(p.loader_a_vec()); // 16 % (4*2) == 0
        let mut q = p;
        q.vw = 4;
        q.mdima = 8; // wg=16, kdima=2, kwg%2 ok; mwg=16 % (8*4)=32 != 0
        assert!(!q.loader_a_vec());
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(96, 32), 96);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(0, 3), 0);
    }

    #[test]
    fn describe_contains_key_fields() {
        let d = tahiti_dgemm_best().describe();
        assert!(d.contains("96,32,48"));
        assert!(d.contains("alg=BA"));
        assert!(d.contains("shared=B"));
        assert!(d.contains("CBL,CBL"));
    }

    #[test]
    fn params_json_round_trip() {
        let p = tahiti_dgemm_best();
        let text = p.to_json().to_string_pretty();
        let back = KernelParams::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn params_from_json_rejects_corrupt_fields() {
        let mut doc = tahiti_dgemm_best().to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "algorithm" {
                    *v = Json::from("XX");
                }
            }
        }
        assert!(KernelParams::from_json(&doc).is_err());
        assert!(KernelParams::from_json(&Json::obj(vec![])).is_err());
    }
}
