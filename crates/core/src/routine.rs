//! The tuned GEMM routine layer (§III-D, §IV-B).
//!
//! The paper's strategy: implement every GEMM type through the single
//! fast `C ← α·Aᵀ·B + β·C` kernel by first *copying* each operand into a
//! zero-padded staging buffer in the tuned block-major layout (with a
//! transposition where the type requires it), running the kernel, and
//! merging the padded result back. The copy is `O(N²)`, the kernel
//! `O(N³)` — so the routine is slow for small matrices and amortised for
//! large ones, which Figs. 9–11 show as the crossover against vendor
//! libraries.
//!
//! [`TunedGemm`] bundles a device with one tuned parameter set per
//! precision and provides:
//!
//! * [`TunedGemm::gemm`] — functional column-major GEMM (all four
//!   NN/NT/TN/TT types) executed natively, returning both the result and
//!   a [`GemmRun`] with the modelled time breakdown;
//! * [`TunedGemm::predict`] — the time/GFlop/s model alone (used by the
//!   figure-regeneration harness where only performance matters);
//! * [`TunedGemm::kernel_gflops`] — bare-kernel performance without copy
//!   overhead (the Fig. 7 quantity).

use crate::codegen::generate;
use crate::executor::{run_native, run_native_fast};
use crate::params::KernelParams;
use crate::profile::launch_profile;
use crate::tile::{TileDecision, TileSelector};
use clgemm_blas::layout::round_up;
use clgemm_blas::matrix::Matrix;
use clgemm_blas::pack::{
    merge_c, merge_c_par, pack_into, pack_into_par, stage_c_into, stage_c_into_par, PackSpec,
};
use clgemm_blas::scalar::{Precision, Scalar};
use clgemm_blas::workspace::{Workspace, WorkspaceScalar};
use clgemm_blas::{GemmType, Trans};
use clgemm_device::{estimate, DeviceSpec};
use clgemm_sim::{copy_time, pack_time};
use clgemm_trace::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Global-registry handles for the routine layer, resolved once so the
/// per-call cost is a few relaxed atomic RMWs (no map lookups on the
/// GEMM hot path). The phase histograms record the *modelled* splits
/// the `GemmRun` already carries — previously bespoke fields read by
/// nobody, now exported as distributions next to every other layer's
/// metrics; wall time is covered by the `routine.*` spans.
struct RoutineMetrics {
    gemms: Arc<Counter>,
    pack_a: Arc<Histogram>,
    pack_b: Arc<Histogram>,
    stage_c: Arc<Histogram>,
    kernel: Arc<Histogram>,
    total: Arc<Histogram>,
}

impl RoutineMetrics {
    fn get() -> &'static RoutineMetrics {
        static METRICS: OnceLock<RoutineMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = Registry::global();
            RoutineMetrics {
                gemms: r.counter("routine_gemm_total"),
                pack_a: r.histogram("routine_pack_a_seconds", 1e-9),
                pack_b: r.histogram("routine_pack_b_seconds", 1e-9),
                stage_c: r.histogram("routine_stage_c_seconds", 1e-9),
                kernel: r.histogram("routine_kernel_seconds", 1e-9),
                total: r.histogram("routine_total_seconds", 1e-9),
            }
        })
    }
}

/// Padded problems whose every edge is at or below this route their
/// packing, staging and merging through the serial copiers: below ~64³
/// the scoped-thread fork/join of the parallel packers costs more than
/// the `O(N²)` copies they split up.
pub const SERIAL_PACK_MAX: usize = 64;

/// How the fast path moved data: serially below [`SERIAL_PACK_MAX`],
/// through the scoped-thread packers above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackDecision {
    /// `true` when the serial copiers ran.
    pub serial: bool,
    /// The padded-edge threshold the decision compared against.
    pub threshold: usize,
}

/// Timing breakdown of one routine invocation (modelled seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmRun {
    /// Packing time for A (copy + optional transpose + layout change).
    pub pack_a: f64,
    /// Packing time for B.
    pub pack_b: f64,
    /// Staging C in and merging it back out.
    pub stage_c: f64,
    /// The `AᵀB` kernel itself.
    pub kernel: f64,
    /// Total routine time.
    pub total: f64,
    /// Effective routine GFlop/s (`2MNK / total`).
    pub gflops: f64,
    /// Bare-kernel GFlop/s (`2MNK / kernel`).
    pub kernel_gflops: f64,
    /// The host register-tile decision for the fast path: the tuned
    /// blocking, the tile that executed, and why they differ if they do.
    /// `None` when no fast microkernel ran (reference engine, direct
    /// path, degenerate shapes).
    pub tile: Option<TileDecision>,
    /// Whether the fast path copied data serially or in parallel, and
    /// the threshold it compared against. `None` when no fast-path
    /// copies ran (reference engine, direct path, degenerate shapes).
    pub pack: Option<PackDecision>,
}

impl GemmRun {
    /// The run record for a degenerate problem (`m`, `n` or `k` zero):
    /// nothing was packed or launched, so every field is zero. Callers
    /// used to receive a model prediction on clamped dimensions here,
    /// which fabricated timings for work that never happened.
    #[must_use]
    pub fn empty() -> GemmRun {
        GemmRun {
            pack_a: 0.0,
            pack_b: 0.0,
            stage_c: 0.0,
            kernel: 0.0,
            total: 0.0,
            gflops: 0.0,
            kernel_gflops: 0.0,
            tile: None,
            pack: None,
        }
    }
}

/// Which host data path executes the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostEngine {
    /// Panel microkernel + parallel packing + workspace reuse. Produces
    /// bit-for-bit the same `C` as [`HostEngine::Reference`] (the
    /// property tests pin this), just faster.
    #[default]
    Fast,
    /// The original serial pack/stage/[`run_native`]/merge pipeline with
    /// fresh allocations. Kept as the oracle the fast engine is verified
    /// against, mirroring `ExecOptions::reference()` in the clc VM.
    Reference,
}

/// Options controlling [`TunedGemm::gemm_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmOptions {
    /// The host data path to use.
    pub engine: HostEngine,
}

impl GemmOptions {
    /// The known-good oracle configuration.
    #[must_use]
    pub fn reference() -> GemmOptions {
        GemmOptions {
            engine: HostEngine::Reference,
        }
    }
}

/// A device plus tuned kernels for both precisions.
#[derive(Debug, Clone)]
pub struct TunedGemm {
    device: DeviceSpec,
    dgemm: KernelParams,
    sgemm: KernelParams,
}

impl TunedGemm {
    /// Bundle explicitly chosen parameter sets.
    ///
    /// # Panics
    /// Panics if a parameter set is invalid or has the wrong precision.
    #[must_use]
    pub fn new(device: DeviceSpec, dgemm: KernelParams, sgemm: KernelParams) -> TunedGemm {
        assert_eq!(dgemm.precision, Precision::F64, "dgemm params must be F64");
        assert_eq!(sgemm.precision, Precision::F32, "sgemm params must be F32");
        dgemm.validate().expect("invalid DGEMM params");
        sgemm.validate().expect("invalid SGEMM params");
        // Both must also generate (defence in depth; validate covers it).
        generate(&dgemm).expect("DGEMM params must generate");
        generate(&sgemm).expect("SGEMM params must generate");
        TunedGemm {
            device,
            dgemm,
            sgemm,
        }
    }

    /// Tune both precisions with the given space/options and bundle the
    /// winners.
    #[must_use]
    pub fn tune(
        device: &DeviceSpec,
        space: &crate::tuner::SearchSpace,
        opts: &crate::tuner::SearchOpts,
    ) -> TunedGemm {
        let d = crate::tuner::tune(device, Precision::F64, space, opts);
        let s = crate::tuner::tune(device, Precision::F32, space, opts);
        TunedGemm {
            device: device.clone(),
            dgemm: d.best.params,
            sgemm: s.best.params,
        }
    }

    /// The device this instance targets.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The tuned parameters for a precision.
    #[must_use]
    pub fn params(&self, precision: Precision) -> &KernelParams {
        match precision {
            Precision::F64 => &self.dgemm,
            Precision::F32 => &self.sgemm,
        }
    }

    fn params_for<T: Scalar>(&self) -> &KernelParams {
        match T::PREC_TAG {
            'D' => &self.dgemm,
            _ => &self.sgemm,
        }
    }

    /// Full column-major GEMM `C ← α·op(A)·op(B) + β·C`, executed
    /// natively with generated-kernel numerics, with modelled timing.
    ///
    /// Convenience wrapper over [`TunedGemm::gemm_with`] using a
    /// throwaway [`Workspace`] and the default (fast) engine. Callers on
    /// a hot path should hold their own workspace to avoid per-call
    /// staging allocations.
    ///
    /// # Panics
    /// Panics on inconsistent operand shapes (BLAS argument errors).
    pub fn gemm<T: WorkspaceScalar>(
        &self,
        ty: GemmType,
        alpha: T,
        a: &Matrix<T>,
        b: &Matrix<T>,
        beta: T,
        c: &mut Matrix<T>,
    ) -> GemmRun {
        let mut ws = Workspace::new();
        self.gemm_with(ty, alpha, a, b, beta, c, &mut ws, &GemmOptions::default())
    }

    /// [`TunedGemm::gemm`] with an explicit staging [`Workspace`] and
    /// engine selection.
    ///
    /// The workspace is a grow-only buffer pool: a steady-state caller
    /// (same shape bucket repeatedly, the serving case) performs zero
    /// staging allocations after the first call. Both engines produce
    /// bit-for-bit identical `C`; [`GemmOptions::reference`] selects the
    /// original serial pipeline as a cross-check oracle.
    ///
    /// Degenerate shapes follow BLAS semantics without fabricating model
    /// timings: `m == 0 || n == 0` touches nothing, `k == 0` computes
    /// `C ← β·C`; both return [`GemmRun::empty`].
    ///
    /// # Panics
    /// Panics on inconsistent operand shapes (BLAS argument errors).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_with<T: WorkspaceScalar>(
        &self,
        ty: GemmType,
        alpha: T,
        a: &Matrix<T>,
        b: &Matrix<T>,
        beta: T,
        c: &mut Matrix<T>,
        ws: &mut Workspace,
        opts: &GemmOptions,
    ) -> GemmRun {
        let _span = clgemm_trace::span!("routine.gemm");
        let (m, n, k) = clgemm_blas::gemm_ref::check_shapes(ty, a, b, c);
        if m == 0 || n == 0 {
            return GemmRun::empty();
        }
        if k == 0 {
            // The product term is an empty sum, so C ← β·C. The update
            // mirrors the kernel's merge arithmetic (`α·acc + β·old` with
            // `acc = 0`) so the result — including NaN propagation from a
            // non-finite α — is bit-identical to running the full path
            // with an empty depth.
            for j in 0..n {
                for i in 0..m {
                    let old = c.at(i, j);
                    *c.at_mut(i, j) = alpha.mul_add(T::ZERO, beta * old);
                }
            }
            return GemmRun::empty();
        }
        if alpha == T::ZERO && opts.engine == HostEngine::Fast {
            // The product contributes nothing, so packing both operands
            // and running the kernel would be pure waste — short-circuit
            // to the β·C merge. The update mirrors the kernel's merge
            // arithmetic (`α·acc + β·old`, here with a zero product) so
            // the result matches the full pipeline bit for bit up to the
            // sign of exact zeros; the reference engine keeps the full
            // pipeline as the oracle.
            for j in 0..n {
                for i in 0..m {
                    let old = c.at(i, j);
                    *c.at_mut(i, j) = alpha.mul_add(T::ZERO, beta * old);
                }
            }
            return GemmRun::empty();
        }
        let p = *self.params_for::<T>();

        // --- pack operands -------------------------------------------------
        // The kernel consumes op(A) depth-first: packed A[p][i] = op(A)[i][p],
        // so the pack transpose is the *flip* of the caller's op for A and
        // the op itself for B.
        // Layout blocks are Kwg deep, but the depth is padded to the
        // algorithm's K granularity (2·Kwg for DB).
        let kp = round_up(k, p.k_multiple());
        let spec_a = PackSpec {
            trans: ty.ta.flipped(),
            layout: p.layout_a,
            wwg: p.mwg,
            kwg: p.kwg,
        };
        let spec_b = PackSpec {
            trans: ty.tb,
            layout: p.layout_b,
            wwg: p.nwg,
            kwg: p.kwg,
        };
        let da = clgemm_blas::layout::PackedDims::new(kp, round_up(m, p.mwg), p.mwg, p.kwg)
            .expect("padded dims divide the blocking");
        let db = clgemm_blas::layout::PackedDims::new(kp, round_up(n, p.nwg), p.nwg, p.kwg)
            .expect("padded dims divide the blocking");
        let (mp, np) = (da.width, db.width);

        let mut pack_decision = None;
        let decision = match opts.engine {
            HostEngine::Fast => {
                // Explicit, reported tile selection — the old code
                // clamped the tuned blocking here and told no one.
                let decision =
                    TileSelector::host().select(T::PRECISION, (p.mwi(), p.nwi()), mp, np);
                // Below the threshold the scoped-thread fork/join costs
                // more than the copies it splits; route the O(N²) moves
                // through the serial copiers and record the decision.
                let serial = mp.max(np).max(kp) <= SERIAL_PACK_MAX;
                pack_decision = Some(PackDecision {
                    serial,
                    threshold: SERIAL_PACK_MAX,
                });
                let (pa, pb, staged) = ws.pool::<T>().buffers(da.len(), db.len(), mp * np);
                {
                    let _g = clgemm_trace::span!("routine.pack_a");
                    if serial {
                        pack_into(a, spec_a, k, m, pa, da);
                    } else {
                        pack_into_par(a, spec_a, k, m, pa, da);
                    }
                }
                {
                    let _g = clgemm_trace::span!("routine.pack_b");
                    if serial {
                        pack_into(b, spec_b, k, n, pb, db);
                    } else {
                        pack_into_par(b, spec_b, k, n, pb, db);
                    }
                }
                {
                    let _g = clgemm_trace::span!("routine.stage_c");
                    if serial {
                        stage_c_into(c, p.mwg, p.nwg, staged);
                    } else {
                        stage_c_into_par(c, p.mwg, p.nwg, staged);
                    }
                }
                {
                    let _g = clgemm_trace::span!("routine.kernel");
                    run_native_fast(
                        mp,
                        np,
                        kp,
                        alpha,
                        pa,
                        da,
                        p.layout_a,
                        pb,
                        db,
                        p.layout_b,
                        beta,
                        staged,
                        decision.tile,
                    );
                }
                {
                    let _g = clgemm_trace::span!("routine.merge_c");
                    if serial {
                        merge_c(staged, p.mwg, p.nwg, c);
                    } else {
                        merge_c_par(staged, p.mwg, p.nwg, c);
                    }
                }
                Some(decision)
            }
            HostEngine::Reference => {
                let mut pa = vec![T::ZERO; da.len()];
                let mut pb = vec![T::ZERO; db.len()];
                clgemm_blas::pack::pack_into(a, spec_a, k, m, &mut pa, da);
                clgemm_blas::pack::pack_into(b, spec_b, k, n, &mut pb, db);
                let mut staged = clgemm_blas::pack::stage_c(c, p.mwg, p.nwg);
                run_native(
                    mp,
                    np,
                    kp,
                    alpha,
                    &pa,
                    da,
                    p.layout_a,
                    &pb,
                    db,
                    p.layout_b,
                    beta,
                    &mut staged,
                );
                merge_c(&staged, p.mwg, p.nwg, c);
                None
            }
        };

        let mut run = self.predict(T::PREC_TAG == 'D', ty, m, n, k);
        // Report the tile that actually executed: `None` for the
        // reference engine (it runs untiled and stays the oracle).
        run.tile = decision;
        run.pack = pack_decision;
        let metrics = RoutineMetrics::get();
        metrics.gemms.inc();
        metrics.pack_a.observe_value(run.pack_a);
        metrics.pack_b.observe_value(run.pack_b);
        metrics.stage_c.observe_value(run.stage_c);
        metrics.kernel.observe_value(run.kernel);
        metrics.total.observe_value(run.total);
        if let Some(d) = decision {
            // Labeled, created on first use: only reasons that actually
            // occur appear in the exposition.
            Registry::global()
                .counter_labeled(
                    "routine_tile_decisions_total",
                    &[("reason", d.reason.tag())],
                )
                .inc();
        }
        run
    }

    /// The routine-time model for a problem, without executing anything.
    #[must_use]
    pub fn predict(
        &self,
        double_precision: bool,
        ty: GemmType,
        m: usize,
        n: usize,
        k: usize,
    ) -> GemmRun {
        let p = if double_precision {
            &self.dgemm
        } else {
            &self.sgemm
        };
        let e = p.elem_bytes();
        let mp = round_up(m, p.mwg);
        let np = round_up(n, p.nwg);
        let kp = round_up(k, p.k_multiple());

        // Packing A reads op(A) — transposed reads when the pack flips.
        let pack_a = pack_time(&self.device, k, m, kp, mp, e, ty.ta == Trans::No).seconds;
        let pack_b = pack_time(&self.device, k, n, kp, np, e, ty.tb == Trans::Yes).seconds;
        // C staged in and merged out (strided against the column-major
        // user matrix), plus the routine's fixed API overhead: separate
        // enqueues for two packs, the kernel, the merge, and a final
        // synchronisation.
        let stage_c = 2.0 * copy_time(&self.device, m * n * e, mp * np * e, 0.30).seconds
            + 6.0 * self.device.micro.launch_overhead_us * 1e-6;

        let prof = launch_profile(p, &self.device, mp, np, kp);
        let kernel = match estimate(&self.device, &prof) {
            Ok(est) => est.seconds,
            // A tuned kernel always launches on its own device; this arm
            // only triggers for hand-built mismatched bundles.
            Err(_) => f64::INFINITY,
        };

        let total = pack_a + pack_b + stage_c + kernel;
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let precision = if double_precision {
            Precision::F64
        } else {
            Precision::F32
        };
        GemmRun {
            pack_a,
            pack_b,
            stage_c,
            kernel,
            total,
            gflops: flops / total / 1e9,
            kernel_gflops: flops / kernel / 1e9,
            tile: Some(TileSelector::host().select(precision, (p.mwi(), p.nwi()), mp, np)),
            pack: Some(PackDecision {
                serial: mp.max(np).max(kp) <= SERIAL_PACK_MAX,
                threshold: SERIAL_PACK_MAX,
            }),
        }
    }

    /// Bare tuned-kernel GFlop/s at a square padded size (Fig. 7).
    #[must_use]
    pub fn kernel_gflops(&self, precision: Precision, n: usize) -> Option<f64> {
        let p = self.params(precision);
        crate::tuner::search::measure_gflops(p, &self.device, round_up(n, p.lcm_block()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{small_test_params, tahiti_dgemm_best};
    use clgemm_blas::error::{compare, gemm_tolerance};
    use clgemm_blas::gemm_ref::gemm_parallel;
    use clgemm_blas::matrix::StorageOrder;
    use clgemm_device::DeviceId;

    fn small_tuned() -> TunedGemm {
        TunedGemm::new(
            DeviceId::Tahiti.spec(),
            small_test_params(Precision::F64),
            small_test_params(Precision::F32),
        )
    }

    fn check_type<T: WorkspaceScalar>(tg: &TunedGemm, ty: GemmType, m: usize, n: usize, k: usize) {
        let (ar, ac) = match ty.ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match ty.tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = Matrix::<T>::test_pattern(ar, ac, StorageOrder::ColMajor, 1);
        let b = Matrix::<T>::test_pattern(br, bc, StorageOrder::ColMajor, 2);
        let c0 = Matrix::<T>::test_pattern(m, n, StorageOrder::ColMajor, 3);
        let alpha = T::from_f64(1.25);
        let beta = T::from_f64(-0.75);

        let mut c_tuned = c0.clone();
        let run = tg.gemm(ty, alpha, &a, &b, beta, &mut c_tuned);
        assert!(run.total > 0.0 && run.gflops > 0.0);

        let mut c_ref = c0.clone();
        gemm_parallel(ty, alpha, &a, &b, beta, &mut c_ref);
        let rep = compare(&c_tuned, &c_ref);
        let tol = gemm_tolerance::<T>(k);
        assert!(
            rep.passes(tol),
            "{ty} {m}x{n}x{k}: max rel err {} > tol {tol}",
            rep.max_rel
        );
    }

    #[test]
    fn all_four_types_match_reference_f64() {
        let tg = small_tuned();
        for ty in GemmType::ALL {
            check_type::<f64>(&tg, ty, 40, 24, 20);
        }
    }

    #[test]
    fn all_four_types_match_reference_f32() {
        let tg = small_tuned();
        for ty in GemmType::ALL {
            check_type::<f32>(&tg, ty, 24, 40, 36);
        }
    }

    #[test]
    fn non_multiple_sizes_are_zero_padded_correctly() {
        let tg = small_tuned();
        // Sizes deliberately not multiples of Mwg=Nwg=16, Kwg=8.
        check_type::<f64>(&tg, GemmType::NN, 17, 19, 13);
        check_type::<f64>(&tg, GemmType::TT, 15, 33, 9);
        check_type::<f32>(&tg, GemmType::NT, 31, 17, 23);
    }

    #[test]
    fn paper_tahiti_params_work_in_routine() {
        let tg = TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        );
        check_type::<f64>(&tg, GemmType::NN, 100, 40, 50);
    }

    #[test]
    fn copy_overhead_vanishes_for_large_n() {
        let tg = TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        );
        let small = tg.predict(true, GemmType::NN, 512, 512, 512);
        let large = tg.predict(true, GemmType::NN, 6144, 6144, 6144);
        let small_frac = (small.pack_a + small.pack_b + small.stage_c) / small.total;
        let large_frac = (large.pack_a + large.pack_b + large.stage_c) / large.total;
        assert!(
            small_frac > 2.0 * large_frac,
            "copy share must shrink with N: {small_frac:.3} vs {large_frac:.3}"
        );
        assert!(large.gflops > 0.8 * large.kernel_gflops);
    }

    #[test]
    fn routine_perf_is_nearly_type_independent() {
        // §IV-B: "The performance of our OpenCL implementation does not
        // highly depend on GEMM types."
        let tg = TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        );
        let perfs: Vec<f64> = GemmType::ALL
            .iter()
            .map(|ty| tg.predict(true, *ty, 4096, 4096, 4096).gflops)
            .collect();
        let max = perfs.iter().cloned().fold(0.0, f64::max);
        let min = perfs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.1, "type spread too large: {perfs:?}");
    }

    #[test]
    fn kernel_gflops_exceeds_routine_gflops() {
        let tg = TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        );
        let run = tg.predict(true, GemmType::NN, 2304, 2304, 2304);
        assert!(run.kernel_gflops > run.gflops);
        let kg = tg.kernel_gflops(Precision::F64, 2304).unwrap();
        assert!((kg - run.kernel_gflops).abs() / kg < 0.2);
    }

    #[test]
    #[should_panic(expected = "dgemm params must be F64")]
    fn wrong_precision_bundle_panics() {
        let _ = TunedGemm::new(
            DeviceId::Tahiti.spec(),
            small_test_params(Precision::F32),
            small_test_params(Precision::F32),
        );
    }

    #[test]
    fn degenerate_m_or_n_touches_nothing_and_reports_empty() {
        let tg = small_tuned();
        for opts in [GemmOptions::default(), GemmOptions::reference()] {
            for (m, n) in [(0usize, 8usize), (8, 0), (0, 0)] {
                let a = Matrix::<f64>::test_pattern(m, 5, StorageOrder::ColMajor, 1);
                let b = Matrix::<f64>::test_pattern(5, n, StorageOrder::ColMajor, 2);
                let mut c = Matrix::<f64>::zeros(m, n, StorageOrder::ColMajor);
                let mut ws = Workspace::new();
                let run = tg.gemm_with(GemmType::NN, 2.0, &a, &b, 3.0, &mut c, &mut ws, &opts);
                // No fabricated model timings for work that never ran.
                assert_eq!(run, GemmRun::empty(), "{opts:?} {m}x{n}");
                assert_eq!(ws.grows(), 0, "no staging buffers for an empty C");
            }
        }
    }

    #[test]
    fn k_zero_scales_c_by_beta_for_all_types_and_engines() {
        let tg = small_tuned();
        for opts in [GemmOptions::default(), GemmOptions::reference()] {
            for ty in GemmType::ALL {
                let (ar, ac) = if ty.ta == Trans::No { (7, 0) } else { (0, 7) };
                let (br, bc) = if ty.tb == Trans::No { (0, 9) } else { (9, 0) };
                let a = Matrix::<f64>::test_pattern(ar, ac, StorageOrder::ColMajor, 1);
                let b = Matrix::<f64>::test_pattern(br, bc, StorageOrder::ColMajor, 2);
                let c0 = Matrix::<f64>::test_pattern(7, 9, StorageOrder::ColMajor, 3);
                let mut c = c0.clone();
                let mut ws = Workspace::new();
                let run = tg.gemm_with(ty, 2.0, &a, &b, -0.5, &mut c, &mut ws, &opts);
                assert_eq!(run, GemmRun::empty(), "{opts:?} {ty}");
                for j in 0..9 {
                    for i in 0..7 {
                        assert_eq!(c.at(i, j), -0.5 * c0.at(i, j), "{opts:?} {ty} ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_engine_is_bit_identical_to_reference() {
        let tg = small_tuned();
        let mut ws = Workspace::new();
        for ty in GemmType::ALL {
            for (m, n, k) in [(17usize, 19usize, 13usize), (40, 24, 20), (8, 8, 8)] {
                let (ar, ac) = if ty.ta == Trans::No { (m, k) } else { (k, m) };
                let (br, bc) = if ty.tb == Trans::No { (k, n) } else { (n, k) };
                let a = Matrix::<f64>::test_pattern(ar, ac, StorageOrder::ColMajor, 1);
                let b = Matrix::<f64>::test_pattern(br, bc, StorageOrder::ColMajor, 2);
                let c0 = Matrix::<f64>::test_pattern(m, n, StorageOrder::ColMajor, 3);

                let mut c_fast = c0.clone();
                tg.gemm_with(
                    ty,
                    1.25,
                    &a,
                    &b,
                    -0.75,
                    &mut c_fast,
                    &mut ws,
                    &GemmOptions::default(),
                );
                let mut c_ref = c0.clone();
                let mut ws_ref = Workspace::new();
                tg.gemm_with(
                    ty,
                    1.25,
                    &a,
                    &b,
                    -0.75,
                    &mut c_ref,
                    &mut ws_ref,
                    &GemmOptions::reference(),
                );
                assert_eq!(
                    c_fast.as_slice(),
                    c_ref.as_slice(),
                    "{ty} {m}x{n}x{k} engines diverge"
                );
            }
        }
    }

    #[test]
    fn workspace_stops_growing_on_repeated_shapes() {
        let tg = small_tuned();
        let mut ws = Workspace::new();
        let a = Matrix::<f32>::test_pattern(33, 21, StorageOrder::ColMajor, 1);
        let b = Matrix::<f32>::test_pattern(21, 27, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f32>::test_pattern(33, 27, StorageOrder::ColMajor, 3);
        tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.5,
            &mut c,
            &mut ws,
            &GemmOptions::default(),
        );
        let grows = ws.grows();
        assert!(grows > 0, "first call must allocate staging buffers");
        for _ in 0..3 {
            tg.gemm_with(
                GemmType::NN,
                1.0,
                &a,
                &b,
                0.5,
                &mut c,
                &mut ws,
                &GemmOptions::default(),
            );
        }
        assert_eq!(ws.grows(), grows, "steady state must not reallocate");
    }

    #[test]
    fn fast_run_reports_the_tile_decision_and_reference_does_not() {
        let tg = small_tuned();
        let a = Matrix::<f64>::test_pattern(20, 12, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(12, 24, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::zeros(20, 24, StorageOrder::ColMajor);
        let mut ws = Workspace::new();

        let fast = tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::default(),
        );
        let d = fast.tile.expect("fast engine must report its tile");
        assert_eq!(
            d.tuned,
            (
                tg.params(Precision::F64).mwi(),
                tg.params(Precision::F64).nwi()
            )
        );
        assert_eq!(
            d,
            tg.predict(true, GemmType::NN, 20, 24, 12).tile.unwrap(),
            "prediction must report the same decision the execution used"
        );

        let reference = tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::reference(),
        );
        assert_eq!(reference.tile, None, "the reference engine runs untiled");
    }

    #[test]
    fn alpha_zero_short_circuits_without_staging() {
        let tg = small_tuned();
        for ty in GemmType::ALL {
            let (ar, ac) = if ty.ta == Trans::No {
                (18, 11)
            } else {
                (11, 18)
            };
            let (br, bc) = if ty.tb == Trans::No {
                (11, 23)
            } else {
                (23, 11)
            };
            let a = Matrix::<f64>::test_pattern(ar, ac, StorageOrder::ColMajor, 1);
            let b = Matrix::<f64>::test_pattern(br, bc, StorageOrder::ColMajor, 2);
            let c0 = Matrix::<f64>::from_fn(18, 23, StorageOrder::ColMajor, |i, j| {
                (i * 23 + j + 1) as f64 * 0.125
            });

            let mut c_fast = c0.clone();
            let mut ws = Workspace::new();
            let run = tg.gemm_with(
                ty,
                0.0,
                &a,
                &b,
                0.75,
                &mut c_fast,
                &mut ws,
                &GemmOptions::default(),
            );
            assert_eq!(run, GemmRun::empty(), "{ty}: nothing was packed or run");
            assert_eq!(ws.grows(), 0, "{ty}: α = 0 must not stage anything");

            // Bit-equality against the full reference pipeline. Positive
            // data and a nonzero β·C term keep every merge input away
            // from signed zeros, so `to_bits` comparison is exact.
            let mut c_ref = c0.clone();
            let mut ws_ref = Workspace::new();
            tg.gemm_with(
                ty,
                0.0,
                &a,
                &b,
                0.75,
                &mut c_ref,
                &mut ws_ref,
                &GemmOptions::reference(),
            );
            for (x, y) in c_fast.as_slice().iter().zip(c_ref.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ty}: short-circuit diverges");
            }
        }
    }

    #[test]
    fn sub_threshold_shapes_pack_serially_and_report_it() {
        let tg = small_tuned();
        let mut ws = Workspace::new();
        // 40×24×20 pads to 48×32×24 with the 16/16/8 test blocking: every
        // edge ≤ 64, so the serial copiers run.
        let a = Matrix::<f64>::test_pattern(40, 20, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(20, 24, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::zeros(40, 24, StorageOrder::ColMajor);
        let run = tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::default(),
        );
        let pd = run.pack.expect("fast engine must report its pack path");
        assert!(pd.serial, "sub-threshold shapes copy serially");
        assert_eq!(pd.threshold, SERIAL_PACK_MAX);
        assert_eq!(
            run.pack,
            tg.predict(true, GemmType::NN, 40, 24, 20).pack,
            "prediction must report the same pack decision"
        );

        // One padded edge past the threshold: parallel copiers.
        let a = Matrix::<f64>::test_pattern(70, 20, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(20, 24, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::zeros(70, 24, StorageOrder::ColMajor);
        let run = tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::default(),
        );
        assert!(!run.pack.unwrap().serial, "80-padded rows exceed 64");

        // The reference engine reports no pack decision.
        let mut c = Matrix::<f64>::zeros(70, 24, StorageOrder::ColMajor);
        let run = tg.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::reference(),
        );
        assert_eq!(run.pack, None);
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        let tg = small_tuned();
        let a = Matrix::<f64>::test_pattern(20, 12, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(12, 24, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::from_fn(20, 24, StorageOrder::ColMajor, |_, _| 1e30);
        tg.gemm(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.all_finite());
        let mut c_ref = Matrix::<f64>::zeros(20, 24, StorageOrder::ColMajor);
        gemm_parallel(GemmType::NN, 1.0, &a, &b, 0.0, &mut c_ref);
        assert!(compare(&c, &c_ref).passes(gemm_tolerance::<f64>(12)));
    }
}

/// Which execution path a [`HybridGemm`] call took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPath {
    /// Pack into block-major buffers and run the tuned `AᵀB` kernel
    /// (the §IV-B routine; wins at large sizes).
    Packed,
    /// The copy-free guarded kernel of [`crate::direct`] (the paper's §V
    /// future work; wins at small sizes where packing dominates).
    Direct,
}

impl std::fmt::Display for GemmPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GemmPath::Packed => "packed",
            GemmPath::Direct => "direct",
        })
    }
}

/// The combined implementation the paper's conclusion asks for: predict
/// both paths and run whichever the model says is faster.
#[derive(Debug, Clone)]
pub struct HybridGemm {
    tuned: TunedGemm,
}

impl HybridGemm {
    /// Wrap a tuned routine.
    #[must_use]
    pub fn new(tuned: TunedGemm) -> HybridGemm {
        HybridGemm { tuned }
    }

    /// The underlying packed routine.
    #[must_use]
    pub fn tuned(&self) -> &TunedGemm {
        &self.tuned
    }

    /// Modelled seconds of the direct path.
    #[must_use]
    pub fn direct_seconds(
        &self,
        double_precision: bool,
        ty: GemmType,
        m: usize,
        n: usize,
        k: usize,
    ) -> f64 {
        let precision = if double_precision {
            Precision::F64
        } else {
            Precision::F32
        };
        let dp = crate::direct::DirectParams::default_for(ty, precision);
        let prof = crate::direct::direct_profile(&dp, self.tuned.device(), m, n, k);
        match estimate(self.tuned.device(), &prof) {
            Ok(est) => est.seconds,
            Err(_) => f64::INFINITY,
        }
    }

    /// Choose the faster path and report both predictions.
    #[must_use]
    pub fn choose(
        &self,
        double_precision: bool,
        ty: GemmType,
        m: usize,
        n: usize,
        k: usize,
    ) -> (GemmPath, GemmRun) {
        let packed = self.tuned.predict(double_precision, ty, m, n, k);
        let direct_s = self.direct_seconds(double_precision, ty, m, n, k);
        if direct_s < packed.total {
            let flops = 2.0 * m as f64 * n as f64 * k as f64;
            let run = GemmRun {
                pack_a: 0.0,
                pack_b: 0.0,
                stage_c: 0.0,
                kernel: direct_s,
                total: direct_s,
                gflops: flops / direct_s / 1e9,
                kernel_gflops: flops / direct_s / 1e9,
                tile: None,
                pack: None,
            };
            (GemmPath::Direct, run)
        } else {
            (GemmPath::Packed, packed)
        }
    }

    /// Column-major GEMM through whichever path the model prefers.
    ///
    /// Convenience wrapper over [`HybridGemm::gemm_with`] using a
    /// throwaway [`Workspace`] and the default engine; hot-path callers
    /// should hold their own workspace.
    ///
    /// # Panics
    /// Panics on inconsistent operand shapes.
    pub fn gemm<T: WorkspaceScalar>(
        &self,
        ty: GemmType,
        alpha: T,
        a: &Matrix<T>,
        b: &Matrix<T>,
        beta: T,
        c: &mut Matrix<T>,
    ) -> (GemmPath, GemmRun) {
        let mut ws = Workspace::new();
        self.gemm_with(ty, alpha, a, b, beta, c, &mut ws, &GemmOptions::default())
    }

    /// [`HybridGemm::gemm`] with an explicit staging [`Workspace`] and
    /// engine selection — the same plumbing [`TunedGemm::gemm_with`]
    /// exposes, so serving callers reuse one workspace across both
    /// paths. The direct path reads the user matrices in place and
    /// performs no staging at all: it never grows the workspace, which
    /// the steady-state allocation gates rely on.
    ///
    /// # Panics
    /// Panics on inconsistent operand shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_with<T: WorkspaceScalar>(
        &self,
        ty: GemmType,
        alpha: T,
        a: &Matrix<T>,
        b: &Matrix<T>,
        beta: T,
        c: &mut Matrix<T>,
        ws: &mut Workspace,
        opts: &GemmOptions,
    ) -> (GemmPath, GemmRun) {
        let (m, n, k) = clgemm_blas::gemm_ref::check_shapes(ty, a, b, c);
        let (path, run) = self.choose(T::PREC_TAG == 'D', ty, m.max(1), n.max(1), k.max(1));
        Registry::global()
            .counter_labeled(
                "routine_path_total",
                &[(
                    "path",
                    match path {
                        GemmPath::Packed => "packed",
                        GemmPath::Direct => "direct",
                    },
                )],
            )
            .inc();
        match path {
            GemmPath::Packed => {
                let run = self.tuned.gemm_with(ty, alpha, a, b, beta, c, ws, opts);
                (GemmPath::Packed, run)
            }
            GemmPath::Direct => {
                let _span = clgemm_trace::span!("routine.gemm.direct");
                crate::direct::run_direct_native(ty, alpha, a, b, beta, c);
                (GemmPath::Direct, run)
            }
        }
    }

    /// The size (square problems) where the packed path overtakes the
    /// direct path, by bisection on the model. Returns `None` if one path
    /// dominates over the whole probed range.
    #[must_use]
    pub fn crossover(&self, double_precision: bool, ty: GemmType, max_n: usize) -> Option<usize> {
        let prefers_direct =
            |n: usize| self.choose(double_precision, ty, n, n, n).0 == GemmPath::Direct;
        if !prefers_direct(16) || prefers_direct(max_n) {
            return None;
        }
        let (mut lo, mut hi) = (16usize, max_n);
        while hi - lo > 8 {
            let mid = (lo + hi) / 2;
            if prefers_direct(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use crate::params::{small_test_params, tahiti_dgemm_best};
    use clgemm_blas::error::{compare, gemm_tolerance};
    use clgemm_blas::gemm_ref::gemm_blocked;
    use clgemm_blas::matrix::StorageOrder;
    use clgemm_device::DeviceId;

    fn hybrid() -> HybridGemm {
        HybridGemm::new(TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        ))
    }

    #[test]
    fn small_problems_take_the_direct_path() {
        let h = hybrid();
        let (path, run) = h.choose(true, GemmType::NN, 64, 64, 64);
        assert_eq!(
            path,
            GemmPath::Direct,
            "packing 64x64 cannot beat a single direct launch"
        );
        assert_eq!(run.pack_a, 0.0);
    }

    #[test]
    fn large_problems_take_the_packed_path() {
        let h = hybrid();
        let (path, _) = h.choose(true, GemmType::NN, 4096, 4096, 4096);
        assert_eq!(path, GemmPath::Packed);
    }

    #[test]
    fn crossover_exists_and_is_plausible() {
        let h = hybrid();
        let x = h
            .crossover(true, GemmType::NN, 8192)
            .expect("crossover in range");
        assert!(
            (64..4096).contains(&x),
            "crossover N={x} should sit between tiny and huge sizes"
        );
        // Hybrid is never worse than either pure path.
        for n in [128usize, 512, 2048] {
            let (_, hrun) = h.choose(true, GemmType::NN, n, n, n);
            let packed = h.tuned().predict(true, GemmType::NN, n, n, n).total;
            let direct = h.direct_seconds(true, GemmType::NN, n, n, n);
            assert!(hrun.total <= packed * 1.0001 && hrun.total <= direct * 1.0001);
        }
    }

    #[test]
    fn hybrid_gemm_is_numerically_correct_on_both_paths() {
        let h = hybrid();
        for (m, n, k) in [(30, 20, 25), (200, 150, 120)] {
            let a = Matrix::<f64>::test_pattern(m, k, StorageOrder::ColMajor, 1);
            let b = Matrix::<f64>::test_pattern(k, n, StorageOrder::ColMajor, 2);
            let c0 = Matrix::<f64>::test_pattern(m, n, StorageOrder::ColMajor, 3);
            let mut c = c0.clone();
            let (_path, run) = h.gemm(GemmType::NN, 2.0, &a, &b, 0.5, &mut c);
            assert!(run.total > 0.0);
            let mut c_ref = c0.clone();
            gemm_blocked(GemmType::NN, 2.0, &a, &b, 0.5, &mut c_ref);
            let rep = compare(&c, &c_ref);
            assert!(
                rep.passes(gemm_tolerance::<f64>(k)),
                "{m}x{n}x{k}: {}",
                rep.max_rel
            );
        }
    }

    #[test]
    fn direct_path_shares_the_workspace_without_growing_it() {
        // The copy-free direct path now rides the same gemm_with/Workspace
        // plumbing as the packed path — and must never allocate from it.
        let h = hybrid();
        let mut ws = Workspace::new();
        let a = Matrix::<f64>::test_pattern(48, 48, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(48, 48, StorageOrder::ColMajor, 2);
        for _ in 0..3 {
            let mut c = Matrix::<f64>::test_pattern(48, 48, StorageOrder::ColMajor, 3);
            let (path, run) = h.gemm_with(
                GemmType::NN,
                2.0,
                &a,
                &b,
                0.5,
                &mut c,
                &mut ws,
                &GemmOptions::default(),
            );
            assert_eq!(path, GemmPath::Direct, "48x48 must prefer direct");
            assert_eq!(run.tile, None, "direct path runs no packed microkernel");
        }
        assert_eq!(ws.grows(), 0, "direct traffic must never grow the pool");

        // A packed-path call through the same workspace still stages.
        let a = Matrix::<f64>::test_pattern(900, 900, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(900, 900, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::zeros(900, 900, StorageOrder::ColMajor);
        let (path, run) = h.gemm_with(
            GemmType::NN,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &GemmOptions::default(),
        );
        if path == GemmPath::Packed {
            assert!(ws.grows() > 0, "packed traffic stages through the pool");
            assert!(run.tile.is_some());
        }
    }

    #[test]
    fn transposed_types_shift_the_crossover_down() {
        // Transposed direct reads coalesce poorly, so the packed path
        // becomes competitive earlier for TT than for NN.
        let h = hybrid();
        let x_nn = h.crossover(true, GemmType::NN, 8192);
        let x_tt = h.crossover(true, GemmType::TT, 8192);
        if let (Some(nn), Some(tt)) = (x_nn, x_tt) {
            assert!(
                tt <= nn,
                "TT crossover {tt} should not exceed NN crossover {nn}"
            );
        }
    }
}
