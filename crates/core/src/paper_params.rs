//! The paper's own Table II winning parameter sets, transcribed.
//!
//! These let the reproduction answer a sharper question than "does my
//! tuner find *a* fast kernel": **how fast does the model say the
//! paper's exact winners are?** If the model is faithful, the paper's
//! winners should land close to its reported GFlop/s and close to our
//! own winners (the optimum neighbourhood is flat).
//!
//! Transcription notes (the scanned table interleaves columns, so some
//! cells are best-effort):
//!
//! * Where Table II lists PL/DB kernels sharing only one matrix, our
//!   generator requires both staged (its PL/DB skeletons load A and B
//!   through local memory, like the paper's Figs. 5–6 listings); those
//!   entries are adapted with `local_a = local_b = true` and flagged via
//!   [`PaperEntry::adapted`].
//! * Stride-row letters name the directions using non-unit access.

use crate::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

/// One Table II column.
#[derive(Debug, Clone)]
pub struct PaperEntry {
    pub device: DeviceId,
    pub params: KernelParams,
    /// The paper's reported maximum kernel GFlop/s.
    pub paper_gflops: f64,
    /// `true` when the transcription had to adapt the set to this
    /// generator's constraints.
    pub adapted: bool,
}

#[allow(clippy::too_many_arguments)] // mirrors the Table II column layout
fn p(
    device: DeviceId,
    precision: Precision,
    (mwg, nwg, kwg): (usize, usize, usize),
    kwi: usize,
    (mdimc, ndimc): (usize, usize),
    mdima: usize,
    ndimb: usize,
    vw: usize,
    (sm, sn): (bool, bool),
    (la, lb): (bool, bool),
    (lay_a, lay_b): (BlockLayout, BlockLayout),
    algorithm: Algorithm,
    paper_gflops: f64,
    adapted: bool,
) -> PaperEntry {
    let params = KernelParams {
        mwg,
        nwg,
        kwg,
        mdimc,
        ndimc,
        kwi,
        mdima,
        ndimb,
        vw,
        stride_m: if sm {
            StrideMode::NonUnit
        } else {
            StrideMode::Unit
        },
        stride_n: if sn {
            StrideMode::NonUnit
        } else {
            StrideMode::Unit
        },
        local_a: la,
        local_b: lb,
        layout_a: lay_a,
        layout_b: lay_b,
        algorithm,
        precision,
    };
    PaperEntry {
        device,
        params,
        paper_gflops,
        adapted,
    }
}

/// The six DGEMM winners of Table II.
#[must_use]
pub fn dgemm_winners() -> Vec<PaperEntry> {
    use BlockLayout::{Cbl, Rbl};
    vec![
        // Tahiti: 96,32,48 / 6,2,2 / 16x16 / vw2 / shared B / CBL,CBL / BA.
        p(
            DeviceId::Tahiti,
            Precision::F64,
            (96, 32, 48),
            2,
            (16, 16),
            16,
            16,
            2,
            (false, false),
            (false, true),
            (Cbl, Cbl),
            Algorithm::Ba,
            863.0,
            false,
        ),
        // Cayman: 64,32,48 / 4,4,24 / 16x8 / dimA 16 / NdimB 8 / vw2 /
        // stride N / no local / CBL,CBL / BA.
        p(
            DeviceId::Cayman,
            Precision::F64,
            (64, 32, 48),
            24,
            (16, 8),
            16,
            8,
            2,
            (false, true),
            (false, false),
            (Cbl, Cbl),
            Algorithm::Ba,
            580.0,
            false,
        ),
        // Kepler: 32,64,8 / 2,4,4 / 16x16 / dimA 32 / NdimB 32 / vw1 /
        // stride N / shared A,B / CBL,CBL / BA.
        p(
            DeviceId::Kepler,
            Precision::F64,
            (32, 64, 8),
            4,
            (16, 16),
            32,
            32,
            1,
            (false, true),
            (true, true),
            (Cbl, Cbl),
            Algorithm::Ba,
            128.0,
            false,
        ),
        // Fermi: 64,64,8 / 4,4,2 / 16x16 / dimA 64 / NdimB 64 / vw1 /
        // stride N / shared B + PL in the table -> adapted to A,B for PL.
        p(
            DeviceId::Fermi,
            Precision::F64,
            (64, 64, 8),
            2,
            (16, 16),
            64,
            64,
            1,
            (false, true),
            (true, true),
            (Cbl, Rbl),
            Algorithm::Pl,
            370.0,
            true,
        ),
        // Sandy Bridge: 64,32,64 / 4,8,4 / 16x4 / vw4 / RBL,RBL / DB with
        // shared B. Our DB skeleton double-buffers BOTH operands, which
        // does not fit the 32 KiB local memory at these factors, so the
        // entry is adapted to BA sharing B (local memory is cache-backed
        // on this CPU, so the algorithm choice is near-neutral anyway).
        p(
            DeviceId::SandyBridge,
            Precision::F64,
            (64, 32, 64),
            4,
            (16, 4),
            16,
            4,
            4,
            (false, false),
            (false, true),
            (Rbl, Rbl),
            Algorithm::Ba,
            64.0,
            true,
        ),
        // Bulldozer: 48,32,96 / 2,8,16 / 24x4 / vw2 / stride M / shared B
        // + DB. As for Sandy Bridge, our double-buffered-both skeleton
        // exceeds the 32 KiB local memory, so adapted to BA sharing B.
        p(
            DeviceId::Bulldozer,
            Precision::F64,
            (48, 32, 96),
            16,
            (24, 4),
            24,
            2,
            2,
            (true, false),
            (false, true),
            (Cbl, Rbl),
            Algorithm::Ba,
            37.0,
            true,
        ),
    ]
}

/// The six SGEMM winners of Table II.
#[must_use]
pub fn sgemm_winners() -> Vec<PaperEntry> {
    use BlockLayout::{Cbl, Rbl};
    vec![
        // Tahiti: 96,96,16 / 6,6,2 / 16x16 / vw1 / stride M / shared A,B.
        p(
            DeviceId::Tahiti,
            Precision::F32,
            (96, 96, 16),
            2,
            (16, 16),
            16,
            16,
            1,
            (true, false),
            (true, true),
            (Cbl, Cbl),
            Algorithm::Ba,
            3047.0,
            false,
        ),
        // Cayman: 128,64,96 / 8,8,24 / 16x8 / vw4 / stride N / PL with no
        // shared matrix in the table. A 192x96 SP block cannot fit the
        // 32 KiB local memory at all, so the paper's PL here must have
        // prefetched to private only; adapted to BA with no local memory.
        p(
            DeviceId::Cayman,
            Precision::F32,
            (128, 64, 96),
            24,
            (16, 8),
            16,
            8,
            4,
            (false, true),
            (false, false),
            (Cbl, Cbl),
            Algorithm::Ba,
            2167.0,
            true,
        ),
        // Kepler: 64,64,8 / 8,4,8 / 8x16 / dimA 32 / NdimB 32 / vw2 /
        // stride M / shared A,B / PL.
        p(
            DeviceId::Kepler,
            Precision::F32,
            (64, 64, 8),
            8,
            (8, 16),
            32,
            32,
            2,
            (true, false),
            (true, true),
            (Cbl, Cbl),
            Algorithm::Pl,
            1440.0,
            false,
        ),
        // Fermi: 64,64,16 / 8,4,16 / 8x16 / dimA 32 / NdimB 16 / vw2 /
        // stride M,N / shared B / BA.
        p(
            DeviceId::Fermi,
            Precision::F32,
            (64, 64, 16),
            16,
            (8, 16),
            32,
            16,
            2,
            (true, true),
            (false, true),
            (Cbl, Cbl),
            Algorithm::Ba,
            896.0,
            false,
        ),
        // Sandy Bridge: 64,64,64 / 8,8,8 / 8x8 / vw8 / stride M / RBL,RBL.
        p(
            DeviceId::SandyBridge,
            Precision::F32,
            (64, 64, 64),
            8,
            (8, 8),
            8,
            8,
            8,
            (true, false),
            (false, false),
            (Rbl, Rbl),
            Algorithm::Ba,
            140.0,
            false,
        ),
        // Bulldozer: 32,48,192 / 4,12,4 / 8x4 / vw4 / stride M / CBL,CBL.
        p(
            DeviceId::Bulldozer,
            Precision::F32,
            (32, 48, 192),
            4,
            (8, 4),
            8,
            4,
            4,
            (true, false),
            (false, false),
            (Cbl, Cbl),
            Algorithm::Ba,
            87.0,
            false,
        ),
    ]
}

/// All twelve Table II winners.
#[must_use]
pub fn all_winners() -> Vec<PaperEntry> {
    let mut v = dgemm_winners();
    v.extend(sgemm_winners());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate;
    use crate::tuner::search::verify_kernel;

    #[test]
    fn all_paper_winners_are_valid_in_this_generator() {
        for e in all_winners() {
            e.params
                .validate()
                .unwrap_or_else(|err| panic!("{} {}: {err}", e.device, e.params.precision));
        }
    }

    #[test]
    fn all_paper_winners_generate_and_compile() {
        for e in all_winners() {
            let gen = generate(&e.params).unwrap();
            clgemm_clc::Program::compile(&gen.source)
                .unwrap_or_else(|err| panic!("{}: {err}", e.device));
        }
    }

    #[test]
    fn paper_winners_fit_their_devices() {
        for e in all_winners() {
            let dev = e.device.spec();
            assert!(
                e.params.lds_bytes() <= dev.local_mem_bytes(),
                "{} {}: {} B local memory exceeds device {} B",
                e.device,
                e.params.precision,
                e.params.lds_bytes(),
                dev.local_mem_bytes()
            );
            assert!(e.params.wg_size() <= dev.micro.max_wg_size);
        }
    }

    #[test]
    fn tahiti_dgemm_entry_matches_fixture() {
        let e = &dgemm_winners()[0];
        assert_eq!(e.params, crate::params::tahiti_dgemm_best());
    }

    #[test]
    fn a_sample_of_paper_winners_verifies_end_to_end() {
        // VM-execute the small-tile winners (large tiles are covered by
        // the integration suite; keeping this test quick).
        for e in all_winners() {
            if e.params.mwg * e.params.nwg <= 64 * 32 && e.params.k_multiple() <= 96 {
                verify_kernel(&e.params)
                    .unwrap_or_else(|err| panic!("{} {}: {err}", e.device, e.params.precision));
            }
        }
    }
}
