//! Strided-batched GEMM: many same-shaped problems through one call.
//!
//! The serving workloads the routine layer sees are rarely one big GEMM;
//! they are *batches* of identical small problems (one weight matrix
//! against many activations, attention heads, per-sample covariance).
//! Looping [`TunedGemm::gemm`] over the entries pays the full routine
//! fixed cost — workspace acquisition, tile selection, pack specs, model
//! bookkeeping, and (on device) a kernel launch — once *per entry*.
//! [`TunedGemm::gemm_batch`] pays it once per *batch*:
//!
//! * One [`GemmBatch`] descriptor carries the shared shape/type/layout
//!   and per-matrix strides; a zero stride marks a shared operand that
//!   is packed exactly once.
//! * Entries execute in parallel through the shim `par` harness, each
//!   worker reusing its own grow-only [`BatchWorkspace`] slot — zero
//!   steady-state allocations, gated by [`BatchWorkspace::grows`].
//! * Small shapes (every dimension at or below [`DIRECT_BATCH_MAX`])
//!   skip packing and staging entirely: a SIMD register-tiled direct
//!   kernel reads `A`/`B` in place. The packed pipeline pays four
//!   `O(N²)` copy passes per entry and runs the paper-shaped tiled
//!   kernel; the direct kernel does neither, which is where the
//!   batched ≥ 2× looped speedup at 64 × 128³ comes from.
//! * Storage may be `f16`/`bf16` ([`StorageScalar`]): operands widen to
//!   the accumulation type on pack (or per load on the direct path), the
//!   kernel runs its usual `f32` FMA chain, and results narrow once with
//!   round-to-nearest-even on merge. Widening is exact, so every stored
//!   type is bit-identical to computing on pre-widened matrices.
//!
//! Numerics are the routine's own: every `C` element sees one
//! ascending-`p` FMA chain and one `α·acc + β·old` merge, so the batched
//! paths are bit-identical to a loop of single-GEMM calls — the property
//! suite in `tests/tests/batched.rs` pins this for all four storage
//! types.

use crate::profile::launch_profile;
use crate::routine::{PackDecision, TunedGemm, SERIAL_PACK_MAX};
use crate::tile::{TileDecision, TileSelector};
use clgemm_blas::layout::{round_up, PackedDims};
use clgemm_blas::pack::{merge_slice_narrow, pack_slice_widen, stage_slice_widen, PackSpec};
use clgemm_blas::scalar::{Scalar, StorageScalar};
use clgemm_blas::workspace::{BatchWorkspace, WorkspaceScalar};
use clgemm_blas::{BatchError, GemmBatch, Trans};
use clgemm_device::estimate_batch_seconds;
use clgemm_shim::par::{par_items_mut, worker_count};
use clgemm_trace::Registry;

/// Batches whose `m`, `n` and `k` are all at or below this run the
/// copy-free direct kernel instead of the pack/stage/merge pipeline.
///
/// Benched in `BENCH_batched.json` (`crossover` table): on the bench
/// host the direct kernel wins at every swept edge (16³–512³), because
/// the packed pipeline pays four `O(N²)` copy passes per entry and runs
/// the paper-shaped tiled kernel, while the direct kernel is a SIMD
/// register tile reading operands in place. The threshold is still kept
/// finite — and conservative — because the direct path's advantage
/// rests on in-place operands staying cache-resident: 256³ is the last
/// swept edge where one entry's three f32 slabs (~768 KiB) fit a
/// typical last-level-cache slice. Past it we hand over to the packed
/// pipeline, whose blocked traffic is layout-independent and which
/// amortises shared-operand packs across the whole batch.
pub const DIRECT_BATCH_MAX: usize = 256;

/// Which host data path executed a batched call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPath {
    /// Register-tiled in-place kernel; no packing, staging or padding.
    Direct,
    /// Per-entry pack/stage/kernel/merge, shared operands packed once.
    Packed,
}

impl BatchPath {
    /// Stable lowercase tag for metrics and the bench JSON.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            BatchPath::Direct => "direct",
            BatchPath::Packed => "packed",
        }
    }
}

impl std::fmt::Display for BatchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Options controlling [`TunedGemm::gemm_batch_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Force a specific path instead of the size-based choice (the bench
    /// crossover sweep measures both paths on every shape this way).
    pub force_path: Option<BatchPath>,
}

/// The record of one batched call: path taken, fan-out, and the modelled
/// time the serving layer compares wall clocks against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRun {
    /// The data path that executed.
    pub path: BatchPath,
    /// Entries in the batch.
    pub batch: usize,
    /// Parallel workers the entries fanned out to.
    pub workers: usize,
    /// Modelled seconds for the whole batch.
    pub total: f64,
    /// Effective batch GFlop/s (`2·m·n·k·batch / total`).
    pub gflops: f64,
    /// The register-tile decision (packed path only).
    pub tile: Option<TileDecision>,
    /// The copy-path decision (packed path only; per-entry copies are
    /// serial — parallelism comes from the batch dimension).
    pub pack: Option<PackDecision>,
    /// `true` when operands widened from a narrow storage type on pack
    /// or load.
    pub widened: bool,
}

impl BatchRun {
    fn empty(path: BatchPath, batch: usize) -> BatchRun {
        BatchRun {
            path,
            batch,
            workers: 0,
            total: 0.0,
            gflops: 0.0,
            tile: None,
            pack: None,
            widened: false,
        }
    }
}

impl TunedGemm {
    /// Strided-batched GEMM `C_i ← α·op(A_i)·op(B_i) + β·C_i` over
    /// column-major slabs, with the default size-based path choice.
    ///
    /// # Errors
    /// Returns [`BatchError`] when the descriptor is inconsistent with
    /// the slab lengths (see [`GemmBatch::validate`]).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_batch<S>(
        &self,
        desc: &GemmBatch,
        alpha: S::Acc,
        a: &[S],
        b: &[S],
        beta: S::Acc,
        c: &mut [S],
        ws: &mut BatchWorkspace,
    ) -> Result<BatchRun, BatchError>
    where
        S: StorageScalar,
        S::Acc: WorkspaceScalar,
    {
        self.gemm_batch_with(desc, alpha, a, b, beta, c, ws, &BatchOptions::default())
    }

    /// [`TunedGemm::gemm_batch`] with explicit [`BatchOptions`].
    ///
    /// # Errors
    /// Returns [`BatchError`] when the descriptor is inconsistent with
    /// the slab lengths.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_batch_with<S>(
        &self,
        desc: &GemmBatch,
        alpha: S::Acc,
        a: &[S],
        b: &[S],
        beta: S::Acc,
        c: &mut [S],
        ws: &mut BatchWorkspace,
        opts: &BatchOptions,
    ) -> Result<BatchRun, BatchError>
    where
        S: StorageScalar,
        S::Acc: WorkspaceScalar,
    {
        let _span = clgemm_trace::span!("routine.gemm_batch");
        desc.validate(a.len(), b.len(), c.len())?;
        let (batch, m, n, k) = (desc.batch, desc.m, desc.n, desc.k);
        let reg = Registry::global();
        reg.histogram("routine_batch_size", 1.0)
            .observe(batch as u64);

        let small = m.max(n).max(k) <= DIRECT_BATCH_MAX;
        let path = opts.force_path.unwrap_or(if small {
            BatchPath::Direct
        } else {
            BatchPath::Packed
        });

        if batch == 0 || m == 0 || n == 0 {
            return Ok(BatchRun::empty(path, batch));
        }
        if k == 0 || alpha == S::Acc::ZERO {
            // The product term is an empty (or zeroed) sum: C ← β·C per
            // entry, with the kernel's own merge arithmetic so the result
            // is bit-identical to running the full path.
            for i in 0..batch {
                let co = desc.c_offset(i);
                for j in 0..n {
                    let col = &mut c[co + j * desc.ldc..co + j * desc.ldc + m];
                    for cell in col.iter_mut() {
                        let old = cell.widen();
                        *cell = S::narrow(alpha.mul_add(S::Acc::ZERO, beta * old));
                    }
                }
            }
            return Ok(BatchRun::empty(path, batch));
        }

        reg.counter_labeled("routine_batch_path_total", &[("path", path.tag())])
            .inc();
        let workers = worker_count(batch);
        let mut entries = split_c_entries(c, desc);
        let run = match path {
            BatchPath::Direct => {
                let mut states = vec![(); workers];
                par_items_mut(&mut entries, &mut states, |i, centry, ()| {
                    let ae = &a[desc.a_offset(i)..desc.a_offset(i) + desc.a_extent()];
                    let be = &b[desc.b_offset(i)..desc.b_offset(i) + desc.b_extent()];
                    direct_entry(desc, alpha, ae, be, beta, centry);
                });
                let mut run = BatchRun::empty(path, batch);
                run.workers = workers;
                run.total = self.predict_batch_direct::<S>(desc);
                run.widened = S::WIDENS;
                run
            }
            BatchPath::Packed => self.packed_batch(desc, alpha, a, b, beta, &mut entries, ws),
        };
        Ok(BatchRun {
            gflops: if run.total > 0.0 {
                desc.flops() / run.total / 1e9
            } else {
                0.0
            },
            ..run
        })
    }

    /// The packed arm: shared operands packed once up front, per-entry
    /// pack/stage/kernel/merge fanned out over per-worker workspaces.
    #[allow(clippy::too_many_arguments)]
    fn packed_batch<S>(
        &self,
        desc: &GemmBatch,
        alpha: S::Acc,
        a: &[S],
        b: &[S],
        beta: S::Acc,
        entries: &mut [&mut [S]],
        ws: &mut BatchWorkspace,
    ) -> BatchRun
    where
        S: StorageScalar,
        S::Acc: WorkspaceScalar,
    {
        let (batch, m, n, k) = (desc.batch, desc.m, desc.n, desc.k);
        let p = *self.params(S::Acc::PRECISION);
        let kp = round_up(k, p.k_multiple());
        let spec_a = PackSpec {
            trans: desc.ty.ta.flipped(),
            layout: p.layout_a,
            wwg: p.mwg,
            kwg: p.kwg,
        };
        let spec_b = PackSpec {
            trans: desc.ty.tb,
            layout: p.layout_b,
            wwg: p.nwg,
            kwg: p.kwg,
        };
        let da = PackedDims::new(kp, round_up(m, p.mwg), p.mwg, p.kwg)
            .expect("padded dims divide the blocking");
        let db = PackedDims::new(kp, round_up(n, p.nwg), p.nwg, p.kwg)
            .expect("padded dims divide the blocking");
        let (mp, np) = (da.width, db.width);
        let decision = TileSelector::host().select(S::Acc::PRECISION, (p.mwi(), p.nwi()), mp, np);
        let (adims, bdims) = (desc.a_dims(), desc.b_dims());

        let convert = if S::WIDENS {
            Some(Registry::global().counter("routine_convert_on_pack_total"))
        } else {
            None
        };
        let count_convert = |packs: u64| {
            if let Some(ctr) = &convert {
                ctr.add(packs);
            }
        };

        let workers = worker_count(batch);
        let (shared, worker_ws) = ws.parts(workers);
        // Shared operands are packed exactly once, into the shared pool;
        // per-entry operands pack inside the fan-out, into worker pools.
        let (sa, sb, _) = shared.pool::<S::Acc>().buffers(
            if desc.shared_a() { da.len() } else { 0 },
            if desc.shared_b() { db.len() } else { 0 },
            0,
        );
        if desc.shared_a() {
            pack_slice_widen(
                &a[..desc.a_extent()],
                adims.0,
                adims.1,
                desc.lda,
                spec_a,
                k,
                m,
                sa,
                da,
            );
            count_convert(1);
        }
        if desc.shared_b() {
            pack_slice_widen(
                &b[..desc.b_extent()],
                bdims.0,
                bdims.1,
                desc.ldb,
                spec_b,
                k,
                n,
                sb,
                db,
            );
            count_convert(1);
        }
        let (sa, sb): (&[S::Acc], &[S::Acc]) = (sa, sb);

        par_items_mut(entries, worker_ws, |i, centry, w| {
            let (pa, pb, staged) = w.pool::<S::Acc>().buffers(
                if desc.shared_a() { 0 } else { da.len() },
                if desc.shared_b() { 0 } else { db.len() },
                mp * np,
            );
            let pa: &[S::Acc] = if desc.shared_a() {
                sa
            } else {
                let ae = &a[desc.a_offset(i)..desc.a_offset(i) + desc.a_extent()];
                pack_slice_widen(ae, adims.0, adims.1, desc.lda, spec_a, k, m, pa, da);
                count_convert(1);
                pa
            };
            let pb: &[S::Acc] = if desc.shared_b() {
                sb
            } else {
                let be = &b[desc.b_offset(i)..desc.b_offset(i) + desc.b_extent()];
                pack_slice_widen(be, bdims.0, bdims.1, desc.ldb, spec_b, k, n, pb, db);
                count_convert(1);
                pb
            };
            stage_slice_widen(centry, m, n, desc.ldc, p.mwg, p.nwg, staged);
            crate::executor::run_native_fast(
                mp,
                np,
                kp,
                alpha,
                pa,
                da,
                p.layout_a,
                pb,
                db,
                p.layout_b,
                beta,
                staged,
                decision.tile,
            );
            merge_slice_narrow(staged, p.mwg, p.nwg, centry, m, n, desc.ldc);
        });

        BatchRun {
            path: BatchPath::Packed,
            batch,
            workers,
            total: self.predict_batch(S::Acc::PREC_TAG == 'D', desc),
            gflops: 0.0, // filled by the caller from `total`
            tile: Some(decision),
            pack: Some(PackDecision {
                serial: true,
                threshold: SERIAL_PACK_MAX,
            }),
            widened: S::WIDENS,
        }
    }

    /// Modelled seconds for a batch through the packed path: per-entry
    /// copies (shared operands once), kernel bodies back to back with one
    /// launch ([`estimate_batch_seconds`]).
    #[must_use]
    pub fn predict_batch(&self, double_precision: bool, desc: &GemmBatch) -> f64 {
        let (batch, m, n, k) = (desc.batch, desc.m, desc.n, desc.k);
        if batch == 0 || m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let one = self.predict(double_precision, desc.ty, m, n, k);
        let nb = batch as f64;
        let pack_a = if desc.shared_a() {
            one.pack_a
        } else {
            one.pack_a * nb
        };
        let pack_b = if desc.shared_b() {
            one.pack_b
        } else {
            one.pack_b * nb
        };
        let precision = if double_precision {
            clgemm_blas::scalar::Precision::F64
        } else {
            clgemm_blas::scalar::Precision::F32
        };
        let p = self.params(precision);
        let kp = round_up(k, p.k_multiple());
        let prof = launch_profile(p, self.device(), round_up(m, p.mwg), round_up(n, p.nwg), kp);
        let kernel = estimate_batch_seconds(self.device(), &prof, batch).unwrap_or(f64::INFINITY);
        pack_a + pack_b + one.stage_c * nb + kernel
    }

    /// Modelled seconds for a batch through the direct path: `batch`
    /// guarded in-place kernel bodies with one launch.
    #[must_use]
    pub fn predict_batch_direct<S: StorageScalar>(&self, desc: &GemmBatch) -> f64 {
        let (batch, m, n, k) = (desc.batch, desc.m, desc.n, desc.k);
        if batch == 0 || m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let dp = crate::direct::DirectParams::default_for(desc.ty, <S::Acc as Scalar>::PRECISION);
        let prof = crate::direct::direct_profile(&dp, self.device(), m, n, k);
        estimate_batch_seconds(self.device(), &prof, batch).unwrap_or(f64::INFINITY)
    }
}

/// Split the `C` slab into one disjoint mutable sub-slice per entry.
/// Validation already rejected overlapping strides for `batch > 1`.
fn split_c_entries<'a, S>(c: &'a mut [S], desc: &GemmBatch) -> Vec<&'a mut [S]> {
    let extent = desc.c_extent();
    let mut rest = c;
    let mut out = Vec::with_capacity(desc.batch);
    for i in 0..desc.batch {
        let stride = if i + 1 < desc.batch {
            desc.stride_c
        } else {
            extent
        };
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(stride);
        out.push(&mut head[..extent]);
        rest = tail;
    }
    out
}

/// One entry through the copy-free direct kernel: 4×4 register tiles of
/// independent per-cell accumulators over in-place column-major reads,
/// scalar fringe for ragged edges. Every cell's chain is the canonical
/// ascending-`p` FMA sequence, so tiling never changes numerics.
fn direct_entry<S: StorageScalar>(
    desc: &GemmBatch,
    alpha: S::Acc,
    a: &[S],
    b: &[S],
    beta: S::Acc,
    c: &mut [S],
) {
    match (desc.ty.ta, desc.ty.tb) {
        (Trans::No, Trans::No) => direct_kernel::<S, false, false>(desc, alpha, a, b, beta, c),
        (Trans::No, Trans::Yes) => direct_kernel::<S, false, true>(desc, alpha, a, b, beta, c),
        (Trans::Yes, Trans::No) => direct_kernel::<S, true, false>(desc, alpha, a, b, beta, c),
        (Trans::Yes, Trans::Yes) => direct_kernel::<S, true, true>(desc, alpha, a, b, beta, c),
    }
}

/// The tiled kernel body, monomorphised per transpose pair so the inner
/// loop indexing is branch-free.
fn direct_kernel<S: StorageScalar, const TA: bool, const TB: bool>(
    desc: &GemmBatch,
    alpha: S::Acc,
    a: &[S],
    b: &[S],
    beta: S::Acc,
    c: &mut [S],
) {
    // The register tile is sized for the SIMD units the build targets
    // (`target-cpu=native`): sixteen rows is one f32 AVX-512 vector (two
    // AVX2 vectors, four NEON), and eight columns keeps the accumulator
    // file inside the register budget for both f32 and f64 accumulation.
    // Each accumulator lane is still one C element's ascending-p
    // `mul_add` chain, so the result is bit-identical to the scalar
    // reference — vectorisation happens *across* C elements, never
    // inside one reduction.
    const MR: usize = 16;
    const NR: usize = 8;
    let (m, n, k) = (desc.m, desc.n, desc.k);
    let (lda, ldb, ldc) = (desc.lda, desc.ldb, desc.ldc);
    // op(A)[i][p] / op(B)[p][j] against column-major storage.
    let at = |i: usize, p: usize| -> S::Acc {
        if TA {
            a[i * lda + p].widen()
        } else {
            a[p * lda + i].widen()
        }
    };
    let bt = |p: usize, j: usize| -> S::Acc {
        if TB {
            b[p * ldb + j].widen()
        } else {
            b[j * ldb + p].widen()
        }
    };

    let mut j0 = 0;
    while j0 < n {
        let nr = NR.min(n - j0);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            if mr == MR && nr == NR {
                // acc[bj] holds C[i0..i0+MR, j0+bj]: the inner loops run
                // over a contiguous 16-lane row strip, which LLVM lifts
                // to vector FMAs.
                let mut acc = [[S::Acc::ZERO; MR]; NR];
                for p in 0..k {
                    let mut av = [S::Acc::ZERO; MR];
                    if TA {
                        for (mi, v) in av.iter_mut().enumerate() {
                            *v = a[(i0 + mi) * lda + p].widen();
                        }
                    } else {
                        // Untransposed A: one contiguous column slice,
                        // a single (pair of) vector load(s).
                        let col = &a[p * lda + i0..p * lda + i0 + MR];
                        for (mi, v) in av.iter_mut().enumerate() {
                            *v = col[mi].widen();
                        }
                    }
                    for (bj, arow) in acc.iter_mut().enumerate() {
                        let bv = bt(p, j0 + bj);
                        for (mi, cell) in arow.iter_mut().enumerate() {
                            *cell = av[mi].mul_add(bv, *cell);
                        }
                    }
                }
                for (bj, arow) in acc.iter().enumerate() {
                    let base = (j0 + bj) * ldc + i0;
                    for (mi, &val) in arow.iter().enumerate() {
                        let old = c[base + mi].widen();
                        c[base + mi] = S::narrow(alpha.mul_add(val, beta * old));
                    }
                }
            } else {
                for jj in 0..nr {
                    for ii in 0..mr {
                        let mut acc = S::Acc::ZERO;
                        for p in 0..k {
                            acc = at(i0 + ii, p).mul_add(bt(p, j0 + jj), acc);
                        }
                        let idx = (j0 + jj) * ldc + i0 + ii;
                        let old = c[idx].widen();
                        c[idx] = S::narrow(alpha.mul_add(acc, beta * old));
                    }
                }
            }
            i0 += MR;
        }
        j0 += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::small_test_params;
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_blas::scalar::{Precision, F16};
    use clgemm_blas::GemmType;
    use clgemm_device::DeviceId;

    fn tuned() -> TunedGemm {
        TunedGemm::new(
            DeviceId::Tahiti.spec(),
            small_test_params(Precision::F64),
            small_test_params(Precision::F32),
        )
    }

    /// Deterministic nonzero slab contents (avoiding exact zeros keeps
    /// signed-zero corner cases out of the bit-equality assertions).
    fn fill<S: StorageScalar>(slab: &mut [S], seed: usize) {
        for (idx, cell) in slab.iter_mut().enumerate() {
            let v = ((idx * 7 + seed * 13) % 23) as f64 * 0.125 - 1.0;
            *cell = S::from_f64(if v == 0.0 { 0.375 } else { v });
        }
    }

    /// Widen one column-major slab entry into an accumulator matrix.
    fn entry_matrix<S: StorageScalar>(
        slab: &[S],
        off: usize,
        rows: usize,
        cols: usize,
        ld: usize,
    ) -> Matrix<S::Acc> {
        Matrix::from_fn(rows, cols, StorageOrder::ColMajor, |i, j| {
            slab[off + j * ld + i].widen()
        })
    }

    /// Oracle: loop of single-GEMM calls on widened entries, narrowed on
    /// the way out. `gemm_batch` must match it bit for bit.
    fn check_against_looped_single<S>(desc: &GemmBatch, opts: &BatchOptions)
    where
        S: StorageScalar,
        S::Acc: WorkspaceScalar,
    {
        let tg = tuned();
        let (ar, ac) = desc.a_dims();
        let (br, bc) = desc.b_dims();
        let mut a = vec![S::default(); required_len(desc.batch, desc.stride_a, desc.a_extent())];
        let mut b = vec![S::default(); required_len(desc.batch, desc.stride_b, desc.b_extent())];
        let mut c = vec![S::default(); desc.c_required()];
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        let c0 = c.clone();
        let alpha = S::Acc::from_f64(1.25);
        let beta = S::Acc::from_f64(-0.5);

        let mut ws = BatchWorkspace::new();
        let run = tg
            .gemm_batch_with(desc, alpha, &a, &b, beta, &mut c, &mut ws, opts)
            .unwrap();
        assert_eq!(run.batch, desc.batch);

        for i in 0..desc.batch {
            let am = entry_matrix(&a, desc.a_offset(i), ar, ac, desc.lda);
            let bm = entry_matrix(&b, desc.b_offset(i), br, bc, desc.ldb);
            let mut cm = entry_matrix(&c0, desc.c_offset(i), desc.m, desc.n, desc.ldc);
            tg.gemm(desc.ty, alpha, &am, &bm, beta, &mut cm);
            for j in 0..desc.n {
                for r in 0..desc.m {
                    let got = c[desc.c_offset(i) + j * desc.ldc + r];
                    let want = S::narrow(cm.at(r, j));
                    assert_eq!(
                        got, want,
                        "{desc} entry {i} ({r},{j}) {} diverges from looped single",
                        run.path
                    );
                }
            }
        }
    }

    fn required_len(batch: usize, stride: usize, extent: usize) -> usize {
        if batch == 0 || extent == 0 {
            0
        } else {
            stride * (batch - 1) + extent
        }
    }

    #[test]
    fn direct_path_matches_looped_single_for_all_types() {
        for ty in GemmType::ALL {
            let desc = GemmBatch::packed(ty, 4, 10, 8, 6);
            check_against_looped_single::<f64>(&desc, &BatchOptions::default());
        }
    }

    #[test]
    fn packed_path_matches_looped_single_for_all_types() {
        let opts = BatchOptions {
            force_path: Some(BatchPath::Packed),
        };
        for ty in GemmType::ALL {
            let desc = GemmBatch::packed(ty, 3, 10, 8, 6);
            check_against_looped_single::<f32>(&desc, &opts);
        }
    }

    #[test]
    fn half_storage_matches_widened_oracle_on_both_paths() {
        for force in [None, Some(BatchPath::Packed)] {
            let desc = GemmBatch::packed(GemmType::NN, 5, 9, 7, 11);
            check_against_looped_single::<F16>(&desc, &BatchOptions { force_path: force });
        }
    }

    #[test]
    fn shared_operands_and_padded_strides_work() {
        let mut desc = GemmBatch::packed(GemmType::NN, 6, 8, 8, 8).with_shared_a();
        desc.ldc = 11;
        desc.stride_c = 11 * 8 + 3;
        check_against_looped_single::<f64>(&desc, &BatchOptions::default());
        let desc = GemmBatch::packed(GemmType::NT, 4, 8, 8, 8).with_shared_b();
        check_against_looped_single::<f32>(
            &desc,
            &BatchOptions {
                force_path: Some(BatchPath::Packed),
            },
        );
    }

    #[test]
    fn batch_workspace_reaches_steady_state() {
        let tg = tuned();
        let desc = GemmBatch::packed(GemmType::NN, 8, 16, 16, 16);
        let mut a = vec![0f32; 8 * 16 * 16];
        let mut b = vec![0f32; 8 * 16 * 16];
        let mut c = vec![0f32; 8 * 16 * 16];
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        let mut ws = BatchWorkspace::new();
        let opts = BatchOptions {
            force_path: Some(BatchPath::Packed),
        };
        tg.gemm_batch_with(&desc, 1.0, &a, &b, 0.5, &mut c, &mut ws, &opts)
            .unwrap();
        let grows = ws.grows();
        assert!(grows > 0, "first packed batch must allocate staging");
        for _ in 0..3 {
            tg.gemm_batch_with(&desc, 1.0, &a, &b, 0.5, &mut c, &mut ws, &opts)
                .unwrap();
        }
        assert_eq!(ws.grows(), grows, "steady state must not reallocate");

        // The direct path never touches the workspace at all.
        let mut ws2 = BatchWorkspace::new();
        let run = tg
            .gemm_batch(&desc, 1.0f32, &a, &b, 0.5, &mut c, &mut ws2)
            .unwrap();
        assert_eq!(run.path, BatchPath::Direct);
        assert_eq!(ws2.grows(), 0);
    }

    #[test]
    fn size_routes_the_path_and_descriptor_is_validated() {
        let tg = tuned();
        let mut ws = BatchWorkspace::new();
        // 128³ sits on the direct side; one past the threshold in any
        // dimension flips it.
        let small = GemmBatch::packed(GemmType::NN, 1, 128, 128, 128);
        let n = 128 * 128;
        let mut a = vec![0f32; n];
        let mut b = vec![0f32; n];
        let mut c = vec![0f32; n];
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        let run = tg
            .gemm_batch(&small, 1.0f32, &a, &b, 0.0, &mut c, &mut ws)
            .unwrap();
        assert_eq!(run.path, BatchPath::Direct);
        assert!(run.total > 0.0 && run.gflops > 0.0);
        assert_eq!(run.tile, None);

        let over = DIRECT_BATCH_MAX + 1;
        let big = GemmBatch::packed(GemmType::NN, 1, over, 16, 16);
        let mut a = vec![0f32; over * 16];
        let b = vec![0f32; 16 * 16];
        let mut cc = vec![0f32; over * 16];
        fill(&mut a, 1);
        fill(&mut cc, 3);
        let run = tg
            .gemm_batch(&big, 1.0f32, &a, &b, 0.0, &mut cc, &mut ws)
            .unwrap();
        assert_eq!(run.path, BatchPath::Packed);
        assert!(run.tile.is_some());
        assert_eq!(run.pack.unwrap().threshold, SERIAL_PACK_MAX);

        // Short slabs are rejected, not UB.
        let bad = GemmBatch::packed(GemmType::NN, 2, 128, 128, 128);
        assert!(tg
            .gemm_batch(&bad, 1.0f32, &a, &b, 0.0, &mut c, &mut ws)
            .is_err());
    }

    #[test]
    fn degenerate_batches_follow_blas_semantics() {
        let tg = tuned();
        let mut ws = BatchWorkspace::new();
        // batch == 0 and m == 0 touch nothing.
        for desc in [
            GemmBatch::packed(GemmType::NN, 0, 4, 4, 4),
            GemmBatch::packed(GemmType::NN, 3, 0, 4, 4),
            GemmBatch::packed(GemmType::NN, 3, 4, 0, 4),
        ] {
            let run = tg
                .gemm_batch::<f64>(&desc, 1.0, &[], &[], 0.5, &mut [], &mut ws)
                .unwrap();
            assert_eq!(run.total, 0.0);
            assert_eq!(ws.grows(), 0);
        }
        // k == 0 scales C by beta through the kernel's merge arithmetic.
        let desc = GemmBatch::packed(GemmType::NN, 2, 3, 3, 0);
        let mut c: Vec<f64> = (0..18).map(|i| i as f64 + 1.0).collect();
        let c0 = c.clone();
        tg.gemm_batch::<f64>(&desc, 2.0, &[], &[], -0.5, &mut c, &mut ws)
            .unwrap();
        for (got, want) in c.iter().zip(c0.iter().map(|v| -0.5 * v)) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn batched_metrics_are_recorded() {
        let tg = tuned();
        let reg = Registry::global();
        let before_direct = reg
            .counter_labeled("routine_batch_path_total", &[("path", "direct")])
            .get();
        let before_convert = reg.counter("routine_convert_on_pack_total").get();
        let hist_before = reg.histogram("routine_batch_size", 1.0).count();

        let desc = GemmBatch::packed(GemmType::NN, 3, 8, 8, 8);
        let mut a = vec![F16::default(); 3 * 64];
        let mut b = vec![F16::default(); 3 * 64];
        let mut c = vec![F16::default(); 3 * 64];
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        let mut ws = BatchWorkspace::new();
        tg.gemm_batch(&desc, 1.0f32, &a, &b, 0.0, &mut c, &mut ws)
            .unwrap();
        tg.gemm_batch_with(
            &desc,
            1.0f32,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ws,
            &BatchOptions {
                force_path: Some(BatchPath::Packed),
            },
        )
        .unwrap();

        assert!(
            reg.counter_labeled("routine_batch_path_total", &[("path", "direct")])
                .get()
                > before_direct
        );
        assert!(
            reg.counter("routine_convert_on_pack_total").get() >= before_convert + 6,
            "three entries × two operands widened on pack"
        );
        assert!(reg.histogram("routine_batch_size", 1.0).count() >= hist_before + 2);
    }
}
