//! Persistent repository of tuning results.
//!
//! A tuning run costs the paper more than five hours per device; results
//! are therefore kept and reused. This module stores [`TuningResult`]s
//! keyed by `(device, precision)` as JSON, so benches, examples and the
//! report harness tune once and share winners.
//!
//! The on-disk document carries a `schema_version` field. Files written
//! before the field existed (version-less) are still readable and are
//! treated as version 1; files from a *newer* schema are rejected with
//! [`RepoError::VersionMismatch`] instead of being misparsed.

use crate::tuner::{tune, SearchOpts, SearchSpace, TuningResult};
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceSpec;
use clgemm_shim::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// The schema version this build writes and the highest it can read.
pub const SCHEMA_VERSION: u64 = 1;

/// Why loading or parsing a repository failed.
#[derive(Debug)]
pub enum RepoError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The document is not valid JSON or is missing/holding malformed
    /// fields. The message pinpoints the offending key.
    Parse(String),
    /// The document declares a schema newer than this build understands.
    VersionMismatch { found: u64, supported: u64 },
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repo io error: {e}"),
            RepoError::Parse(msg) => write!(f, "repo parse error: {msg}"),
            RepoError::VersionMismatch { found, supported } => write!(
                f,
                "repo schema version {found} is newer than the supported {supported}"
            ),
        }
    }
}

impl std::error::Error for RepoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RepoError {
    fn from(e: std::io::Error) -> RepoError {
        RepoError::Io(e)
    }
}

/// A set of tuning results keyed by device code name and precision.
#[derive(Debug, Clone, Default)]
pub struct KernelRepo {
    entries: BTreeMap<String, TuningResult>,
}

impl KernelRepo {
    /// An empty repository.
    #[must_use]
    pub fn new() -> KernelRepo {
        KernelRepo::default()
    }

    /// The canonical cache key for a `(device, precision)` pair —
    /// `"{device}/{SGEMM|DGEMM}"`. Exposed so other layers (the serving
    /// subsystem's kernel cache, reports) key their own maps identically.
    #[must_use]
    pub fn cache_key(device: &str, precision: Precision) -> String {
        format!("{device}/{precision}")
    }

    /// Split a [`KernelRepo::cache_key`] back into `(device, precision)`.
    #[must_use]
    pub fn parse_key(key: &str) -> Option<(&str, Precision)> {
        let (device, prec) = key.rsplit_once('/')?;
        Some((device, prec.parse().ok()?))
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no results are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a stored result.
    #[must_use]
    pub fn get(&self, device: &str, precision: Precision) -> Option<&TuningResult> {
        self.entries.get(&KernelRepo::cache_key(device, precision))
    }

    /// Insert (or replace) a result.
    pub fn insert(&mut self, result: TuningResult) {
        self.entries.insert(
            KernelRepo::cache_key(&result.device, result.precision),
            result,
        );
    }

    /// Fetch a result, running the search on a miss and caching it.
    pub fn get_or_tune(
        &mut self,
        dev: &DeviceSpec,
        precision: Precision,
        space: &SearchSpace,
        opts: &SearchOpts,
    ) -> &TuningResult {
        let k = KernelRepo::cache_key(&dev.code_name, precision);
        if !self.entries.contains_key(&k) {
            self.entries
                .insert(k.clone(), tune(dev, precision, space, opts));
        }
        &self.entries[&k]
    }

    /// Serialise to a pretty-printed JSON string (current schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("schema_version", Json::from(SCHEMA_VERSION as usize)),
            ("entries", Json::Obj(entries)),
        ])
        .to_string_pretty()
    }

    /// Deserialise from a JSON string.
    ///
    /// Accepts both the current document (`schema_version` present) and
    /// legacy version-less documents; rejects versions newer than
    /// [`SCHEMA_VERSION`] and malformed documents with typed errors.
    pub fn from_json(s: &str) -> Result<KernelRepo, RepoError> {
        let doc = Json::parse(s).map_err(|e| RepoError::Parse(e.msg))?;
        let version = match doc.get("schema_version") {
            None => 1, // legacy, written before the field existed
            Some(v) => v
                .as_usize()
                .ok_or_else(|| RepoError::Parse("schema_version is not an integer".into()))?
                as u64,
        };
        if version > SCHEMA_VERSION {
            return Err(RepoError::VersionMismatch {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        let entries_doc = doc
            .get("entries")
            .ok_or_else(|| RepoError::Parse("missing entries object".into()))?
            .as_obj()
            .ok_or_else(|| RepoError::Parse("entries is not an object".into()))?;
        let mut entries = BTreeMap::new();
        for (k, v) in entries_doc {
            let result = TuningResult::from_json(v)
                .map_err(|e| RepoError::Parse(format!("entry {k:?}: {}", e.msg)))?;
            entries.insert(k.clone(), result);
        }
        Ok(KernelRepo { entries })
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> Result<(), RepoError> {
        Ok(std::fs::write(path, self.to_json())?)
    }

    /// Load from a file; a missing file yields an empty repository.
    pub fn load(path: &Path) -> Result<KernelRepo, RepoError> {
        match std::fs::read_to_string(path) {
            Ok(s) => KernelRepo::from_json(&s),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(KernelRepo::new()),
            Err(e) => Err(RepoError::Io(e)),
        }
    }

    /// Iterate over all stored results.
    pub fn iter(&self) -> impl Iterator<Item = &TuningResult> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::SearchSpace;
    use clgemm_device::DeviceId;

    fn quick_opts() -> SearchOpts {
        SearchOpts {
            top_k: 5,
            max_sweep_points: 4,
            verify_winner: false,
            ..Default::default()
        }
    }

    #[test]
    fn get_or_tune_caches() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        assert!(repo.is_empty());
        let g1 = repo
            .get_or_tune(&dev, Precision::F64, &space, &quick_opts())
            .best
            .gflops;
        assert_eq!(repo.len(), 1);
        let g2 = repo
            .get_or_tune(&dev, Precision::F64, &space, &quick_opts())
            .best
            .gflops;
        assert_eq!(repo.len(), 1);
        assert_eq!(g1, g2, "second call must hit the cache");
    }

    #[test]
    fn json_round_trip() {
        let dev = DeviceId::Fermi.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        repo.get_or_tune(&dev, Precision::F32, &space, &quick_opts());
        let json = repo.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        let back = KernelRepo::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get("Fermi", Precision::F32).unwrap().best.params,
            repo.get("Fermi", Precision::F32).unwrap().best.params
        );
        assert!(back.get("Fermi", Precision::F64).is_none());
    }

    #[test]
    fn save_and_load_file() {
        let dev = DeviceId::Kepler.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        repo.get_or_tune(&dev, Precision::F64, &space, &quick_opts());
        let dir = std::env::temp_dir().join("clgemm_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let back = KernelRepo::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
        // Missing file loads as empty.
        let empty = KernelRepo::load(&dir.join("nonexistent.json")).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn legacy_versionless_documents_still_load() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        repo.get_or_tune(&dev, Precision::F64, &space, &quick_opts());
        // Strip the schema_version field to fabricate a pre-versioning file.
        let doc = Json::parse(&repo.to_json()).unwrap();
        let legacy =
            Json::obj(vec![("entries", doc.get("entries").unwrap().clone())]).to_string_pretty();
        let back = KernelRepo::from_json(&legacy).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.get("Tahiti", Precision::F64).is_some());
    }

    #[test]
    fn newer_schema_is_rejected_with_typed_error() {
        let doc = r#"{"schema_version": 99, "entries": {}}"#;
        match KernelRepo::from_json(doc) {
            Err(RepoError::VersionMismatch {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_documents_give_parse_errors_not_panics() {
        for bad in [
            "not json at all",
            "{\"schema_version\": 1}",                        // no entries
            "{\"schema_version\": 1, \"entries\": 42}",       // wrong type
            "{\"schema_version\": \"one\", \"entries\": {}}", // bad version type
            "{\"schema_version\": 1, \"entries\": {\"Tahiti/DGEMM\": {\"device\": \"Tahiti\"}}}",
        ] {
            match KernelRepo::from_json(bad) {
                Err(RepoError::Parse(_)) => {}
                other => panic!("{bad:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn cache_keys_round_trip() {
        let k = KernelRepo::cache_key("Tahiti", Precision::F64);
        assert_eq!(k, "Tahiti/DGEMM");
        assert_eq!(KernelRepo::parse_key(&k), Some(("Tahiti", Precision::F64)));
        assert_eq!(KernelRepo::parse_key("nonsense"), None);
        assert_eq!(KernelRepo::parse_key("X/Quad"), None);
    }
}
