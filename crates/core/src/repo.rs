//! Persistent repository of tuning results.
//!
//! A tuning run costs the paper more than five hours per device; results
//! are therefore kept and reused. This module stores [`TuningResult`]s
//! keyed by `(device, precision)` as JSON, so benches, examples and the
//! report harness tune once and share winners.

use crate::tuner::{tune, SearchOpts, SearchSpace, TuningResult};
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A set of tuning results keyed by device code name and precision.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelRepo {
    entries: BTreeMap<String, TuningResult>,
}

fn key(device: &str, precision: Precision) -> String {
    format!("{device}/{precision}")
}

impl KernelRepo {
    /// An empty repository.
    #[must_use]
    pub fn new() -> KernelRepo {
        KernelRepo::default()
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no results are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a stored result.
    #[must_use]
    pub fn get(&self, device: &str, precision: Precision) -> Option<&TuningResult> {
        self.entries.get(&key(device, precision))
    }

    /// Insert (or replace) a result.
    pub fn insert(&mut self, result: TuningResult) {
        self.entries.insert(key(&result.device, result.precision), result);
    }

    /// Fetch a result, running the search on a miss and caching it.
    pub fn get_or_tune(
        &mut self,
        dev: &DeviceSpec,
        precision: Precision,
        space: &SearchSpace,
        opts: &SearchOpts,
    ) -> &TuningResult {
        let k = key(&dev.code_name, precision);
        if !self.entries.contains_key(&k) {
            self.entries.insert(k.clone(), tune(dev, precision, space, opts));
        }
        &self.entries[&k]
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialise from a JSON string.
    pub fn from_json(s: &str) -> Result<KernelRepo, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load from a file; a missing file yields an empty repository.
    pub fn load(path: &Path) -> std::io::Result<KernelRepo> {
        match std::fs::read_to_string(path) {
            Ok(s) => KernelRepo::from_json(&s).map_err(std::io::Error::other),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(KernelRepo::new()),
            Err(e) => Err(e),
        }
    }

    /// Iterate over all stored results.
    pub fn iter(&self) -> impl Iterator<Item = &TuningResult> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::SearchSpace;
    use clgemm_device::DeviceId;

    fn quick_opts() -> SearchOpts {
        SearchOpts { top_k: 5, max_sweep_points: 4, verify_winner: false, ..Default::default() }
    }

    #[test]
    fn get_or_tune_caches() {
        let dev = DeviceId::Tahiti.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        assert!(repo.is_empty());
        let g1 = repo.get_or_tune(&dev, Precision::F64, &space, &quick_opts()).best.gflops;
        assert_eq!(repo.len(), 1);
        let g2 = repo.get_or_tune(&dev, Precision::F64, &space, &quick_opts()).best.gflops;
        assert_eq!(repo.len(), 1);
        assert_eq!(g1, g2, "second call must hit the cache");
    }

    #[test]
    fn json_round_trip() {
        let dev = DeviceId::Fermi.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        repo.get_or_tune(&dev, Precision::F32, &space, &quick_opts());
        let json = repo.to_json().unwrap();
        let back = KernelRepo::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get("Fermi", Precision::F32).unwrap().best.params,
            repo.get("Fermi", Precision::F32).unwrap().best.params
        );
        assert!(back.get("Fermi", Precision::F64).is_none());
    }

    #[test]
    fn save_and_load_file() {
        let dev = DeviceId::Kepler.spec();
        let space = SearchSpace::smoke(&dev);
        let mut repo = KernelRepo::new();
        repo.get_or_tune(&dev, Precision::F64, &space, &quick_opts());
        let dir = std::env::temp_dir().join("clgemm_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        repo.save(&path).unwrap();
        let back = KernelRepo::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
        // Missing file loads as empty.
        let empty = KernelRepo::load(&dir.join("nonexistent.json")).unwrap();
        assert!(empty.is_empty());
    }
}
