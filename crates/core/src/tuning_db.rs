//! The persistent tuning database.
//!
//! Tuned parameters are expensive (a background refine runs a full
//! three-stage search) and device-stable — they should outlive the
//! process. [`TuningDb`] persists [`Measurement`]s keyed by
//! ([`device fingerprint`](clgemm_device::DeviceSpec::fingerprint),
//! shape bucket, GEMM type, storage type) in an append-only
//! line-oriented shim-json file:
//!
//! ```text
//! {"magic":"clgemm-tuning-db","schema_version":1}
//! {"fingerprint":"tahiti/...","m":1024,"n":1024,"k":1024,"gemm":"*","storage":"F64","measurement":{…}}
//! ```
//!
//! Design points (mirroring [`crate::repo::KernelRepo`]'s versioning
//! discipline, hardened for a file that is rewritten while serving):
//!
//! * **Versioned**: the header's `schema_version` is checked on load;
//!   a *newer* version is a typed [`DbError::VersionMismatch`] — never
//!   silently misread.
//! * **fsync-on-commit**: [`TuningDb::commit`] appends one line and
//!   `sync_all`s, so a crash mid-serve loses at most the in-flight
//!   entry, never corrupts earlier ones.
//! * **Corrupt-entry tolerance**: unparsable or truncated lines (the
//!   torn tail of a crashed append) are skipped and counted in
//!   [`TuningDb::corrupt_entries`], not fatal — a half-written entry
//!   must not cost the rest of the database.
//! * **Last-wins**: re-committing a key appends; the newest line is
//!   authoritative on load, so refinement upgrades persist without a
//!   rewrite.
//!
//! `CLGEMM_TUNING_DB=<path>` points the serving layer at a database
//! file ([`TuningDb::from_env`]); without it the database is
//! in-memory and dies with the process.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::tuner::Measurement;
use clgemm_shim::Json;

/// Current on-disk schema version.
pub const DB_SCHEMA_VERSION: u64 = 1;

/// Magic tag in the header line.
pub const DB_MAGIC: &str = "clgemm-tuning-db";

/// Environment variable naming the database file.
pub const DB_ENV: &str = "CLGEMM_TUNING_DB";

/// The lookup key: which device (by calibration fingerprint), which
/// shape bucket, which GEMM type (`"NN"`…`"TT"`, or `"*"` when the
/// caller's kernel covers all four, as the serve cache does), which
/// storage type (`"F32"`/`"F64"`/`"F16"`/`"Bf16"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DbKey {
    pub fingerprint: String,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub gemm: String,
    pub storage: String,
}

impl std::fmt::Display for DbKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}x{}x{}/{}/{}",
            self.fingerprint, self.m, self.n, self.k, self.gemm, self.storage
        )
    }
}

/// Typed database failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem failure (message carries the `std::io` detail).
    Io(String),
    /// The header line is from a newer schema than this build reads.
    VersionMismatch { found: u64, expected: u64 },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(m) => write!(f, "tuning db io error: {m}"),
            DbError::VersionMismatch { found, expected } => write!(
                f,
                "tuning db schema version {found} is newer than supported {expected}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

/// The database: an in-memory map with optional append-only file
/// backing. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct TuningDb {
    path: Option<PathBuf>,
    entries: BTreeMap<DbKey, Measurement>,
    corrupt: usize,
}

impl TuningDb {
    /// A database with no file backing: commits update memory only.
    #[must_use]
    pub fn in_memory() -> TuningDb {
        TuningDb {
            path: None,
            entries: BTreeMap::new(),
            corrupt: 0,
        }
    }

    /// Open (or create-on-first-commit) the database at `path`. A
    /// missing file is an empty database; a present file is loaded
    /// with corrupt-entry tolerance.
    pub fn open(path: impl Into<PathBuf>) -> Result<TuningDb, DbError> {
        let path = path.into();
        let mut db = TuningDb {
            path: Some(path.clone()),
            entries: BTreeMap::new(),
            corrupt: 0,
        };
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| DbError::Io(format!("{path:?}: {e}")))?;
            db.load(&text)?;
        }
        Ok(db)
    }

    /// Open the database named by `CLGEMM_TUNING_DB`, or an in-memory
    /// one when the variable is unset. Unreadable files degrade to
    /// in-memory (serving must not crash on a bad override), which the
    /// caller can detect via [`TuningDb::path`] returning `None`.
    #[must_use]
    pub fn from_env() -> TuningDb {
        match std::env::var(DB_ENV) {
            Ok(path) if !path.trim().is_empty() => {
                TuningDb::open(path).unwrap_or_else(|_| TuningDb::in_memory())
            }
            _ => TuningDb::in_memory(),
        }
    }

    fn load(&mut self, text: &str) -> Result<(), DbError> {
        let mut lines = text.lines();
        match lines.next() {
            None => return Ok(()), // empty file == empty db
            Some(header) => match Json::parse(header) {
                Ok(doc) if doc.get("magic").and_then(Json::as_str) == Some(DB_MAGIC) => {
                    let found = doc
                        .get("schema_version")
                        .and_then(Json::as_usize)
                        .unwrap_or(0) as u64;
                    if found > DB_SCHEMA_VERSION {
                        return Err(DbError::VersionMismatch {
                            found,
                            expected: DB_SCHEMA_VERSION,
                        });
                    }
                }
                // A mangled header is tolerated like a mangled entry:
                // we cannot prove the file is newer than us, so we
                // salvage what parses.
                _ => self.corrupt += 1,
            },
        }
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_entry(line) {
                Some((key, m)) => {
                    self.entries.insert(key, m); // last-wins
                }
                None => self.corrupt += 1,
            }
        }
        Ok(())
    }

    fn parse_entry(line: &str) -> Option<(DbKey, Measurement)> {
        let doc = Json::parse(line).ok()?;
        let text = |k: &str| doc.get(k)?.as_str().map(str::to_string);
        let num = |k: &str| doc.get(k)?.as_usize();
        let key = DbKey {
            fingerprint: text("fingerprint")?,
            m: num("m")?,
            n: num("n")?,
            k: num("k")?,
            gemm: text("gemm")?,
            storage: text("storage")?,
        };
        let m = Measurement::from_json(doc.get("measurement")?).ok()?;
        Some((key, m))
    }

    fn entry_json(key: &DbKey, m: &Measurement) -> Json {
        Json::obj(vec![
            ("fingerprint", Json::from(key.fingerprint.as_str())),
            ("m", Json::from(key.m)),
            ("n", Json::from(key.n)),
            ("k", Json::from(key.k)),
            ("gemm", Json::from(key.gemm.as_str())),
            ("storage", Json::from(key.storage.as_str())),
            ("measurement", m.to_json()),
        ])
    }

    /// Look up a tuned measurement.
    #[must_use]
    pub fn get(&self, key: &DbKey) -> Option<&Measurement> {
        self.entries.get(key)
    }

    /// Insert and durably persist one measurement: append a line to
    /// the backing file (writing the header first on a fresh file) and
    /// fsync before returning. In-memory databases skip the file work.
    pub fn commit(&mut self, key: DbKey, m: Measurement) -> Result<(), DbError> {
        if let Some(path) = &self.path {
            let io = |e: std::io::Error| DbError::Io(format!("{path:?}: {e}"));
            let fresh = std::fs::metadata(path)
                .map(|md| md.len() == 0)
                .unwrap_or(true);
            let mut file: File = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(io)?;
            let mut text = String::new();
            if fresh {
                let header = Json::obj(vec![
                    ("magic", Json::from(DB_MAGIC)),
                    ("schema_version", Json::from(DB_SCHEMA_VERSION as usize)),
                ]);
                text.push_str(&header.to_string_compact());
                text.push('\n');
            }
            text.push_str(&Self::entry_json(&key, &m).to_string_compact());
            text.push('\n');
            file.write_all(text.as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        self.entries.insert(key, m);
        Ok(())
    }

    /// Number of distinct keys loaded/committed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lines skipped during load because they did not parse (torn
    /// appends, hand-edits).
    #[must_use]
    pub fn corrupt_entries(&self) -> usize {
        self.corrupt
    }

    /// The backing file, when file-backed.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Iterate entries in key order (tests, reporting).
    pub fn iter(&self) -> impl Iterator<Item = (&DbKey, &Measurement)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::tahiti_dgemm_best;

    fn key(n: usize) -> DbKey {
        DbKey {
            fingerprint: "test-device".to_string(),
            m: n,
            n,
            k: n,
            gemm: "*".to_string(),
            storage: "F64".to_string(),
        }
    }

    fn meas(gflops: f64) -> Measurement {
        Measurement {
            params: tahiti_dgemm_best(),
            n: 1024,
            gflops,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clgemm-tuning-db-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn round_trip_through_the_file() {
        let path = tmp("round-trip");
        let mut db = TuningDb::open(&path).unwrap();
        db.commit(key(1024), meas(800.0)).unwrap();
        db.commit(key(2048), meas(850.0)).unwrap();

        let back = TuningDb::open(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.corrupt_entries(), 0);
        let m = back.get(&key(1024)).unwrap();
        assert_eq!(m.params, tahiti_dgemm_best());
        assert!((m.gflops - 800.0).abs() < 1e-12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recommit_is_last_wins_across_reload() {
        let path = tmp("last-wins");
        let mut db = TuningDb::open(&path).unwrap();
        db.commit(key(1024), meas(700.0)).unwrap();
        db.commit(key(1024), meas(900.0)).unwrap();
        assert_eq!(db.len(), 1);

        let back = TuningDb::open(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert!((back.get(&key(1024)).unwrap().gflops - 900.0).abs() < 1e-12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn newer_schema_version_is_rejected_typed() {
        let path = tmp("version");
        std::fs::write(
            &path,
            format!("{{\"magic\":\"{DB_MAGIC}\",\"schema_version\":999}}\n"),
        )
        .unwrap();
        match TuningDb::open(&path) {
            Err(DbError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, DB_SCHEMA_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_tolerated_and_counted() {
        let path = tmp("truncated");
        let mut db = TuningDb::open(&path).unwrap();
        db.commit(key(1024), meas(800.0)).unwrap();
        db.commit(key(2048), meas(850.0)).unwrap();
        // Simulate a crash mid-append: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - text.len() / 4;
        std::fs::write(&path, &text[..cut]).unwrap();

        let back = TuningDb::open(&path).unwrap();
        assert_eq!(back.len(), 1, "intact entry survives");
        assert_eq!(back.corrupt_entries(), 1, "torn tail counted");
        assert!(back.get(&key(1024)).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_lines_do_not_sink_the_rest() {
        let path = tmp("garbage");
        let mut db = TuningDb::open(&path).unwrap();
        db.commit(key(1024), meas(800.0)).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("this is not json\n{\"fingerprint\":42}\n");
        std::fs::write(&path, &text).unwrap();
        let mut back = TuningDb::open(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.corrupt_entries(), 2);
        // Appending after a salvage keeps working.
        back.commit(key(4096), meas(820.0)).unwrap();
        let again = TuningDb::open(&path).unwrap();
        assert_eq!(again.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_db_and_in_memory_commits_work() {
        let path = tmp("missing");
        let db = TuningDb::open(&path).unwrap();
        assert!(db.is_empty());
        assert_eq!(db.path(), Some(path.as_path()));
        assert!(!path.exists(), "open alone must not create the file");

        let mut mem = TuningDb::in_memory();
        assert!(mem.path().is_none());
        mem.commit(key(1024), meas(100.0)).unwrap();
        assert_eq!(mem.len(), 1);
    }
}
