//! Derivation of a [`KernelLaunchProfile`] from kernel parameters.
//!
//! The profile is the analytic summary the timing model consumes: how
//! many MADs, load instructions, bytes of DRAM/cache/LDS traffic and
//! barriers one work-group generates per outer-loop iteration, how well
//! its accesses coalesce, and which resources it holds. The accounting
//! below mirrors the code the generator actually emits, and the
//! integration suite cross-checks it against the VM's *dynamic*
//! instruction counts so the two can never drift apart.

use crate::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_device::{DeviceSpec, KernelLaunchProfile, LocalMemType};

/// Build the launch profile for a padded `m × n × k` problem.
///
/// # Panics
/// Panics when the problem is not padded to the blocking factors (the
/// routine layer guarantees this before any launch).
#[must_use]
pub fn launch_profile(
    p: &KernelParams,
    dev: &DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
) -> KernelLaunchProfile {
    assert_eq!(m % p.mwg, 0, "M not padded");
    assert_eq!(n % p.nwg, 0, "N not padded");
    assert_eq!(k % p.k_multiple(), 0, "K not padded");

    let e = p.elem_bytes() as f64;
    let wg = p.wg_size() as f64;
    let (mwi, nwi, kwg) = (p.mwi() as f64, p.nwi() as f64, p.kwg as f64);
    let vw = p.vw as f64;

    // --- per-work-item instruction accounting (one Kwg iteration) -------
    let mad_ops = mwi * nwi * kwg;

    // A vector load wider than the device's transaction width splits into
    // multiple instructions (128-bit load units on the GPUs, 256-bit AVX
    // moves on the CPUs), so `vw` stops paying off past that point.
    let max_lanes = (dev.micro.max_load_bytes / p.elem_bytes()).max(1) as f64;
    let ld = |width: f64| width.min(max_lanes);

    // Wavefront-level duplicate elimination for cached loads: within one
    // SIMT load instruction, work-items differing only in `ty` read the
    // same A address (and only-`tx` work-items the same B address), which
    // the memory pipeline serves once.
    // Real load pipelines merge at most a few identical requests per
    // instruction, so the dedup factor is capped.
    let wavefront = dev.micro.wavefront as f64;
    let dedup_a = (wavefront / p.mdimc as f64)
        .max(1.0)
        .min(p.ndimc as f64)
        .min(4.0);
    let dedup_b = (p.mdimc as f64).min(wavefront).min(4.0);

    // A-side loads per work-item per iteration.
    let a_read_width = if p.read_a_vec() { vw } else { 1.0 };
    let a_compute_loads = mwi * kwg / ld(a_read_width);
    let (a_mem, a_lds_bytes, a_cache_bytes) = if p.local_a {
        // Loader global loads + loader LDS stores + compute LDS loads.
        let loader_w = if p.loader_a_vec() { vw } else { 1.0 };
        let loader_instrs = (p.mwia() * p.kwia()) as f64 / ld(loader_w);
        let mem = loader_instrs * 2.0 + a_compute_loads;
        // LDS traffic per work-group: block write + all compute reads.
        let lds = (p.mwg as f64 * kwg + wg * mwi * kwg) * e;
        (mem, lds, 0.0)
    } else {
        // Direct loads; redundant across the work-items sharing a row
        // strip — served by cache after wavefront dedup.
        let cache = wg * mwi * kwg * e / dedup_a;
        (a_compute_loads, 0.0, cache)
    };

    // B-side (always vector width vw in the N direction).
    let b_compute_loads = (nwi / vw) * kwg * (vw / ld(vw));
    let (b_mem, b_lds_bytes, b_cache_bytes) = if p.local_b {
        let loader_w = if p.loader_b_vec() { vw } else { 1.0 };
        let loader_instrs = (p.kwib() * p.nwib()) as f64 / ld(loader_w);
        let mem = loader_instrs * 2.0 + b_compute_loads;
        let lds = (p.nwg as f64 * kwg + wg * nwi * kwg) * e;
        (mem, lds, 0.0)
    } else {
        let cache = wg * nwi * kwg * e / dedup_b;
        (b_compute_loads, 0.0, cache)
    };

    // PL prefetch adds an extra private-register pass over the loader
    // shares (global load happens anyway; the store-to-LDS pass is the
    // extra instruction cost).
    let pl_extra = if p.algorithm == Algorithm::Pl {
        (p.mwia() * p.kwia() + p.kwib() * p.nwib()) as f64
    } else {
        0.0
    };

    // Transaction amplification for *direct* (uncached-by-LDS) A loads:
    // with unit stride, adjacent work-items read rows `Mwi` elements
    // apart, so one SIMT load instruction touches ~Mwi/vw times more
    // cache lines than a contiguous one; with non-unit stride, adjacent
    // work-items read adjacent elements (the Fig. 2(b) optimisation).
    // B reads depend only on `ty`, so same-row work-items broadcast.
    let a_txn = if !p.local_a && p.stride_m == StrideMode::Unit {
        (mwi / a_read_width).round().clamp(1.0, 4.0)
    } else {
        1.0
    };
    // `a_mem - a_compute_loads` is the loader's share (zero for direct
    // loads); only the compute-phase direct loads pay the amplification.
    let mem_instrs = a_compute_loads * a_txn + (a_mem - a_compute_loads) + b_mem + pl_extra;

    // Loop-control and addressing overhead per iteration: the pwi loop
    // runs Kwg/Kwi times; each trip costs compare+branch+induction slots
    // and a little address arithmetic per staged load. Generated kernels
    // hoist most addressing out of the unrolled body, so the per-load
    // charge is small.
    let trips = kwg / p.kwi as f64;
    let raw_mem = a_mem + b_mem + pl_extra;
    let overhead_ops = trips * 1.5 + raw_mem * 0.05 + 4.0;

    // --- per-work-group traffic ------------------------------------------
    let dram_bytes = ((p.mwg + p.nwg) as f64) * kwg * e;
    let lds_bytes = a_lds_bytes + b_lds_bytes;
    // Row-major operands stride a full matrix row between depth steps, so
    // their cached reuse has worse line/TLB locality than block-major.
    let cache_pen = |layout: BlockLayout| if layout.is_block_major() { 1.0 } else { 1.15 };
    let cache_bytes = a_cache_bytes * cache_pen(p.layout_a) + b_cache_bytes * cache_pen(p.layout_b);
    let uses_local = p.local_a || p.local_b;
    let barriers = if uses_local {
        p.algorithm.barriers_per_iter()
    } else {
        0.0
    };

    // --- once-per-work-group ----------------------------------------------
    let dram_bytes_once = (p.mwg * p.nwg) as f64 * e * 2.0; // C read + write
    let mem_instrs_once = mwi * (nwi / vw) * 2.0;
    let mad_ops_once = mwi * nwi * 2.0; // alpha*acc + beta*C

    // --- DRAM stream efficiency ------------------------------------------
    // The union of the kernel's accesses is dense (every packed element
    // is consumed), so sustained DRAM efficiency is a *layout* property:
    // block-major streams walk pages sequentially; row-major streams hop
    // a full matrix row between depth steps, costing DRAM page locality
    // (§IV-A: Tahiti's best non-block-major DGEMM loses ~3 %, before the
    // power-of-two cliff).
    let layout_eff = |layout: BlockLayout| if layout.is_block_major() { 1.0 } else { 0.93 };
    let a_bytes = (p.mwg as f64) * kwg * e;
    let b_bytes = (p.nwg as f64) * kwg * e;
    let iters = (k / p.kwg) as f64;
    let tot = (a_bytes + b_bytes) * iters + dram_bytes_once;
    let effective = a_bytes * iters / layout_eff(p.layout_a)
        + b_bytes * iters / layout_eff(p.layout_b)
        + dram_bytes_once;
    let coalesce_eff = (tot / effective).clamp(0.01, 1.0);

    // Power-of-two channel conflict: row-major operands whose row stride
    // in bytes is a multiple of a large power of two collide on the same
    // memory channel (the Tahiti "multiples of 2048" cliff of §IV-A).
    let conflict_stride = dev.micro.channel_interleave_bytes * 64;
    let pow2 = |layout: BlockLayout, width: usize| {
        layout == BlockLayout::RowMajor && (width * p.elem_bytes()).is_multiple_of(conflict_stride)
    };
    let pow2_conflict = pow2(p.layout_a, m) || pow2(p.layout_b, n);

    // LDS bank conflicts: unit-stride A reads from local memory walk
    // addresses Mwi×vw apart across adjacent work-items; even strides
    // collide on the 32-bank scratchpad. Non-unit reads are contiguous.
    let lds_bank_factor = if p.local_a && p.stride_m == StrideMode::Unit {
        let words = (p.mwi() * p.elem_bytes() / 4).max(1);
        (crate::params::gcd(words, 32) as f64).sqrt().min(3.0)
    } else {
        1.0
    };

    // CPU implicit vectorisation: how much of the native SIMD width the
    // kernel's explicit vw fills.
    let simd_utilization = if dev.local_mem_type == LocalMemType::GlobalBacked {
        let lanes32 = (p.vw * p.elem_bytes() / 4) as f64;
        (lanes32 / dev.micro.native_simd_lanes as f64).min(1.0)
    } else {
        1.0
    };

    KernelLaunchProfile {
        double_precision: p.precision == Precision::F64,
        wg_size: p.wg_size(),
        n_wgs: (m / p.mwg) * (n / p.nwg),
        outer_iters: k / p.kwg,
        mad_ops,
        mem_instrs,
        overhead_ops,
        dram_bytes,
        cache_bytes,
        lds_bytes,
        barriers,
        dram_bytes_once,
        mem_instrs_once,
        mad_ops_once,
        coalesce_eff,
        pow2_conflict,
        lds_bank_factor,
        simd_utilization,
        serial_latency_factor: if uses_local {
            p.algorithm.serial_latency_factor()
        } else {
            // Without staging, every unroll step issues loads the next
            // MADs depend on, so latency exposure grows with the number
            // of dependent load groups per iteration; the Kwi unroll
            // shortens the chain.
            0.6 + 0.1 * (kwg / p.kwi as f64).min(16.0)
        },
        regs_per_wi: p.regs_per_wi(),
        lds_bytes_per_wg: p.lds_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{small_test_params, tahiti_dgemm_best};
    use clgemm_device::DeviceId;

    #[test]
    fn tahiti_paper_kernel_profile_is_compute_bound_and_fast() {
        let p = tahiti_dgemm_best();
        let dev = DeviceId::Tahiti.spec();
        let n = 4608;
        let prof = launch_profile(&p, &dev, n, n, n);
        let est = clgemm_device::estimate(&dev, &prof).unwrap();
        let eff = est.gflops(2.0 * (n as f64).powi(3)) / dev.peak_gflops(true);
        assert!(
            eff > 0.6,
            "paper's winning Tahiti params reach {eff:.2} in the model"
        );
        assert!(eff <= 1.0);
    }

    #[test]
    fn mad_count_matches_parameters() {
        let p = small_test_params(Precision::F64);
        let dev = DeviceId::Tahiti.spec();
        let prof = launch_profile(&p, &dev, 32, 32, 16);
        assert_eq!(prof.mad_ops, (p.mwi() * p.nwi() * p.kwg) as f64);
        assert_eq!(prof.outer_iters, 2);
        assert_eq!(prof.n_wgs, 4);
    }

    #[test]
    fn local_memory_moves_traffic_from_cache_to_lds() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = small_test_params(Precision::F64);
        let with = launch_profile(&p, &dev, 32, 32, 16);
        assert!(with.lds_bytes > 0.0);
        assert_eq!(with.cache_bytes, 0.0);
        p.local_a = false;
        p.local_b = false;
        let without = launch_profile(&p, &dev, 32, 32, 16);
        assert_eq!(without.lds_bytes, 0.0);
        assert!(without.cache_bytes > 0.0);
        assert_eq!(without.barriers, 0.0);
    }

    #[test]
    fn bigger_vw_reduces_memory_instructions() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = small_test_params(Precision::F32);
        p.vw = 1;
        let v1 = launch_profile(&p, &dev, 32, 32, 16);
        p.vw = 4;
        let v4 = launch_profile(&p, &dev, 32, 32, 16);
        assert!(v4.mem_instrs < v1.mem_instrs);
    }

    #[test]
    fn row_major_large_pow2_width_triggers_channel_conflict() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = small_test_params(Precision::F64);
        p.layout_a = BlockLayout::RowMajor;
        // 2048 doubles row stride = 16 KiB = 64 × 256 B interleave.
        let prof = launch_profile(&p, &dev, 2048, 2048, 16);
        assert!(prof.pow2_conflict);
        let prof2 = launch_profile(&p, &dev, 2048 + p.mwg, 2048, 16);
        assert!(!prof2.pow2_conflict);
        p.layout_a = BlockLayout::Cbl;
        let prof3 = launch_profile(&p, &dev, 2048, 2048, 16);
        assert!(!prof3.pow2_conflict, "block-major layouts dodge the cliff");
    }

    #[test]
    fn cpu_simd_utilization_scales_with_vw() {
        let dev = DeviceId::SandyBridge.spec();
        let mut p = small_test_params(Precision::F64);
        p.vw = 1;
        let scalar = launch_profile(&p, &dev, 32, 32, 16);
        assert!((scalar.simd_utilization - 0.25).abs() < 1e-9); // 2 of 8 lanes
        p.vw = 4;
        let vec = launch_profile(&p, &dev, 32, 32, 16);
        assert!((vec.simd_utilization - 1.0).abs() < 1e-9); // 8 of 8 lanes
        let gpu = launch_profile(&p, &DeviceId::Tahiti.spec(), 32, 32, 16);
        assert_eq!(gpu.simd_utilization, 1.0);
    }

    #[test]
    fn db_allocates_double_lds_and_fewer_barriers() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = small_test_params(Precision::F64);
        let ba = launch_profile(&p, &dev, 32, 32, 16);
        p.algorithm = Algorithm::Db;
        let db = launch_profile(&p, &dev, 32, 32, 32);
        assert_eq!(db.lds_bytes_per_wg, 2 * ba.lds_bytes_per_wg);
        assert!(db.barriers < ba.barriers);
        assert!(db.serial_latency_factor < ba.serial_latency_factor);
    }

    #[test]
    #[should_panic(expected = "K not padded")]
    fn unpadded_k_panics() {
        let p = small_test_params(Precision::F64);
        let dev = DeviceId::Tahiti.spec();
        let _ = launch_profile(&p, &dev, 32, 32, 12);
    }
}
