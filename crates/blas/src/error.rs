//! Forward-error analysis used to accept or reject generated kernels.
//!
//! A tuned kernel's result is compared against [`crate::gemm_ref`]; the
//! acceptance threshold scales with `K` because the rounding error of an
//! inner product grows with the number of accumulated terms. Kernels whose
//! error exceeds the bound — or that produce non-finite values — are
//! discarded, matching the paper's policy of not counting kernels that
//! fail testing.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Summary of an element-wise comparison between a candidate result and
/// the reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Largest absolute difference over all elements.
    pub max_abs: f64,
    /// Largest relative difference (`|x−y| / max(|y|, tiny)`).
    pub max_rel: f64,
    /// Index of the worst element.
    pub argmax: (usize, usize),
    /// Whether both matrices contain only finite values.
    pub all_finite: bool,
}

impl ErrorReport {
    /// Whether the candidate passes at the tolerance `tol` (relative).
    #[must_use]
    pub fn passes(&self, tol: f64) -> bool {
        self.all_finite && self.max_rel <= tol
    }
}

/// Largest absolute element-wise difference.
///
/// # Panics
/// Panics if the shapes differ.
#[must_use]
pub fn max_abs_diff<T: Scalar>(x: &Matrix<T>, y: &Matrix<T>) -> f64 {
    compare(x, y).max_abs
}

/// Largest relative element-wise difference.
#[must_use]
pub fn max_rel_error<T: Scalar>(x: &Matrix<T>, y: &Matrix<T>) -> f64 {
    compare(x, y).max_rel
}

/// Full comparison.
///
/// # Panics
/// Panics if the shapes differ.
#[must_use]
pub fn compare<T: Scalar>(x: &Matrix<T>, y: &Matrix<T>) -> ErrorReport {
    assert_eq!(
        (x.rows(), x.cols()),
        (y.rows(), y.cols()),
        "comparing matrices of different shapes"
    );
    let mut rep = ErrorReport {
        max_abs: 0.0,
        max_rel: 0.0,
        argmax: (0, 0),
        all_finite: true,
    };
    for j in 0..x.cols() {
        for i in 0..x.rows() {
            let xv = x.at(i, j).to_f64();
            let yv = y.at(i, j).to_f64();
            if !xv.is_finite() || !yv.is_finite() {
                rep.all_finite = false;
            }
            let abs = (xv - yv).abs();
            let rel = abs / yv.abs().max(1.0);
            if rel > rep.max_rel {
                rep.max_rel = rel;
                rep.argmax = (i, j);
            }
            rep.max_abs = rep.max_abs.max(abs);
        }
    }
    rep
}

/// The acceptance tolerance for a GEMM with reduction depth `k` in
/// precision `T`: `c · k · ε` with a safety constant. Both the reference
/// and the kernel may reassociate, so the bound must cover two different
/// summation orders.
#[must_use]
pub fn gemm_tolerance<T: Scalar>(k: usize) -> f64 {
    let eps = T::EPSILON.to_f64();
    // 16 covers accumulation-order differences plus the alpha/beta merge.
    16.0 * (k.max(1) as f64) * eps
}

/// One-call kernel acceptance check: compare `candidate` against
/// `reference` at the GEMM tolerance for depth `k`.
#[must_use]
pub fn verify_gemm<T: Scalar>(
    candidate: &Matrix<T>,
    reference: &Matrix<T>,
    k: usize,
) -> ErrorReport {
    let rep = compare(candidate, reference);
    debug_assert!(gemm_tolerance::<T>(k) > 0.0);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageOrder;

    #[test]
    fn identical_matrices_have_zero_error() {
        let m = Matrix::<f64>::test_pattern(6, 6, StorageOrder::ColMajor, 9);
        let rep = compare(&m, &m);
        assert_eq!(rep.max_abs, 0.0);
        assert_eq!(rep.max_rel, 0.0);
        assert!(rep.all_finite);
        assert!(rep.passes(0.0));
    }

    #[test]
    fn detects_single_corrupted_element() {
        let m = Matrix::<f64>::test_pattern(5, 4, StorageOrder::ColMajor, 3);
        let mut bad = m.clone();
        *bad.at_mut(2, 3) += 0.5;
        let rep = compare(&bad, &m);
        assert_eq!(rep.argmax, (2, 3));
        assert!((rep.max_abs - 0.5).abs() < 1e-15);
        assert!(!rep.passes(1e-6));
    }

    #[test]
    fn non_finite_values_fail_regardless_of_tolerance() {
        let m = Matrix::<f32>::zeros(2, 2, StorageOrder::RowMajor);
        let mut bad = m.clone();
        *bad.at_mut(0, 0) = f32::NAN;
        let rep = compare(&bad, &m);
        assert!(!rep.all_finite);
        assert!(!rep.passes(f64::INFINITY));
    }

    #[test]
    fn tolerance_scales_with_k_and_precision() {
        assert!(gemm_tolerance::<f64>(1024) < gemm_tolerance::<f32>(1024));
        assert!(gemm_tolerance::<f64>(2048) > gemm_tolerance::<f64>(1024));
        assert!(gemm_tolerance::<f64>(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 2, StorageOrder::ColMajor);
        let b = Matrix::<f64>::zeros(2, 3, StorageOrder::ColMajor);
        let _ = compare(&a, &b);
    }

    #[test]
    fn relative_error_uses_reference_magnitude() {
        let reference = Matrix::<f64>::from_fn(1, 1, StorageOrder::ColMajor, |_, _| 100.0);
        let cand = Matrix::<f64>::from_fn(1, 1, StorageOrder::ColMajor, |_, _| 101.0);
        let rep = compare(&cand, &reference);
        assert!((rep.max_rel - 0.01).abs() < 1e-12);
    }
}
