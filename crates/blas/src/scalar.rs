//! The precision abstraction shared by the whole workspace.
//!
//! The paper tunes two precisions: DGEMM (`f64`) and SGEMM (`f32`). Every
//! generic routine in this workspace is written over [`Scalar`] so that
//! both precisions exercise identical code paths, exactly as the paper's
//! single code generator serves both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable in GEMM kernels and reference code.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element size in bytes, as the OpenCL device sees it.
    const BYTES: usize;
    /// The OpenCL C type name (`"float"` or `"double"`).
    const CL_NAME: &'static str;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// Short precision tag used in routine names (`"S"` or `"D"`).
    const PREC_TAG: char;
    /// The run-time precision selector matching this type.
    const PRECISION: Precision;

    /// Lossy conversion from `f64` (used for test data and α/β handling).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used for error analysis).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b`; maps to the device MAD/FMA unit.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (kernels producing NaN/Inf are rejected
    /// by the tester just as crashing kernels are discarded in the paper).
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const CL_NAME: &'static str = "float";
    const EPSILON: Self = f32::EPSILON;
    const PREC_TAG: char = 'S';
    const PRECISION: Precision = Precision::F32;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const CL_NAME: &'static str = "double";
    const EPSILON: Self = f64::EPSILON;
    const PREC_TAG: char = 'D';
    const PRECISION: Precision = Precision::F64;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// A storage element type for batched GEMM slabs.
///
/// Arithmetic always happens in [`StorageScalar::Acc`] (`f32` or `f64`):
/// operands are widened on pack (or on load, in the direct path) and the
/// accumulator is narrowed back exactly once when `C` is written. Widening
/// `f16`/`bf16` to `f32` is exact, so the half-precision paths run the
/// *identical* `f32` FMA chain as an `f32` computation over the widened
/// values — the property suite compares them bit for bit. Narrowing uses
/// round-to-nearest-even, the same rule in the fast path and the oracle.
pub trait StorageScalar:
    Copy + Clone + Debug + Display + Default + PartialEq + Send + Sync + 'static
{
    /// The accumulation type; all arithmetic happens here.
    type Acc: Scalar;
    /// Short name used in metrics/bench labels (`"f32"`, `"f16"`, …).
    const NAME: &'static str;
    /// `true` when `widen` changes representation (convert-on-pack).
    const WIDENS: bool;
    /// Storage element size in bytes.
    const STORAGE_BYTES: usize;

    /// Exact widening conversion into the accumulation type.
    fn widen(self) -> Self::Acc;
    /// Round-to-nearest-even narrowing from the accumulation type.
    fn narrow(acc: Self::Acc) -> Self;
    /// Test-data constructor (round-trips through `narrow`).
    fn from_f64(v: f64) -> Self {
        Self::narrow(Self::Acc::from_f64(v))
    }
    /// Widening conversion to `f64` for diagnostics.
    fn to_f64(self) -> f64 {
        self.widen().to_f64()
    }
}

impl StorageScalar for f32 {
    type Acc = f32;
    const NAME: &'static str = "f32";
    const WIDENS: bool = false;
    const STORAGE_BYTES: usize = 4;

    #[inline]
    fn widen(self) -> f32 {
        self
    }

    #[inline]
    fn narrow(acc: f32) -> f32 {
        acc
    }
}

impl StorageScalar for f64 {
    type Acc = f64;
    const NAME: &'static str = "f64";
    const WIDENS: bool = false;
    const STORAGE_BYTES: usize = 8;

    #[inline]
    fn widen(self) -> f64 {
        self
    }

    #[inline]
    fn narrow(acc: f64) -> f64 {
        acc
    }
}

/// IEEE 754 binary16 storage (1 sign, 5 exponent, 10 mantissa bits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(pub u16);

/// bfloat16 storage — the upper 16 bits of an `f32`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Bf16(pub u16);

impl StorageScalar for F16 {
    type Acc = f32;
    const NAME: &'static str = "f16";
    const WIDENS: bool = true;
    const STORAGE_BYTES: usize = 2;

    #[inline]
    fn widen(self) -> f32 {
        f16_to_f32(self.0)
    }

    #[inline]
    fn narrow(acc: f32) -> F16 {
        F16(f32_to_f16(acc))
    }
}

impl StorageScalar for Bf16 {
    type Acc = f32;
    const NAME: &'static str = "bf16";
    const WIDENS: bool = true;
    const STORAGE_BYTES: usize = 2;

    #[inline]
    fn widen(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    #[inline]
    fn narrow(acc: f32) -> Bf16 {
        Bf16(f32_to_bf16(acc))
    }
}

impl Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.widen())
    }
}

impl Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.widen())
    }
}

/// Widen binary16 bits to `f32`. Exact for every input, including
/// subnormals (scaled through an exact small-integer multiply).
#[must_use]
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits >> 15) << 31;
    let exp = (bits >> 10) & 0x1f;
    let man = u32::from(bits & 0x3ff);
    match (exp, man) {
        (0, 0) => f32::from_bits(sign),
        // Subnormal: man × 2⁻²⁴, exact (man < 2¹⁰).
        (0, _) => {
            let v = man as f32 * f32::from_bits(0x3380_0000);
            f32::from_bits(v.to_bits() | sign)
        }
        (0x1f, 0) => f32::from_bits(sign | 0x7f80_0000),
        (0x1f, _) => f32::from_bits(sign | 0x7fc0_0000 | (man << 13)),
        _ => f32::from_bits(sign | ((u32::from(exp) + 112) << 23) | (man << 13)),
    }
}

/// Narrow `f32` to binary16 bits with round-to-nearest-even; overflow
/// rounds to ±∞ and values below half the smallest subnormal to ±0.
#[must_use]
pub fn f32_to_f16(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp_f32 = (b >> 23) & 0xff;
    let man = b & 0x007f_ffff;
    if exp_f32 == 0xff {
        if man == 0 {
            return sign | 0x7c00;
        }
        // NaN: keep the top payload bits, force quiet.
        return sign | 0x7c00 | 0x200 | ((man >> 13) & 0x3ff) as u16;
    }
    let exp = exp_f32 as i32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00;
    }
    if exp <= 0 {
        if exp < -10 {
            return sign;
        }
        // Subnormal result: shift the full 24-bit significand down and
        // round; a carry into the exponent field is naturally correct.
        let man = man | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let halfway = 1u32 << (shift - 1);
        let rem = man & ((1 << shift) - 1);
        let mut out = (man >> shift) as u16;
        if rem > halfway || (rem == halfway && out & 1 == 1) {
            out += 1;
        }
        return sign | out;
    }
    let rem = man & 0x1fff;
    let mut out = ((exp as u32) << 10 | (man >> 13)) as u16;
    if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
        out += 1; // may carry into the exponent, up to ∞ — correct
    }
    sign | out
}

/// Narrow `f32` to bfloat16 bits with round-to-nearest-even.
#[must_use]
pub fn f32_to_bf16(x: f32) -> u16 {
    let b = x.to_bits();
    if x.is_nan() {
        // Keep sign and payload, force a nonzero mantissa.
        return ((b >> 16) as u16) | 0x0040;
    }
    let rem = b & 0xffff;
    let mut out = (b >> 16) as u16;
    if rem > 0x8000 || (rem == 0x8000 && out & 1 == 1) {
        out += 1; // carries roll to ±∞, never wrap (0xffff is NaN)
    }
    out
}

/// Precision selector used where code paths are chosen at run time rather
/// than by monomorphisation (e.g. in the tuner's result records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Single precision — SGEMM.
    F32,
    /// Double precision — DGEMM.
    F64,
}

impl Precision {
    /// Element size in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// OpenCL C scalar type name.
    #[must_use]
    pub fn cl_name(self) -> &'static str {
        match self {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }

    /// The BLAS routine name for GEMM at this precision.
    #[must_use]
    pub fn routine_name(self) -> &'static str {
        match self {
            Precision::F32 => "SGEMM",
            Precision::F64 => "DGEMM",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.routine_name())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "F32" | "SGEMM" => Ok(Precision::F32),
            "F64" | "DGEMM" => Ok(Precision::F64),
            other => Err(format!("unknown precision {other:?}; expected F32/F64")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constants_are_consistent() {
        assert_eq!(f32::BYTES, Precision::F32.bytes());
        assert_eq!(f64::BYTES, Precision::F64.bytes());
        assert_eq!(f32::CL_NAME, Precision::F32.cl_name());
        assert_eq!(f64::CL_NAME, Precision::F64.cl_name());
        assert_eq!(f32::PRECISION, Precision::F32);
        assert_eq!(f64::PRECISION, Precision::F64);
    }

    #[test]
    fn mul_add_matches_separate_ops_for_exact_values() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
    }

    #[test]
    fn conversions_round_trip() {
        // f32/f64 implement both Scalar and StorageScalar conversions (they
        // must agree), so qualify the trait explicitly.
        let x = 1.5f32;
        assert_eq!(<f32 as Scalar>::from_f64(Scalar::to_f64(x)), x);
        assert_eq!(
            <f32 as StorageScalar>::from_f64(StorageScalar::to_f64(x)),
            x
        );
        let y = -2.25f64;
        assert_eq!(<f64 as Scalar>::from_f64(Scalar::to_f64(y)), y);
        assert_eq!(
            <f64 as StorageScalar>::from_f64(StorageScalar::to_f64(y)),
            y
        );
    }

    #[test]
    fn non_finite_detection() {
        assert!(!f32::NAN.is_finite());
        assert!(!f64::INFINITY.is_finite());
        assert!(1.0f64.is_finite());
    }

    #[test]
    fn routine_names() {
        assert_eq!(Precision::F64.routine_name(), "DGEMM");
        assert_eq!(Precision::F32.to_string(), "SGEMM");
    }

    #[test]
    fn f16_widen_narrow_round_trips_every_finite_value() {
        // Exhaustive: every finite f16 must survive widen → narrow.
        for bits in 0..=u16::MAX {
            let exp = (bits >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // Inf/NaN handled below
            }
            let wide = f16_to_f32(bits);
            assert_eq!(f32_to_f16(wide), bits, "bits {bits:#06x} -> {wide}");
        }
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
        assert!(f16_to_f32(0x7c01).is_nan());
    }

    #[test]
    fn f16_narrow_rounds_to_nearest_even() {
        // 1 + 2⁻¹¹ lies exactly halfway between 1.0 and the next f16;
        // ties go to the even mantissa (1.0).
        assert_eq!(f32_to_f16(1.0 + 0.000_488_281_25), 0x3c00);
        // Just above the tie rounds up.
        assert_eq!(f32_to_f16(1.0 + 0.000_489), 0x3c01);
        // Overflow saturates to infinity: max finite f16 is 65504.
        assert_eq!(f32_to_f16(65520.0), 0x7c00);
        assert_eq!(f32_to_f16(65503.9), 0x7bff);
        // Below half the smallest subnormal flushes to signed zero.
        assert_eq!(f32_to_f16(1e-10), 0x0000);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // Smallest subnormal survives.
        let tiny = f16_to_f32(0x0001);
        assert_eq!(f32_to_f16(tiny), 0x0001);
    }

    #[test]
    fn bf16_widen_narrow_round_trips_every_finite_value() {
        for bits in 0..=u16::MAX {
            let exp = (bits >> 7) & 0xff;
            if exp == 0xff {
                continue;
            }
            let wide = Bf16(bits).widen();
            assert_eq!(f32_to_bf16(wide), bits, "bits {bits:#06x}");
        }
        assert_eq!(Bf16(0x7f80).widen(), f32::INFINITY);
        assert!(Bf16(0x7fc0).widen().is_nan());
        assert!(Bf16::narrow(f32::NAN).widen().is_nan());
        assert!(F16::narrow(f32::NAN).widen().is_nan());
    }

    #[test]
    fn bf16_narrow_rounds_to_nearest_even() {
        // 1 + 2⁻⁸ is the exact halfway point after 1.0 in bf16 (7 mantissa
        // bits): the tie goes to the even 0x3f80, anything above rounds up.
        assert_eq!(f32_to_bf16(1.0 + 0.003_906_25), 0x3f80);
        assert_eq!(f32_to_bf16(1.0 + 0.004), 0x3f81);
        // The next tie, 1 + 3·2⁻⁸, rounds up to the even 0x3f82.
        assert_eq!(f32_to_bf16(1.0 + 3.0 * 0.003_906_25), 0x3f82);
        // Carry past the largest finite bf16 lands on infinity.
        assert_eq!(f32_to_bf16(f32::from_bits(0x7f7f_ffff)), 0x7f80);
        assert_eq!(f32_to_bf16(f32::from_bits(0xff7f_ffff)), 0xff80);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the tags ARE the contract
    fn storage_scalar_widening_is_exact_and_tagged() {
        assert!(!<f32 as StorageScalar>::WIDENS);
        assert!(!<f64 as StorageScalar>::WIDENS);
        assert!(F16::WIDENS);
        assert!(Bf16::WIDENS);
        assert_eq!(F16::NAME, "f16");
        assert_eq!(Bf16::STORAGE_BYTES, 2);
        // from_f64 narrows with the same RNE rule as narrow().
        let x = <F16 as StorageScalar>::from_f64(0.3);
        assert_eq!(x, F16::narrow(0.3f32));
        let y = <Bf16 as StorageScalar>::from_f64(-1.7);
        assert_eq!(y, Bf16::narrow(-1.7f32));
        assert!((StorageScalar::to_f64(y) + 1.7).abs() < 0.01);
    }
}
