//! The precision abstraction shared by the whole workspace.
//!
//! The paper tunes two precisions: DGEMM (`f64`) and SGEMM (`f32`). Every
//! generic routine in this workspace is written over [`Scalar`] so that
//! both precisions exercise identical code paths, exactly as the paper's
//! single code generator serves both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable in GEMM kernels and reference code.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element size in bytes, as the OpenCL device sees it.
    const BYTES: usize;
    /// The OpenCL C type name (`"float"` or `"double"`).
    const CL_NAME: &'static str;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// Short precision tag used in routine names (`"S"` or `"D"`).
    const PREC_TAG: char;
    /// The run-time precision selector matching this type.
    const PRECISION: Precision;

    /// Lossy conversion from `f64` (used for test data and α/β handling).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used for error analysis).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b`; maps to the device MAD/FMA unit.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (kernels producing NaN/Inf are rejected
    /// by the tester just as crashing kernels are discarded in the paper).
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const CL_NAME: &'static str = "float";
    const EPSILON: Self = f32::EPSILON;
    const PREC_TAG: char = 'S';
    const PRECISION: Precision = Precision::F32;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const CL_NAME: &'static str = "double";
    const EPSILON: Self = f64::EPSILON;
    const PREC_TAG: char = 'D';
    const PRECISION: Precision = Precision::F64;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Precision selector used where code paths are chosen at run time rather
/// than by monomorphisation (e.g. in the tuner's result records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Single precision — SGEMM.
    F32,
    /// Double precision — DGEMM.
    F64,
}

impl Precision {
    /// Element size in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// OpenCL C scalar type name.
    #[must_use]
    pub fn cl_name(self) -> &'static str {
        match self {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }

    /// The BLAS routine name for GEMM at this precision.
    #[must_use]
    pub fn routine_name(self) -> &'static str {
        match self {
            Precision::F32 => "SGEMM",
            Precision::F64 => "DGEMM",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.routine_name())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "F32" | "SGEMM" => Ok(Precision::F32),
            "F64" | "DGEMM" => Ok(Precision::F64),
            other => Err(format!("unknown precision {other:?}; expected F32/F64")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constants_are_consistent() {
        assert_eq!(f32::BYTES, Precision::F32.bytes());
        assert_eq!(f64::BYTES, Precision::F64.bytes());
        assert_eq!(f32::CL_NAME, Precision::F32.cl_name());
        assert_eq!(f64::CL_NAME, Precision::F64.cl_name());
        assert_eq!(f32::PRECISION, Precision::F32);
        assert_eq!(f64::PRECISION, Precision::F64);
    }

    #[test]
    fn mul_add_matches_separate_ops_for_exact_values() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 1.5f32;
        assert_eq!(f32::from_f64(x.to_f64()), x);
        let y = -2.25f64;
        assert_eq!(f64::from_f64(y.to_f64()), y);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!f32::NAN.is_finite());
        assert!(!f64::INFINITY.is_finite());
        assert!(1.0f64.is_finite());
    }

    #[test]
    fn routine_names() {
        assert_eq!(Precision::F64.routine_name(), "DGEMM");
        assert_eq!(Precision::F32.to_string(), "SGEMM");
    }
}
