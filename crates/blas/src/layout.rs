//! The packed matrix data layouts of Fig. 3.
//!
//! The fast kernel computes `C ← α·Aᵀ·B + β·C`, reading two packed
//! operands that are both stored with the reduction dimension `K` as the
//! *row* axis:
//!
//! * packed `Aᵀ` is a `K × M` matrix (element `(p, i)` multiplies into row
//!   `i` of `C`),
//! * packed `B` is a `K × N` matrix (element `(p, j)` multiplies into
//!   column `j` of `C`).
//!
//! A layout describes how such a `K × W` matrix, blocked with factors
//! `Wwg` (width direction) and `Kwg` (depth direction), is linearised in
//! the staging buffer:
//!
//! * [`BlockLayout::RowMajor`] — plain row-major, `off = p·W + w`
//!   (Fig. 3(a)).
//! * [`BlockLayout::Cbl`] — column-block-row-major: each `K × Wwg`
//!   column-block is stored contiguously in row-major order (Fig. 3(b)).
//! * [`BlockLayout::Rbl`] — row-block-row-major: each `Kwg × Wwg`
//!   sub-block of a `Kwg × W` row-block is stored contiguously in
//!   row-major order (Fig. 3(c)).
//!
//! The exact same arithmetic is emitted into the generated OpenCL kernels
//! by `clgemm::codegen`, and the integration tests pin the two
//! implementations against each other.

/// One of the three supported packed layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockLayout {
    /// Fig. 3(a): plain row-major.
    RowMajor,
    /// Fig. 3(b): column-block-row-major.
    Cbl,
    /// Fig. 3(c): row-block-row-major.
    Rbl,
}

impl BlockLayout {
    /// All layouts, in the order of Fig. 3.
    pub const ALL: [BlockLayout; 3] = [BlockLayout::RowMajor, BlockLayout::Cbl, BlockLayout::Rbl];

    /// Short tag used in parameter tables, matching the paper ("RM", "CBL",
    /// "RBL").
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            BlockLayout::RowMajor => "RM",
            BlockLayout::Cbl => "CBL",
            BlockLayout::Rbl => "RBL",
        }
    }

    /// `true` for the two block-major layouts (CBL/RBL), which the paper
    /// finds essential for performance on all tested processors.
    #[must_use]
    pub fn is_block_major(self) -> bool {
        !matches!(self, BlockLayout::RowMajor)
    }

    /// Flat offset of element `(p, w)` in a packed `k × width` matrix with
    /// blocking factors `wwg` (width) and `kwg` (depth).
    ///
    /// `width` must be a multiple of `wwg` and `k` of `kwg` (the packing
    /// step guarantees this by zero-padding).
    #[inline]
    #[must_use]
    pub fn offset(self, p: usize, w: usize, dims: PackedDims) -> usize {
        debug_assert!(
            p < dims.k && w < dims.width,
            "({p},{w}) out of {}x{}",
            dims.k,
            dims.width
        );
        match self {
            BlockLayout::RowMajor => p * dims.width + w,
            BlockLayout::Cbl => {
                let cb = w / dims.wwg;
                let wi = w % dims.wwg;
                cb * (dims.k * dims.wwg) + p * dims.wwg + wi
            }
            BlockLayout::Rbl => {
                let rb = p / dims.kwg;
                let pi = p % dims.kwg;
                let cb = w / dims.wwg;
                let wi = w % dims.wwg;
                rb * (dims.kwg * dims.width) + cb * (dims.kwg * dims.wwg) + pi * dims.wwg + wi
            }
        }
    }

    /// The distance in elements between `(p, w)` and `(p+1, w)` when both
    /// lie inside the same block. This is the stride a kernel work-item
    /// walking the depth dimension observes; the timing model uses it to
    /// judge spatial locality.
    #[must_use]
    pub fn depth_stride(self, dims: PackedDims) -> usize {
        match self {
            BlockLayout::RowMajor => dims.width,
            BlockLayout::Cbl | BlockLayout::Rbl => dims.wwg,
        }
    }

    /// How many consecutive depth positions share the [`Self::depth_stride`]
    /// from an aligned start: walking `p` from a multiple of this run
    /// length, `offset(p + d, w) == offset(p, w) + d · depth_stride` for
    /// all `d` inside the run. The fast host microkernel uses this to
    /// hoist all offset arithmetic out of its FMA loop.
    #[must_use]
    pub fn depth_run(self, dims: PackedDims) -> usize {
        match self {
            // Row-major and CBL are affine in `p` over the whole depth.
            BlockLayout::RowMajor | BlockLayout::Cbl => dims.k.max(1),
            // RBL jumps at every Kwg boundary.
            BlockLayout::Rbl => dims.kwg,
        }
    }

    /// How many depth positions starting at `p0` remain affine, i.e. the
    /// distance to the end of the current [`Self::depth_run`]. A kernel
    /// walking `p0`, `p0 + run_remaining(p0)`, … visits exactly the run
    /// boundaries where base offsets must be recomputed.
    #[inline]
    #[must_use]
    pub fn run_remaining(self, p0: usize, dims: PackedDims) -> usize {
        let run = self.depth_run(dims);
        run - p0 % run
    }
}

impl std::fmt::Display for BlockLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for BlockLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RM" | "ROW" | "ROWMAJOR" => Ok(BlockLayout::RowMajor),
            "CBL" => Ok(BlockLayout::Cbl),
            "RBL" => Ok(BlockLayout::Rbl),
            other => Err(format!("unknown layout {other:?}; expected RM/CBL/RBL")),
        }
    }
}

/// Dimensions of a packed operand buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedDims {
    /// Padded depth (reduction) extent; a multiple of `kwg`.
    pub k: usize,
    /// Padded width extent (`M` for the A operand, `N` for B); a multiple
    /// of `wwg`.
    pub width: usize,
    /// Work-group blocking factor in the width direction (`Mwg` or `Nwg`).
    pub wwg: usize,
    /// Work-group blocking factor in the depth direction (`Kwg`).
    pub kwg: usize,
}

impl PackedDims {
    /// Construct, validating divisibility.
    ///
    /// # Errors
    /// Returns a message when the padded extents are not multiples of the
    /// blocking factors (which would make block-major offsets ill-defined).
    pub fn new(k: usize, width: usize, wwg: usize, kwg: usize) -> Result<Self, String> {
        if wwg == 0 || kwg == 0 {
            return Err(format!(
                "blocking factors must be positive (wwg={wwg}, kwg={kwg})"
            ));
        }
        if !width.is_multiple_of(wwg) {
            return Err(format!("padded width {width} not a multiple of wwg {wwg}"));
        }
        if !k.is_multiple_of(kwg) {
            return Err(format!("padded depth {k} not a multiple of kwg {kwg}"));
        }
        Ok(PackedDims { k, width, wwg, kwg })
    }

    /// Total number of elements in the packed buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.k * self.width
    }

    /// `true` when the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Round `n` up to the next multiple of `step` (the zero-padding rule of
/// §IV-B). `round_up(0, s) == 0`.
#[inline]
#[must_use]
pub fn round_up(n: usize, step: usize) -> usize {
    assert!(step > 0, "rounding step must be positive");
    n.div_ceil(step) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(k: usize, w: usize, wwg: usize, kwg: usize) -> PackedDims {
        PackedDims::new(k, w, wwg, kwg).unwrap()
    }

    /// Every layout must be a bijection from (p, w) onto [0, k*width).
    fn assert_bijective(layout: BlockLayout, d: PackedDims) {
        let mut seen = vec![false; d.len()];
        for p in 0..d.k {
            for w in 0..d.width {
                let off = layout.offset(p, w, d);
                assert!(
                    off < d.len(),
                    "{layout:?} offset {off} out of range {}",
                    d.len()
                );
                assert!(
                    !seen[off],
                    "{layout:?} offset {off} hit twice (p={p}, w={w})"
                );
                seen[off] = true;
            }
        }
    }

    #[test]
    fn all_layouts_are_bijections() {
        let d = dims(12, 8, 4, 3);
        for layout in BlockLayout::ALL {
            assert_bijective(layout, d);
        }
    }

    #[test]
    fn row_major_matches_plain_formula() {
        let d = dims(6, 10, 5, 2);
        assert_eq!(BlockLayout::RowMajor.offset(3, 7, d), 3 * 10 + 7);
    }

    #[test]
    fn cbl_blocks_are_contiguous() {
        // In CBL the whole K x Wwg column-block occupies one contiguous
        // span of k*wwg elements.
        let d = dims(8, 12, 4, 2);
        let block = 1; // columns 4..8
        let base = BlockLayout::Cbl.offset(0, block * d.wwg, d);
        for p in 0..d.k {
            for wi in 0..d.wwg {
                let off = BlockLayout::Cbl.offset(p, block * d.wwg + wi, d);
                assert_eq!(off, base + p * d.wwg + wi);
            }
        }
    }

    #[test]
    fn rbl_subblocks_are_contiguous() {
        // In RBL each Kwg x Wwg sub-block occupies one contiguous span.
        let d = dims(9, 8, 4, 3);
        let (rb, cb) = (2, 1);
        let base = BlockLayout::Rbl.offset(rb * d.kwg, cb * d.wwg, d);
        for pi in 0..d.kwg {
            for wi in 0..d.wwg {
                let off = BlockLayout::Rbl.offset(rb * d.kwg + pi, cb * d.wwg + wi, d);
                assert_eq!(off, base + pi * d.wwg + wi);
            }
        }
    }

    #[test]
    fn depth_stride_reflects_spatial_locality() {
        let d = dims(16, 256, 32, 8);
        assert_eq!(BlockLayout::RowMajor.depth_stride(d), 256);
        assert_eq!(BlockLayout::Cbl.depth_stride(d), 32);
        assert_eq!(BlockLayout::Rbl.depth_stride(d), 32);
    }

    #[test]
    fn depth_run_makes_offsets_affine() {
        let d = dims(12, 8, 4, 3);
        for layout in BlockLayout::ALL {
            let run = layout.depth_run(d);
            let stride = layout.depth_stride(d);
            for w in 0..d.width {
                for p0 in (0..d.k).step_by(run) {
                    let base = layout.offset(p0, w, d);
                    for di in 0..run.min(d.k - p0) {
                        assert_eq!(
                            layout.offset(p0 + di, w, d),
                            base + di * stride,
                            "{layout:?} p0={p0} d={di} w={w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn run_remaining_counts_to_the_next_boundary() {
        let d = dims(12, 8, 4, 3);
        for layout in BlockLayout::ALL {
            let run = layout.depth_run(d);
            for p0 in 0..d.k {
                let rem = layout.run_remaining(p0, d);
                assert!(rem >= 1 && rem <= run, "{layout:?} p0={p0} rem={rem}");
                // The next boundary is a multiple of the run length.
                assert_eq!((p0 + rem) % run, 0, "{layout:?} p0={p0}");
            }
        }
    }

    #[test]
    fn packed_dims_validation() {
        assert!(PackedDims::new(8, 10, 4, 2).is_err()); // 10 % 4 != 0
        assert!(PackedDims::new(7, 8, 4, 2).is_err()); // 7 % 2 != 0
        assert!(PackedDims::new(8, 8, 0, 2).is_err());
        assert!(PackedDims::new(8, 8, 4, 2).is_ok());
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
    }

    #[test]
    fn layout_tags_parse_back() {
        for layout in BlockLayout::ALL {
            let parsed: BlockLayout = layout.tag().parse().unwrap();
            assert_eq!(parsed, layout);
        }
        assert!("XYZ".parse::<BlockLayout>().is_err());
    }
}
