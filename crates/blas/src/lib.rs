//! Host-side linear-algebra substrate for the `clgemm` workspace.
//!
//! This crate provides everything the auto-tuner needs on the host side:
//!
//! * [`Scalar`] — the precision abstraction (`f32` for SGEMM, `f64` for
//!   DGEMM), mirroring the paper's two tuned precisions.
//! * [`Matrix`] — a dense matrix container supporting both column-major
//!   (the BLAS-facing order used in §IV-B of the paper) and row-major
//!   storage, with an explicit leading dimension.
//! * [`layout`] — the three packed data layouts of Fig. 3: row-major,
//!   column-block-row-major (CBL) and row-block-row-major (RBL), plus the
//!   index arithmetic that the generated OpenCL kernels must agree with.
//! * [`pack`] — copy/transpose/pad routines that move user matrices into
//!   block-major staging buffers (the "copying" step of §III-D/§IV-B) and
//!   merge results back.
//! * [`gemm_ref`] — reference GEMM implementations (naive, blocked,
//!   thread-parallel) used as the correctness oracle for every generated
//!   kernel.
//! * [`error`] — forward-error norms used to accept or reject kernels,
//!   mirroring the paper's "testing" stage.

pub mod batch;
pub mod error;
pub mod gemm_ref;
pub mod layout;
pub mod matrix;
pub mod pack;
pub mod scalar;
pub mod workspace;

pub use batch::{BatchError, GemmBatch};
pub use error::{max_abs_diff, max_rel_error, verify_gemm, ErrorReport};
pub use layout::{BlockLayout, PackedDims};
pub use matrix::{Matrix, StorageOrder};
pub use pack::{merge_c, pack_operand, PackSpec};
pub use scalar::{Bf16, Scalar, StorageScalar, F16};
pub use workspace::{BatchWorkspace, Workspace, WorkspaceScalar};

/// Transpose operation applied to an input operand, `op(X)` in the BLAS
/// GEMM definition `C ← α·op(A)·op(B) + β·C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// `op(X) = X`
    No,
    /// `op(X) = Xᵀ`
    Yes,
}

impl Trans {
    /// Flip the operation.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }

    /// The single-letter tag used in BLAS routine names ("N"/"T").
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Trans::No => 'N',
            Trans::Yes => 'T',
        }
    }
}

/// One of the four GEMM multiplication types of §III: NN, NT, TN, TT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmType {
    /// Operation applied to `A`.
    pub ta: Trans,
    /// Operation applied to `B`.
    pub tb: Trans,
}

impl GemmType {
    pub const NN: GemmType = GemmType {
        ta: Trans::No,
        tb: Trans::No,
    };
    pub const NT: GemmType = GemmType {
        ta: Trans::No,
        tb: Trans::Yes,
    };
    pub const TN: GemmType = GemmType {
        ta: Trans::Yes,
        tb: Trans::No,
    };
    pub const TT: GemmType = GemmType {
        ta: Trans::Yes,
        tb: Trans::Yes,
    };

    /// All four types in the order the paper tabulates them (Table III).
    pub const ALL: [GemmType; 4] = [Self::NN, Self::NT, Self::TN, Self::TT];

    /// Two-letter tag, e.g. `"TN"`.
    #[must_use]
    pub fn tag(self) -> String {
        format!("{}{}", self.ta.letter(), self.tb.letter())
    }
}

impl std::fmt::Display for GemmType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.ta.letter(), self.tb.letter())
    }
}

impl std::str::FromStr for GemmType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "NN" => Ok(Self::NN),
            "NT" => Ok(Self::NT),
            "TN" => Ok(Self::TN),
            "TT" => Ok(Self::TT),
            other => Err(format!("unknown GEMM type {other:?}; expected NN/NT/TN/TT")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_type_round_trips_through_tag() {
        for ty in GemmType::ALL {
            let parsed: GemmType = ty.tag().parse().unwrap();
            assert_eq!(parsed, ty);
        }
    }

    #[test]
    fn gemm_type_rejects_garbage() {
        assert!("XY".parse::<GemmType>().is_err());
        assert!("".parse::<GemmType>().is_err());
    }

    #[test]
    fn trans_flip_is_involution() {
        assert_eq!(Trans::No.flipped().flipped(), Trans::No);
        assert_eq!(Trans::Yes.flipped(), Trans::No);
    }
}
