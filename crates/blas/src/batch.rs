//! The strided-batched GEMM descriptor.
//!
//! A batch is `batch` independent problems `C_i ← α·op(A_i)·op(B_i) + β·C_i`
//! sharing one shape, transpose pair, layout and scalar type, with the
//! per-problem matrices living at fixed strides inside three column-major
//! slabs. A stride of zero for `A` or `B` means the operand is *shared* by
//! every entry (one weight matrix against many activations) and is packed
//! exactly once; `C` entries must be disjoint, so `stride_c` has to cover
//! a full entry whenever `batch > 1`.

use crate::{GemmType, Trans};

/// Why a batch descriptor is unusable against the slabs it was given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError(pub String);

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid gemm batch: {}", self.0)
    }
}

impl std::error::Error for BatchError {}

/// One strided-batched GEMM call: the shared shape plus the three slab
/// strides. All matrices are column-major within their slab entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBatch {
    pub ty: GemmType,
    /// Number of independent problems.
    pub batch: usize,
    /// Shared problem shape: `C_i` is `m × n`, the inner dimension is `k`.
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Column-major leading dimensions of the *stored* matrices.
    pub lda: usize,
    pub ldb: usize,
    pub ldc: usize,
    /// Element distance between consecutive entries in each slab.
    /// `stride_a == 0` / `stride_b == 0` marks a shared operand.
    pub stride_a: usize,
    pub stride_b: usize,
    pub stride_c: usize,
}

impl GemmBatch {
    /// A densely packed batch: tight leading dimensions and strides equal
    /// to one entry's extent (shared-nothing).
    #[must_use]
    pub fn packed(ty: GemmType, batch: usize, m: usize, n: usize, k: usize) -> GemmBatch {
        let (ar, ac) = stored_dims(ty.ta, m, k);
        let (br, bc) = stored_dims(ty.tb, k, n);
        GemmBatch {
            ty,
            batch,
            m,
            n,
            k,
            lda: ar.max(1),
            ldb: br.max(1),
            ldc: m.max(1),
            stride_a: ar * ac,
            stride_b: br * bc,
            stride_c: m * n,
        }
    }

    /// Builder: share one `A` across every entry (`stride_a = 0`).
    #[must_use]
    pub fn with_shared_a(mut self) -> GemmBatch {
        self.stride_a = 0;
        self
    }

    /// Builder: share one `B` across every entry (`stride_b = 0`).
    #[must_use]
    pub fn with_shared_b(mut self) -> GemmBatch {
        self.stride_b = 0;
        self
    }

    /// Stored dimensions of one `A` entry (before the transpose op).
    #[must_use]
    pub fn a_dims(&self) -> (usize, usize) {
        stored_dims(self.ty.ta, self.m, self.k)
    }

    /// Stored dimensions of one `B` entry.
    #[must_use]
    pub fn b_dims(&self) -> (usize, usize) {
        stored_dims(self.ty.tb, self.k, self.n)
    }

    /// `true` when every entry reads the same `A`.
    #[must_use]
    pub fn shared_a(&self) -> bool {
        self.stride_a == 0
    }

    /// `true` when every entry reads the same `B`.
    #[must_use]
    pub fn shared_b(&self) -> bool {
        self.stride_b == 0
    }

    /// Column-major extent (elements spanned) of one `A` entry; zero for
    /// an empty entry.
    #[must_use]
    pub fn a_extent(&self) -> usize {
        extent(self.a_dims(), self.lda)
    }

    /// Extent of one `B` entry.
    #[must_use]
    pub fn b_extent(&self) -> usize {
        extent(self.b_dims(), self.ldb)
    }

    /// Extent of one `C` entry.
    #[must_use]
    pub fn c_extent(&self) -> usize {
        extent((self.m, self.n), self.ldc)
    }

    /// Slab offset of entry `i`'s `A`.
    #[must_use]
    pub fn a_offset(&self, i: usize) -> usize {
        i * self.stride_a
    }

    /// Slab offset of entry `i`'s `B`.
    #[must_use]
    pub fn b_offset(&self, i: usize) -> usize {
        i * self.stride_b
    }

    /// Slab offset of entry `i`'s `C`.
    #[must_use]
    pub fn c_offset(&self, i: usize) -> usize {
        i * self.stride_c
    }

    /// Minimum `C`-slab length the batch touches.
    #[must_use]
    pub fn c_required(&self) -> usize {
        required(self.batch, self.stride_c, self.c_extent())
    }

    /// Useful floating-point operations of the whole batch.
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64 * self.batch as f64
    }

    /// Validate the descriptor against the three slab lengths.
    ///
    /// # Errors
    /// Returns [`BatchError`] when a leading dimension is smaller than its
    /// stored row count, when `C` entries can overlap, or when a slab is
    /// shorter than the addresses the batch reaches.
    pub fn validate(&self, len_a: usize, len_b: usize, len_c: usize) -> Result<(), BatchError> {
        let bad = |msg: String| Err(BatchError(msg));
        // A batch with no entries or empty C performs no reads or writes
        // at all, so no slab storage is required. (k == 0 is NOT in this
        // set: it still scales C by beta.)
        if self.batch == 0 || self.m == 0 || self.n == 0 {
            return Ok(());
        }
        let (ar, _) = self.a_dims();
        let (br, _) = self.b_dims();
        if self.a_extent() > 0 && self.lda < ar {
            return bad(format!("lda {} < stored A rows {ar}", self.lda));
        }
        if self.b_extent() > 0 && self.ldb < br {
            return bad(format!("ldb {} < stored B rows {br}", self.ldb));
        }
        if self.c_extent() > 0 && self.ldc < self.m {
            return bad(format!("ldc {} < m {}", self.ldc, self.m));
        }
        if self.batch > 1 && self.c_extent() > 0 && self.stride_c < self.c_extent() {
            return bad(format!(
                "stride_c {} lets C entries overlap (extent {})",
                self.stride_c,
                self.c_extent()
            ));
        }
        for (name, len, need) in [
            (
                "A",
                len_a,
                required(self.batch, self.stride_a, self.a_extent()),
            ),
            (
                "B",
                len_b,
                required(self.batch, self.stride_b, self.b_extent()),
            ),
            ("C", len_c, self.c_required()),
        ] {
            if len < need {
                return bad(format!(
                    "{name} slab holds {len} elements, batch needs {need}"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for GemmBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x[{}x{}x{} {}]",
            self.batch, self.m, self.n, self.k, self.ty
        )
    }
}

/// Stored (rows, cols) of an operand whose op() result is `r × c`.
fn stored_dims(t: Trans, r: usize, c: usize) -> (usize, usize) {
    match t {
        Trans::No => (r, c),
        Trans::Yes => (c, r),
    }
}

/// Elements spanned by one column-major `(rows, cols)` entry with leading
/// dimension `ld`; zero when the entry is empty.
fn extent((rows, cols): (usize, usize), ld: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    }
}

/// Minimum slab length for `batch` entries of `extent` at `stride`.
fn required(batch: usize, stride: usize, extent: usize) -> usize {
    if batch == 0 || extent == 0 {
        0
    } else {
        stride * (batch - 1) + extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_descriptor_has_tight_strides() {
        let d = GemmBatch::packed(GemmType::NN, 4, 3, 5, 7);
        assert_eq!(d.a_dims(), (3, 7));
        assert_eq!(d.b_dims(), (7, 5));
        assert_eq!((d.lda, d.ldb, d.ldc), (3, 7, 3));
        assert_eq!((d.stride_a, d.stride_b, d.stride_c), (21, 35, 15));
        assert_eq!(d.c_required(), 4 * 15);
        d.validate(4 * 21, 4 * 35, 4 * 15).unwrap();
        assert_eq!(d.flops(), 2.0 * 3.0 * 5.0 * 7.0 * 4.0);
        assert_eq!(d.to_string(), "4x[3x5x7 NN]");
    }

    #[test]
    fn transposes_swap_stored_dims() {
        let d = GemmBatch::packed(GemmType::TT, 2, 3, 5, 7);
        assert_eq!(d.a_dims(), (7, 3));
        assert_eq!(d.b_dims(), (5, 7));
        assert_eq!(d.lda, 7);
        assert_eq!(d.ldb, 5);
    }

    #[test]
    fn shared_operands_need_only_one_entry() {
        let d = GemmBatch::packed(GemmType::NN, 8, 4, 4, 4).with_shared_a();
        assert!(d.shared_a());
        assert!(!d.shared_b());
        assert_eq!(d.a_offset(5), 0);
        d.validate(16, 8 * 16, 8 * 16).unwrap();
        assert!(d.validate(15, 8 * 16, 8 * 16).is_err());
    }

    #[test]
    fn overlapping_c_entries_are_rejected() {
        let mut d = GemmBatch::packed(GemmType::NN, 2, 4, 4, 4);
        d.stride_c = 10; // extent is 16
        assert!(d.validate(32, 32, 32).is_err());
        d.batch = 1; // a single entry cannot overlap itself
        d.validate(16, 16, 16).unwrap();
    }

    #[test]
    fn degenerate_shapes_need_no_storage() {
        for d in [
            GemmBatch::packed(GemmType::NN, 0, 4, 4, 4),
            GemmBatch::packed(GemmType::NN, 3, 0, 4, 4),
            GemmBatch::packed(GemmType::NN, 3, 4, 0, 4),
        ] {
            d.validate(0, 0, 0).unwrap();
        }
        // k == 0 still reads and writes C.
        let d = GemmBatch::packed(GemmType::NN, 2, 4, 4, 0);
        assert_eq!(d.a_extent(), 0);
        assert_eq!(d.c_extent(), 16);
        assert!(d.validate(0, 0, 16).is_err());
        d.validate(0, 0, 32).unwrap();
    }

    #[test]
    fn short_leading_dimensions_are_rejected() {
        let mut d = GemmBatch::packed(GemmType::NN, 1, 4, 4, 4);
        d.lda = 3;
        assert!(d.validate(16, 16, 16).is_err());
        let mut d = GemmBatch::packed(GemmType::NN, 1, 4, 4, 4);
        d.ldc = 2;
        assert!(d.validate(16, 16, 16).is_err());
    }

    #[test]
    fn padded_leading_dimensions_extend_the_extent() {
        let mut d = GemmBatch::packed(GemmType::NN, 2, 4, 4, 4);
        d.ldc = 6;
        d.stride_c = 6 * 4;
        assert_eq!(d.c_extent(), 6 * 3 + 4);
        assert_eq!(d.c_required(), 24 + 22);
        d.validate(32, 32, 46).unwrap();
    }
}
