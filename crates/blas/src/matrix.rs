//! Dense matrix container with explicit storage order and leading dimension.
//!
//! The GEMM routine layer of the paper (§IV-B) presents a column-major BLAS
//! interface, while the generated kernels consume row-major packed buffers;
//! this container supports both orders so every copy step is testable.

use crate::scalar::Scalar;
use crate::Trans;

/// Storage order of a [`Matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageOrder {
    /// Fortran/BLAS order: element `(i, j)` lives at `i + j·ld`.
    ColMajor,
    /// C order: element `(i, j)` lives at `i·ld + j`.
    RowMajor,
}

/// A dense `rows × cols` matrix backed by a `Vec<T>`.
///
/// The leading dimension `ld` may exceed the minor extent, which lets tests
/// exercise sub-matrix views the way BLAS callers do.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
    ld: usize,
    order: StorageOrder,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros in the given order with tight `ld`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize, order: StorageOrder) -> Self {
        Self::zeros_with_ld(rows, cols, Self::tight_ld(rows, cols, order), order)
    }

    /// A zero matrix with an explicit leading dimension.
    ///
    /// # Panics
    /// Panics if `ld` is smaller than the minor extent.
    #[must_use]
    pub fn zeros_with_ld(rows: usize, cols: usize, ld: usize, order: StorageOrder) -> Self {
        let min_ld = Self::tight_ld(rows, cols, order);
        assert!(
            ld >= min_ld,
            "leading dimension {ld} smaller than minimum {min_ld} for {rows}x{cols} {order:?}"
        );
        let len = match order {
            StorageOrder::ColMajor => ld * cols,
            StorageOrder::RowMajor => ld * rows,
        };
        Matrix {
            data: vec![T::ZERO; len.max(1)],
            rows,
            cols,
            ld,
            order,
        }
    }

    /// The smallest legal leading dimension for the shape/order.
    #[must_use]
    pub fn tight_ld(rows: usize, cols: usize, order: StorageOrder) -> usize {
        match order {
            StorageOrder::ColMajor => rows.max(1),
            StorageOrder::RowMajor => cols.max(1),
        }
    }

    /// Build a matrix from a function of the index, `m[(i,j)] = f(i, j)`.
    #[must_use]
    pub fn from_fn(
        rows: usize,
        cols: usize,
        order: StorageOrder,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let mut m = Self::zeros(rows, cols, order);
        for j in 0..cols {
            for i in 0..rows {
                *m.at_mut(i, j) = f(i, j);
            }
        }
        m
    }

    /// A deterministic, well-conditioned test pattern: values in
    /// `[-1, 1]` that differ across the whole matrix. Using a pattern
    /// rather than RNG keeps kernel-validation failures reproducible.
    #[must_use]
    pub fn test_pattern(rows: usize, cols: usize, order: StorageOrder, seed: u64) -> Self {
        Self::from_fn(rows, cols, order, |i, j| {
            // Weyl-like low-discrepancy sequence; cheap and deterministic.
            let x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
            let u = (x >> 11) as f64 / (1u64 << 53) as f64; // in [0,1)
            T::from_f64(2.0 * u - 1.0)
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Storage order.
    #[must_use]
    pub fn order(&self) -> StorageOrder {
        self.order
    }

    /// Flat offset of element `(i, j)`.
    #[inline]
    #[must_use]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        match self.order {
            StorageOrder::ColMajor => i + j * self.ld,
            StorageOrder::RowMajor => i * self.ld + j,
        }
    }

    /// Element `(i, j)`.
    #[inline]
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[self.offset(i, j)]
    }

    /// Mutable reference to element `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        let off = self.offset(i, j);
        &mut self.data[off]
    }

    /// Element of `op(self)` at `(i, j)`: transparently applies a transpose.
    #[inline]
    #[must_use]
    pub fn at_op(&self, op: Trans, i: usize, j: usize) -> T {
        match op {
            Trans::No => self.at(i, j),
            Trans::Yes => self.at(j, i),
        }
    }

    /// Dimensions of `op(self)` as `(rows, cols)`.
    #[must_use]
    pub fn dims_op(&self, op: Trans) -> (usize, usize) {
        match op {
            Trans::No => (self.rows, self.cols),
            Trans::Yes => (self.cols, self.rows),
        }
    }

    /// Raw storage (including any `ld` padding).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// An explicit out-of-place transpose preserving the storage order.
    #[must_use]
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, self.order, |i, j| self.at(j, i))
    }

    /// Convert to the other storage order (same logical contents).
    #[must_use]
    pub fn to_order(&self, order: StorageOrder) -> Self {
        Self::from_fn(self.rows, self.cols, order, |i, j| self.at(i, j))
    }

    /// `true` if every element is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        (0..self.cols).all(|j| (0..self.rows).all(|i| self.at(i, j).is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_follow_order() {
        let c = Matrix::<f64>::zeros(3, 2, StorageOrder::ColMajor);
        assert_eq!(c.offset(1, 1), 1 + 3);
        let r = Matrix::<f64>::zeros(3, 2, StorageOrder::RowMajor);
        assert_eq!(r.offset(1, 1), 2 + 1);
    }

    #[test]
    fn padded_ld_is_respected() {
        let mut m = Matrix::<f32>::zeros_with_ld(2, 2, 5, StorageOrder::ColMajor);
        *m.at_mut(1, 1) = 7.0;
        assert_eq!(m.as_slice().len(), 10);
        assert_eq!(m.as_slice()[1 + 5], 7.0);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn undersized_ld_panics() {
        let _ = Matrix::<f32>::zeros_with_ld(4, 2, 3, StorageOrder::ColMajor);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::<f64>::test_pattern(5, 7, StorageOrder::ColMajor, 3);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn at_op_applies_transpose() {
        let m = Matrix::<f64>::from_fn(2, 3, StorageOrder::RowMajor, |i, j| (10 * i + j) as f64);
        assert_eq!(m.at_op(Trans::No, 1, 2), 12.0);
        assert_eq!(m.at_op(Trans::Yes, 2, 1), 12.0);
        assert_eq!(m.dims_op(Trans::Yes), (3, 2));
    }

    #[test]
    fn order_conversion_preserves_contents() {
        let m = Matrix::<f32>::test_pattern(4, 6, StorageOrder::ColMajor, 1);
        let r = m.to_order(StorageOrder::RowMajor);
        for j in 0..6 {
            for i in 0..4 {
                assert_eq!(m.at(i, j), r.at(i, j));
            }
        }
    }

    #[test]
    fn test_pattern_is_seed_sensitive_and_bounded() {
        let a = Matrix::<f64>::test_pattern(8, 8, StorageOrder::ColMajor, 0);
        let b = Matrix::<f64>::test_pattern(8, 8, StorageOrder::ColMajor, 1);
        assert_ne!(a, b);
        for j in 0..8 {
            for i in 0..8 {
                assert!(a.at(i, j).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn zero_sized_matrices_are_legal() {
        let m = Matrix::<f64>::zeros(0, 0, StorageOrder::ColMajor);
        assert_eq!(m.rows(), 0);
        assert!(m.all_finite());
    }
}
