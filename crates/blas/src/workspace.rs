//! Grow-only staging-buffer pool for the routine layer.
//!
//! Every `TunedGemm::gemm` call needs three scratch buffers — packed A,
//! packed B and the padded staged C. Allocating them fresh per call puts
//! an `O(N²)` `vec![0; …]` (allocation **plus** full zero-fill) on the
//! serving hot path. A [`Workspace`] owns one grow-only buffer per role
//! and precision: buffers only ever expand, so a steady-state workload
//! (same shape bucket over and over, the common serving case) performs
//! zero staging allocations after the first call. The packers re-fill
//! interior and padding fringe on every call, so stale contents are
//! harmless.
//!
//! One pool per precision exists because a server worker serves both
//! SGEMM and DGEMM traffic through the same workspace.

use crate::scalar::Scalar;

/// The three staging buffers of one precision.
#[derive(Debug, Default, Clone)]
pub struct Pool<T> {
    pa: Vec<T>,
    pb: Vec<T>,
    c: Vec<T>,
    grows: u64,
}

impl<T: Scalar> Pool<T> {
    fn ensure(buf: &mut Vec<T>, len: usize, grows: &mut u64) {
        if buf.len() < len {
            buf.resize(len, T::ZERO);
            *grows += 1;
        }
    }

    /// Hand out the three buffers at exactly the requested lengths,
    /// growing backing storage only when a request exceeds every
    /// previous one.
    pub fn buffers(
        &mut self,
        len_a: usize,
        len_b: usize,
        len_c: usize,
    ) -> (&mut [T], &mut [T], &mut [T]) {
        let mut grows = 0;
        Self::ensure(&mut self.pa, len_a, &mut grows);
        Self::ensure(&mut self.pb, len_b, &mut grows);
        Self::ensure(&mut self.c, len_c, &mut grows);
        self.grows += grows;
        (
            &mut self.pa[..len_a],
            &mut self.pb[..len_b],
            &mut self.c[..len_c],
        )
    }

    fn held_bytes(&self) -> usize {
        (self.pa.capacity() + self.pb.capacity() + self.c.capacity()) * std::mem::size_of::<T>()
    }
}

/// Reusable staging buffers for both precisions, plus growth telemetry.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    f32: Pool<f32>,
    f64: Pool<f64>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// The pool for a precision (via the sealed [`WorkspaceScalar`]).
    pub fn pool<T: WorkspaceScalar>(&mut self) -> &mut Pool<T> {
        T::pool(self)
    }

    /// How many times any buffer had to grow. A steady-state serving
    /// loop must leave this constant between drains — the bench smoke
    /// gate asserts exactly that.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.f32.grows + self.f64.grows
    }

    /// Total bytes of staging storage currently held.
    #[must_use]
    pub fn held_bytes(&self) -> usize {
        self.f32.held_bytes() + self.f64.held_bytes()
    }
}

/// Staging buffers for one strided-batched GEMM call: one shared
/// workspace for operands packed once per batch (shared `A`/`B`), plus a
/// grow-only set of per-worker workspaces so batch entries executing in
/// parallel stage without contention. Like [`Workspace`], everything is
/// grow-only: a steady-state batched workload performs zero staging
/// allocations after warm-up, and [`BatchWorkspace::grows`] is the gate.
#[derive(Debug, Default, Clone)]
pub struct BatchWorkspace {
    shared: Workspace,
    workers: Vec<Workspace>,
}

impl BatchWorkspace {
    /// An empty batch workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> BatchWorkspace {
        BatchWorkspace::default()
    }

    /// Split into the shared workspace and at least `n_workers` worker
    /// workspaces (growing the worker set only when a call needs more
    /// than any previous one).
    pub fn parts(&mut self, n_workers: usize) -> (&mut Workspace, &mut [Workspace]) {
        let n = n_workers.max(1);
        if self.workers.len() < n {
            self.workers.resize_with(n, Workspace::new);
        }
        (&mut self.shared, &mut self.workers[..n])
    }

    /// Total growth events across the shared and worker workspaces.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.shared.grows() + self.workers.iter().map(Workspace::grows).sum::<u64>()
    }

    /// Total bytes of staging storage currently held.
    #[must_use]
    pub fn held_bytes(&self) -> usize {
        self.shared.held_bytes()
            + self
                .workers
                .iter()
                .map(Workspace::held_bytes)
                .sum::<usize>()
    }
}

/// Precisions that have a pool inside [`Workspace`]. Sealed: exactly the
/// two [`Scalar`] impls.
pub trait WorkspaceScalar: Scalar {
    /// Select this precision's pool.
    fn pool(ws: &mut Workspace) -> &mut Pool<Self>;
}

impl WorkspaceScalar for f32 {
    fn pool(ws: &mut Workspace) -> &mut Pool<f32> {
        &mut ws.f32
    }
}

impl WorkspaceScalar for f64 {
    fn pool(ws: &mut Workspace) -> &mut Pool<f64> {
        &mut ws.f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_have_requested_lengths() {
        let mut ws = Workspace::new();
        let (pa, pb, c) = ws.pool::<f64>().buffers(10, 20, 30);
        assert_eq!((pa.len(), pb.len(), c.len()), (10, 20, 30));
    }

    #[test]
    fn shrinking_then_growing_reuses_storage() {
        let mut ws = Workspace::new();
        ws.pool::<f32>().buffers(100, 100, 100);
        assert_eq!(ws.grows(), 3);
        let bytes = ws.held_bytes();
        // Smaller request: no growth, same storage.
        ws.pool::<f32>().buffers(10, 10, 10);
        assert_eq!(ws.grows(), 3);
        assert_eq!(ws.held_bytes(), bytes);
        // Equal request: still no growth.
        ws.pool::<f32>().buffers(100, 100, 100);
        assert_eq!(ws.grows(), 3);
        // Larger request grows again.
        ws.pool::<f32>().buffers(200, 100, 100);
        assert_eq!(ws.grows(), 4);
    }

    #[test]
    fn precisions_have_independent_pools() {
        let mut ws = Workspace::new();
        ws.pool::<f64>().buffers(50, 50, 50);
        let before = ws.held_bytes();
        ws.pool::<f32>().buffers(50, 50, 50);
        assert!(ws.held_bytes() > before);
        assert_eq!(ws.grows(), 6);
    }

    #[test]
    fn batch_workspace_grows_workers_monotonically() {
        let mut bws = BatchWorkspace::new();
        let (shared, workers) = bws.parts(3);
        shared.pool::<f32>().buffers(8, 8, 0);
        assert_eq!(workers.len(), 3);
        for w in workers.iter_mut() {
            w.pool::<f32>().buffers(4, 4, 4);
        }
        let grows = bws.grows();
        assert_eq!(grows, 2 + 3 * 3);
        assert!(bws.held_bytes() > 0);
        // Fewer workers: the set does not shrink, and re-requesting the
        // same buffer sizes causes no growth.
        let (_, workers) = bws.parts(2);
        assert_eq!(workers.len(), 2);
        for w in workers.iter_mut() {
            w.pool::<f32>().buffers(4, 4, 4);
        }
        assert_eq!(bws.grows(), grows);
        // More workers than ever before: the new ones start empty.
        let (_, workers) = bws.parts(4);
        assert_eq!(workers.len(), 4);
        assert_eq!(workers[3].grows(), 0);
    }

    #[test]
    fn stale_contents_are_exposed_not_rezeroed() {
        // The pool intentionally does NOT clear reused buffers — the
        // packers overwrite interior and fringe. This test pins that
        // contract so a future "helpful" clear would be caught.
        let mut ws = Workspace::new();
        {
            let (pa, _, _) = ws.pool::<f64>().buffers(4, 4, 4);
            pa.fill(7.0);
        }
        let (pa, _, _) = ws.pool::<f64>().buffers(4, 4, 4);
        assert_eq!(pa, [7.0; 4]);
    }
}
