//! Copy/transpose/pad routines between user matrices and packed buffers.
//!
//! This is the "copying of matrix data" of §III-D and §IV-B: before the
//! fast `AᵀB` kernel can run, each operand is copied (with transposition
//! where the GEMM type requires it) into a zero-padded staging buffer laid
//! out in one of the Fig. 3 layouts; after the kernel, the padded `C` tile
//! is merged back into the user matrix.
//!
//! The copy is `O(N²)` work against the kernel's `O(N³)`, which is exactly
//! why the paper's routine is slow at small `N` and amortised at large `N`
//! — the timing model in `clgemm-device` charges for these copies so the
//! reproduction shows the same crossover.

use crate::layout::{round_up, BlockLayout, PackedDims};
use crate::matrix::Matrix;
use crate::scalar::{Scalar, StorageScalar};
use crate::Trans;

/// Description of one operand-packing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackSpec {
    /// Transpose to apply while copying (`op` from the GEMM call combined
    /// with the kernel's fixed `Aᵀ·B` shape).
    pub trans: Trans,
    /// Target layout in the staging buffer.
    pub layout: BlockLayout,
    /// Width-direction blocking factor of the target (`Mwg` or `Nwg`).
    pub wwg: usize,
    /// Depth-direction blocking factor of the target (`Kwg`).
    pub kwg: usize,
}

/// Pack `op(X)` into a fresh zero-padded staging buffer.
///
/// The logical operand `op(X)` must have shape `k × width` — depth first,
/// exactly how the `AᵀB` kernel consumes both operands. Returns the buffer
/// and its padded dimensions.
///
/// # Panics
/// Panics if the logical dimensions of `op(X)` don't match `(k, width)`.
pub fn pack_operand<T: Scalar>(
    x: &Matrix<T>,
    spec: PackSpec,
    k: usize,
    width: usize,
) -> (Vec<T>, PackedDims) {
    let (xr, xc) = x.dims_op(spec.trans);
    assert_eq!(
        (xr, xc),
        (k, width),
        "operand shape mismatch: op(X) is {xr}x{xc}, expected {k}x{width}"
    );

    let kp = round_up(k, spec.kwg);
    let wp = round_up(width, spec.wwg);
    let dims = PackedDims::new(kp, wp, spec.wwg, spec.kwg)
        .expect("rounded dims are multiples of the blocking factors by construction");
    let mut buf = vec![T::ZERO; dims.len()];
    pack_into(x, spec, k, width, &mut buf, dims);
    (buf, dims)
}

/// Pack into a caller-provided buffer (used when staging buffers are
/// reused across calls). Padding cells are written with zero.
pub fn pack_into<T: Scalar>(
    x: &Matrix<T>,
    spec: PackSpec,
    k: usize,
    width: usize,
    buf: &mut [T],
    dims: PackedDims,
) {
    assert_eq!(buf.len(), dims.len(), "staging buffer size mismatch");
    // Walk the *destination* in its linear order for each block so the
    // write stream is sequential — the same optimisation a real packing
    // routine performs.
    for p in 0..dims.k {
        for w in 0..dims.width {
            let v = if p < k && w < width {
                x.at_op(spec.trans, p, w)
            } else {
                T::ZERO
            };
            buf[spec.layout.offset(p, w, dims)] = v;
        }
    }
}

/// Linear strides of the *source* read stream: `op(X)[p][w]` lives at
/// `p · sp + w · sw` in `x`'s backing storage. Lets the fast packers walk
/// the source without calling `at_op` (bounds check + branch) per cell.
fn source_strides<T: Scalar>(x: &Matrix<T>, trans: Trans) -> (usize, usize) {
    use crate::matrix::StorageOrder;
    match (trans, x.order()) {
        (Trans::No, StorageOrder::ColMajor) | (Trans::Yes, StorageOrder::RowMajor) => (1, x.ld()),
        (Trans::No, StorageOrder::RowMajor) | (Trans::Yes, StorageOrder::ColMajor) => (x.ld(), 1),
    }
}

/// Copy one destination panel whose element `(pi, wi)` lives at
/// `pi · wwg + wi`, reading `op(X)` starting at logical `(p0, w0)`.
/// `klim × wlim` is the interior extent; the rest of the panel is the
/// zero padding fringe and is the only part that gets zero-filled.
#[allow(clippy::too_many_arguments)] // flat hot-path helper
fn pack_panel<T: Scalar>(
    panel: &mut [T],
    wwg: usize,
    rows: usize,
    src: &[T],
    base: usize,
    sp: usize,
    sw: usize,
    klim: usize,
    wlim: usize,
) {
    if sp == 1 && klim > 1 {
        // Source is contiguous along the depth axis: walk `p` innermost
        // so the reads stream, at the cost of a small (`wwg`-element)
        // stride on the cache-resident destination panel.
        for wi in 0..wlim {
            let src_col = &src[base + wi * sw..][..klim];
            for (pi, v) in src_col.iter().enumerate() {
                panel[pi * wwg + wi] = *v;
            }
        }
    } else {
        // Source is contiguous (or no better than strided) along the
        // width axis: walk `wi` innermost so the destination writes are
        // sequential.
        for pi in 0..klim {
            let row_base = base + pi * sp;
            let dst = &mut panel[pi * wwg..][..wlim];
            for (wi, d) in dst.iter_mut().enumerate() {
                *d = src[row_base + wi * sw];
            }
        }
    }
    // Zero only the padding fringe: trailing columns of interior rows,
    // then whole trailing rows. Reused workspace buffers carry stale
    // data, and the fringe must read as zero — the kernel's dot products
    // run over the padded depth and the padded A/B cells contribute
    // `stale · x` terms to interior C elements otherwise.
    for pi in 0..klim {
        panel[pi * wwg + wlim..pi * wwg + wwg].fill(T::ZERO);
    }
    panel[klim * wwg..rows * wwg].fill(T::ZERO);
}

/// Parallel, layout-specialised version of [`pack_into`]: identical
/// output, but the traversal is chosen from the source's storage order,
/// offset arithmetic is hoisted out of the inner loops, zero-fill is
/// restricted to the padding fringe, and contiguous destination blocks
/// are distributed over threads.
pub fn pack_into_par<T: Scalar>(
    x: &Matrix<T>,
    spec: PackSpec,
    k: usize,
    width: usize,
    buf: &mut [T],
    dims: PackedDims,
) {
    assert_eq!(buf.len(), dims.len(), "staging buffer size mismatch");
    let (xr, xc) = x.dims_op(spec.trans);
    assert_eq!(
        (xr, xc),
        (k, width),
        "operand shape mismatch: op(X) is {xr}x{xc}, expected {k}x{width}"
    );
    let (sp, sw) = source_strides(x, spec.trans);
    let src = x.as_slice();
    match spec.layout {
        // One K × Wwg column-block is one contiguous destination span.
        BlockLayout::Cbl => {
            clgemm_shim::par::par_chunks_mut(buf, dims.k * dims.wwg, |cb, block| {
                let w0 = cb * dims.wwg;
                let wlim = width.saturating_sub(w0).min(dims.wwg);
                pack_panel(
                    block,
                    dims.wwg,
                    dims.k,
                    src,
                    w0 * sw,
                    sp,
                    sw,
                    k.min(dims.k),
                    wlim,
                );
            });
        }
        // One Kwg × W row-block is contiguous; its Kwg × Wwg sub-blocks
        // are packed panels.
        BlockLayout::Rbl => {
            clgemm_shim::par::par_chunks_mut(buf, dims.kwg * dims.width, |rb, block| {
                let p0 = rb * dims.kwg;
                let klim = k.saturating_sub(p0).min(dims.kwg);
                for (cb, panel) in block.chunks_mut(dims.kwg * dims.wwg).enumerate() {
                    let w0 = cb * dims.wwg;
                    let wlim = width.saturating_sub(w0).min(dims.wwg);
                    pack_panel(
                        panel,
                        dims.wwg,
                        dims.kwg,
                        src,
                        p0 * sp + w0 * sw,
                        sp,
                        sw,
                        klim,
                        wlim,
                    );
                }
            });
        }
        // Plain row-major: each depth row is contiguous. Threads take
        // runs of rows; a transposed-source row is gathered with a
        // hoisted stride instead of per-element index math.
        BlockLayout::RowMajor => {
            clgemm_shim::par::par_chunks_mut(buf, dims.width, |p, row| {
                if p >= k {
                    row.fill(T::ZERO);
                    return;
                }
                let row_base = p * sp;
                if sw == 1 {
                    row[..width].copy_from_slice(&src[row_base..][..width]);
                } else {
                    for (w, d) in row[..width].iter_mut().enumerate() {
                        *d = src[row_base + w * sw];
                    }
                }
                row[width..].fill(T::ZERO);
            });
        }
    }
}

/// Read one element of a packed operand back out (test/debug helper).
#[must_use]
pub fn packed_at<T: Scalar>(
    buf: &[T],
    layout: BlockLayout,
    dims: PackedDims,
    p: usize,
    w: usize,
) -> T {
    buf[layout.offset(p, w, dims)]
}

/// Unpack a packed operand back into a dense `k × width` matrix, dropping
/// padding (the inverse of [`pack_operand`]; used by property tests).
#[must_use]
pub fn unpack_operand<T: Scalar>(
    buf: &[T],
    layout: BlockLayout,
    dims: PackedDims,
    k: usize,
    width: usize,
    order: crate::StorageOrder,
) -> Matrix<T> {
    Matrix::from_fn(k, width, order, |p, w| buf[layout.offset(p, w, dims)])
}

/// Dimensions of the padded `C` staging buffer for a `m × n` result with
/// work-group factors `mwg × nwg`. `C` is staged row-major (the kernel's
/// natural order); the merge step converts back to the user's order.
#[must_use]
pub fn c_staging_dims(m: usize, n: usize, mwg: usize, nwg: usize) -> (usize, usize) {
    (round_up(m, mwg), round_up(n, nwg))
}

/// Stage the user's `C` into a padded row-major buffer (needed when
/// `β ≠ 0`, because the kernel reads `C` to apply `β·C`).
///
/// Only the padding fringe is zero-filled; the interior is written once
/// from the user matrix. The fringe must read as zero so the padded
/// region the kernel computes (`mad(α, 0, β·fringe)`) stays finite and
/// deterministic — with β = 0 a stale NaN/Inf fringe cell would turn the
/// padded output into NaN (`0 · NaN`; see the NaN-propagation note in
/// the executor's `beta_zero_ignores_initial_c` test), and property
/// tests compare staged buffers of the reuse and fresh-allocation paths.
#[must_use]
pub fn stage_c<T: Scalar>(c: &Matrix<T>, mwg: usize, nwg: usize) -> Vec<T> {
    let (mp, np) = c_staging_dims(c.rows(), c.cols(), mwg, nwg);
    let mut buf = Vec::with_capacity(mp * np);
    // Every cell is written exactly once: interior row, its fringe
    // columns, then the whole-row fringe at the bottom.
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            buf.push(c.at(i, j));
        }
        buf.resize((i + 1) * np, T::ZERO);
    }
    buf.resize(mp * np, T::ZERO);
    buf
}

/// [`stage_c`] into a caller-provided (reused) buffer, in parallel. The
/// interior copy is storage-order-aware and cache-blocked; the zero-fill
/// touches only the padding fringe.
pub fn stage_c_into_par<T: Scalar>(c: &Matrix<T>, mwg: usize, nwg: usize, buf: &mut [T]) {
    let (mp, np) = c_staging_dims(c.rows(), c.cols(), mwg, nwg);
    assert_eq!(buf.len(), mp * np, "staged C buffer size mismatch");
    let (m, n) = (c.rows(), c.cols());
    // Row-tiles of the destination are contiguous chunks; each thread
    // fills its tiles' interiors and fringes.
    clgemm_shim::par::par_chunks_mut(buf, C_TILE * np, |t, rows| {
        let i0 = t * C_TILE;
        let tile_rows = rows.len() / np.max(1);
        let ilim = m.saturating_sub(i0).min(tile_rows);
        stage_tile(c, i0, ilim, rows, np);
        // Fringe: trailing columns of interior rows, then whole padding rows.
        for ti in 0..ilim {
            rows[ti * np + n..(ti + 1) * np].fill(T::ZERO);
        }
        rows[ilim * np..tile_rows * np].fill(T::ZERO);
    });
}

/// Row-tile height for the cache-blocked staged-C copies.
const C_TILE: usize = 32;
/// Column-tile width: bounds the staged-row working set while the
/// column-major user matrix is walked with unit stride.
const C_JTILE: usize = 128;

/// Copy user rows `i0 .. i0+ilim` into `ilim` staged row-major rows of
/// stride `np`. The loop nest follows the user matrix's storage order: a
/// row-major source streams row by row; a column-major one keeps its
/// unit-stride direction (`i`) innermost and relies on the small row
/// tile staying cache-resident.
fn stage_tile<T: Scalar>(c: &Matrix<T>, i0: usize, ilim: usize, rows: &mut [T], np: usize) {
    if ilim == 0 {
        // All-padding tile: nothing to copy, and the source slicing
        // below would index past the user matrix.
        return;
    }
    let n = c.cols();
    match c.order() {
        crate::StorageOrder::RowMajor => {
            let ld = c.ld();
            let src = c.as_slice();
            for ti in 0..ilim {
                rows[ti * np..ti * np + n].copy_from_slice(&src[(i0 + ti) * ld..][..n]);
            }
        }
        crate::StorageOrder::ColMajor => {
            let ld = c.ld();
            let src = c.as_slice();
            // Unit-stride writes along each staged row; the strided
            // column reads stay cache-resident because only C_JTILE
            // distinct source columns are live per pass.
            for j0 in (0..n).step_by(C_JTILE) {
                let jlim = (j0 + C_JTILE).min(n);
                for ti in 0..ilim {
                    let row = &mut rows[ti * np + j0..ti * np + jlim];
                    for (jj, cell) in row.iter_mut().enumerate() {
                        *cell = src[i0 + ti + (j0 + jj) * ld];
                    }
                }
            }
        }
    }
}

/// [`stage_c`] into a caller-provided (reused) buffer, serially.
///
/// Identical output to [`stage_c_into_par`]. Below the routine layer's
/// serial-pack threshold the fork/join cost of the parallel stager
/// exceeds the copy itself, so small problems route through this
/// single-pass version instead.
pub fn stage_c_into<T: Scalar>(c: &Matrix<T>, mwg: usize, nwg: usize, buf: &mut [T]) {
    let (m, n) = (c.rows(), c.cols());
    let (mp, np) = c_staging_dims(m, n, mwg, nwg);
    assert_eq!(buf.len(), mp * np, "staged C buffer size mismatch");
    for i in 0..m {
        let row = &mut buf[i * np..(i + 1) * np];
        for (j, cell) in row[..n].iter_mut().enumerate() {
            *cell = c.at(i, j);
        }
        row[n..].fill(T::ZERO);
    }
    buf[m * np..].fill(T::ZERO);
}

/// Pack `op(X)` from a raw column-major slice entry into a staging
/// buffer, widening each element into the accumulation type.
///
/// This is the batched path's convert-on-pack: a strided-batched call
/// hands slab entries (`rows × cols`, leading dimension `ld`) rather
/// than [`Matrix`] values, and `f16`/`bf16` storage widens to `f32`
/// here so the microkernel runs its usual `f32`/`f64` FMA chain.
/// Widening is exact, so the packed values equal what packing an
/// already-widened matrix would produce — the bit-exactness contract
/// of the property suite. The packing itself is serial: batched calls
/// parallelise across entries, not within one pack.
///
/// # Panics
/// Panics if `op(X)`'s dimensions don't match `(k, width)` or the
/// buffer doesn't match `dims`.
#[allow(clippy::too_many_arguments)] // mirrors pack_into plus the slice geometry
pub fn pack_slice_widen<S: StorageScalar>(
    src: &[S],
    rows: usize,
    cols: usize,
    ld: usize,
    spec: PackSpec,
    k: usize,
    width: usize,
    buf: &mut [S::Acc],
    dims: PackedDims,
) {
    assert_eq!(buf.len(), dims.len(), "staging buffer size mismatch");
    let (xr, xc) = match spec.trans {
        Trans::No => (rows, cols),
        Trans::Yes => (cols, rows),
    };
    assert_eq!(
        (xr, xc),
        (k, width),
        "operand shape mismatch: op(X) is {xr}x{xc}, expected {k}x{width}"
    );
    for p in 0..dims.k {
        for w in 0..dims.width {
            let v = if p < k && w < width {
                let (i, j) = match spec.trans {
                    Trans::No => (p, w),
                    Trans::Yes => (w, p),
                };
                src[j * ld + i].widen()
            } else {
                <S::Acc as Scalar>::ZERO
            };
            buf[spec.layout.offset(p, w, dims)] = v;
        }
    }
}

/// Stage one column-major `C` slab entry into a padded row-major buffer,
/// widening into the accumulation type (the slice/batched counterpart
/// of [`stage_c_into`]).
pub fn stage_slice_widen<S: StorageScalar>(
    src: &[S],
    m: usize,
    n: usize,
    ld: usize,
    mwg: usize,
    nwg: usize,
    buf: &mut [S::Acc],
) {
    let (mp, np) = c_staging_dims(m, n, mwg, nwg);
    assert_eq!(buf.len(), mp * np, "staged C buffer size mismatch");
    for i in 0..m {
        let row = &mut buf[i * np..(i + 1) * np];
        for (j, cell) in row[..n].iter_mut().enumerate() {
            *cell = src[j * ld + i].widen();
        }
        row[n..].fill(<S::Acc as Scalar>::ZERO);
    }
    buf[m * np..].fill(<S::Acc as Scalar>::ZERO);
}

/// Merge a padded row-major staged result back into a column-major `C`
/// slab entry, narrowing each element with round-to-nearest-even — the
/// single narrowing step of the mixed-precision contract.
pub fn merge_slice_narrow<S: StorageScalar>(
    staged: &[S::Acc],
    mwg: usize,
    nwg: usize,
    dst: &mut [S],
    m: usize,
    n: usize,
    ld: usize,
) {
    let (mp, np) = c_staging_dims(m, n, mwg, nwg);
    assert_eq!(staged.len(), mp * np, "staged C buffer size mismatch");
    for j in 0..n {
        let col = &mut dst[j * ld..j * ld + m];
        for (i, cell) in col.iter_mut().enumerate() {
            *cell = S::narrow(staged[i * np + j]);
        }
    }
}

/// Merge the kernel's padded row-major `C` result back into the user
/// matrix, discarding padding rows/columns.
pub fn merge_c<T: Scalar>(staged: &[T], mwg: usize, nwg: usize, c: &mut Matrix<T>) {
    let (mp, np) = c_staging_dims(c.rows(), c.cols(), mwg, nwg);
    assert_eq!(staged.len(), mp * np, "staged C buffer size mismatch");
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            *c.at_mut(i, j) = staged[i * np + j];
        }
    }
}

/// Parallel, storage-order-aware version of [`merge_c`]: identical
/// result. Work splits over the *user* matrix's major axis so each
/// thread writes a disjoint contiguous region of `c`.
pub fn merge_c_par<T: Scalar>(staged: &[T], mwg: usize, nwg: usize, c: &mut Matrix<T>) {
    let (m, n) = (c.rows(), c.cols());
    let (mp, np) = c_staging_dims(m, n, mwg, nwg);
    assert_eq!(staged.len(), mp * np, "staged C buffer size mismatch");
    let ld = c.ld();
    match c.order() {
        crate::StorageOrder::RowMajor => {
            // User rows are contiguous (stride ld ≥ n): one row per chunk.
            clgemm_shim::par::par_chunks_mut(c.as_mut_slice(), ld, |i, row| {
                if i < m {
                    row[..n].copy_from_slice(&staged[i * np..i * np + n]);
                }
            });
        }
        crate::StorageOrder::ColMajor => {
            // User columns are contiguous: column-tiles per chunk, with
            // the staged source walked in row-tiles so its strided reads
            // stay cache-resident.
            clgemm_shim::par::par_chunks_mut(c.as_mut_slice(), C_JTILE * ld, |t, cols| {
                let j0 = t * C_JTILE;
                let jlim = n.saturating_sub(j0).min(cols.len() / ld.max(1));
                for i0 in (0..m).step_by(C_TILE) {
                    let ilim = (i0 + C_TILE).min(m);
                    for tj in 0..jlim {
                        let src_col = j0 + tj;
                        let col = &mut cols[tj * ld..tj * ld + m];
                        for (i, cell) in col[i0..ilim].iter_mut().enumerate() {
                            *cell = staged[(i0 + i) * np + src_col];
                        }
                    }
                }
            });
        }
    }
}

/// Number of scalar memory operations (reads + writes) the packing of one
/// `k × width` operand performs, used by the routine-level timing model to
/// charge the copy overhead.
#[must_use]
pub fn pack_mem_ops(k: usize, width: usize, kwg: usize, wwg: usize) -> usize {
    // Read k*width source elements, write the padded destination.
    k * width + round_up(k, kwg) * round_up(width, wwg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageOrder;

    #[test]
    fn pack_then_unpack_is_identity_without_transpose() {
        let x = Matrix::<f64>::test_pattern(12, 10, StorageOrder::ColMajor, 7);
        for layout in BlockLayout::ALL {
            let spec = PackSpec {
                trans: Trans::No,
                layout,
                wwg: 4,
                kwg: 3,
            };
            let (buf, dims) = pack_operand(&x, spec, 12, 10);
            let back = unpack_operand(&buf, layout, dims, 12, 10, StorageOrder::ColMajor);
            assert_eq!(back, x, "layout {layout}");
        }
    }

    #[test]
    fn pack_applies_transpose() {
        let x = Matrix::<f32>::test_pattern(5, 9, StorageOrder::RowMajor, 1);
        let spec = PackSpec {
            trans: Trans::Yes,
            layout: BlockLayout::Cbl,
            wwg: 5,
            kwg: 3,
        };
        // op(X) = Xᵀ is 9x5: depth 9, width 5.
        let (buf, dims) = pack_operand(&x, spec, 9, 5);
        for p in 0..9 {
            for w in 0..5 {
                assert_eq!(packed_at(&buf, spec.layout, dims, p, w), x.at(w, p));
            }
        }
    }

    #[test]
    fn padding_cells_are_zero() {
        let x = Matrix::<f64>::test_pattern(5, 6, StorageOrder::ColMajor, 0);
        let spec = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::Rbl,
            wwg: 4,
            kwg: 4,
        };
        let (buf, dims) = pack_operand(&x, spec, 5, 6);
        assert_eq!((dims.k, dims.width), (8, 8));
        for p in 0..8 {
            for w in 0..8 {
                let v = packed_at(&buf, spec.layout, dims, p, w);
                if p >= 5 || w >= 6 {
                    assert_eq!(v, 0.0, "padding at ({p},{w}) not zero");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "operand shape mismatch")]
    fn wrong_shape_is_rejected() {
        let x = Matrix::<f64>::zeros(4, 4, StorageOrder::ColMajor);
        let spec = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::RowMajor,
            wwg: 2,
            kwg: 2,
        };
        let _ = pack_operand(&x, spec, 5, 4);
    }

    #[test]
    fn pack_into_par_matches_oracle_over_all_shapes() {
        for order in [StorageOrder::ColMajor, StorageOrder::RowMajor] {
            for trans in [Trans::No, Trans::Yes] {
                for layout in BlockLayout::ALL {
                    // Odd source shape against blocking 4×3, with a padded ld.
                    let x = Matrix::<f64>::test_pattern(13, 11, order, 5);
                    let (k, width) = match trans {
                        Trans::No => (13, 11),
                        Trans::Yes => (11, 13),
                    };
                    let spec = PackSpec {
                        trans,
                        layout,
                        wwg: 4,
                        kwg: 3,
                    };
                    let (oracle, dims) = pack_operand(&x, spec, k, width);
                    // Seed the reused buffer with garbage to prove the
                    // fringe is re-zeroed.
                    let mut buf = vec![f64::NAN; dims.len()];
                    pack_into_par(&x, spec, k, width, &mut buf, dims);
                    assert_eq!(buf, oracle, "{order:?} {trans:?} {layout}");
                }
            }
        }
    }

    #[test]
    fn stage_c_into_par_matches_oracle_and_rezeros_fringe() {
        for order in [StorageOrder::ColMajor, StorageOrder::RowMajor] {
            let c = Matrix::<f32>::test_pattern(37, 41, order, 9);
            let oracle = stage_c(&c, 16, 16);
            let mut buf = vec![f32::INFINITY; oracle.len()];
            stage_c_into_par(&c, 16, 16, &mut buf);
            assert_eq!(buf, oracle, "{order:?}");
        }
    }

    #[test]
    fn stage_c_into_par_handles_all_padding_row_tiles() {
        // Large Mwg pads far past the user rows, so whole row-tiles of the
        // staged buffer contain no user data at all.
        for order in [StorageOrder::ColMajor, StorageOrder::RowMajor] {
            let c = Matrix::<f64>::test_pattern(5, 7, order, 4);
            let oracle = stage_c(&c, 128, 16);
            let mut buf = vec![f64::NAN; oracle.len()];
            stage_c_into_par(&c, 128, 16, &mut buf);
            assert_eq!(buf, oracle, "{order:?}");
        }
    }

    #[test]
    fn merge_c_par_matches_oracle() {
        for order in [StorageOrder::ColMajor, StorageOrder::RowMajor] {
            let src = Matrix::<f64>::test_pattern(37, 29, order, 3);
            let staged = stage_c(&src, 8, 8);
            let mut a = Matrix::<f64>::zeros(37, 29, order);
            let mut b = Matrix::<f64>::zeros(37, 29, order);
            merge_c(&staged, 8, 8, &mut a);
            merge_c_par(&staged, 8, 8, &mut b);
            assert_eq!(a, b, "{order:?}");
            assert_eq!(a, src);
        }
    }

    #[test]
    fn merge_c_par_respects_padded_ld() {
        let src = Matrix::<f64>::test_pattern(10, 6, StorageOrder::ColMajor, 1);
        let staged = stage_c(&src, 4, 4);
        let mut out = Matrix::<f64>::zeros_with_ld(10, 6, 17, StorageOrder::ColMajor);
        merge_c_par(&staged, 4, 4, &mut out);
        for j in 0..6 {
            for i in 0..10 {
                assert_eq!(out.at(i, j), src.at(i, j));
            }
        }
    }

    #[test]
    fn stage_and_merge_c_round_trip() {
        let c = Matrix::<f64>::test_pattern(7, 5, StorageOrder::ColMajor, 2);
        let staged = stage_c(&c, 4, 4);
        assert_eq!(staged.len(), 8 * 8);
        let mut out = Matrix::<f64>::zeros(7, 5, StorageOrder::ColMajor);
        merge_c(&staged, 4, 4, &mut out);
        assert_eq!(out, c);
    }

    #[test]
    fn exact_multiple_sizes_need_no_padding() {
        let (mp, np) = c_staging_dims(64, 32, 16, 8);
        assert_eq!((mp, np), (64, 32));
    }

    #[test]
    fn pack_mem_ops_counts_padding_writes() {
        assert_eq!(pack_mem_ops(4, 4, 4, 4), 32);
        // 5x5 source padded to 8x8: 25 reads + 64 writes.
        assert_eq!(pack_mem_ops(5, 5, 4, 4), 25 + 64);
    }

    #[test]
    fn stage_c_into_matches_parallel_stager() {
        for order in [StorageOrder::ColMajor, StorageOrder::RowMajor] {
            let c = Matrix::<f32>::test_pattern(37, 41, order, 9);
            let oracle = stage_c(&c, 16, 16);
            let mut buf = vec![f32::NAN; oracle.len()];
            stage_c_into(&c, 16, 16, &mut buf);
            assert_eq!(buf, oracle, "{order:?}");
        }
    }

    /// A column-major slab entry plus an equal-valued [`Matrix`], with a
    /// padded leading dimension so the stride handling is exercised.
    fn slice_fixture(rows: usize, cols: usize, ld: usize, seed: u64) -> (Vec<f64>, Matrix<f64>) {
        let m = Matrix::<f64>::test_pattern(rows, cols, StorageOrder::ColMajor, seed);
        let mut src = vec![f64::NAN; if cols == 0 { 0 } else { ld * (cols - 1) + rows }];
        for j in 0..cols {
            for i in 0..rows {
                src[j * ld + i] = m.at(i, j);
            }
        }
        (src, m)
    }

    #[test]
    fn pack_slice_widen_matches_pack_operand_for_identity_widening() {
        for trans in [Trans::No, Trans::Yes] {
            for layout in BlockLayout::ALL {
                let (src, m) = slice_fixture(13, 11, 19, 5);
                let (k, width) = match trans {
                    Trans::No => (13, 11),
                    Trans::Yes => (11, 13),
                };
                let spec = PackSpec {
                    trans,
                    layout,
                    wwg: 4,
                    kwg: 3,
                };
                let (oracle, dims) = pack_operand(&m, spec, k, width);
                let mut buf = vec![f64::NAN; dims.len()];
                pack_slice_widen(&src, 13, 11, 19, spec, k, width, &mut buf, dims);
                assert_eq!(buf, oracle, "{trans:?} {layout}");
            }
        }
    }

    #[test]
    fn pack_slice_widen_converts_half_storage_exactly() {
        use crate::scalar::F16;
        // A half slab packs to the same f32 buffer as packing the widened
        // matrix directly: widening is exact, so convert-on-pack cannot
        // perturb the bit-exactness contract.
        let (rows, cols, ld) = (7, 6, 9);
        let mut src = vec![F16::narrow(0.0); ld * (cols - 1) + rows];
        let wide = Matrix::<f32>::from_fn(rows, cols, StorageOrder::ColMajor, |i, j| {
            let h = F16::narrow((i * cols + j) as f32 * 0.25 - 3.0);
            h.widen()
        });
        for j in 0..cols {
            for i in 0..rows {
                src[j * ld + i] = F16::narrow(wide.at(i, j));
            }
        }
        let spec = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::Cbl,
            wwg: 4,
            kwg: 4,
        };
        let (oracle, dims) = pack_operand(&wide, spec, rows, cols);
        let mut buf = vec![f32::NAN; dims.len()];
        pack_slice_widen(&src, rows, cols, ld, spec, rows, cols, &mut buf, dims);
        assert_eq!(buf, oracle);
    }

    #[test]
    fn stage_slice_widen_matches_stage_c() {
        let (src, m) = slice_fixture(37, 29, 41, 3);
        let oracle = stage_c(&m, 16, 8);
        let mut buf = vec![f64::NAN; oracle.len()];
        stage_slice_widen(&src, 37, 29, 41, 16, 8, &mut buf);
        assert_eq!(buf, oracle);
    }

    #[test]
    fn merge_slice_narrow_round_trips_and_skips_ld_padding() {
        let (src, m) = slice_fixture(10, 6, 17, 1);
        let staged = stage_c(&m, 4, 4);
        let mut out = vec![f64::NAN; src.len()];
        merge_slice_narrow::<f64>(&staged, 4, 4, &mut out, 10, 6, 17);
        for j in 0..6 {
            for i in 0..10 {
                assert_eq!(out[j * 17 + i], m.at(i, j));
            }
            // Padding rows between columns stay untouched.
            for i in 10..17.min(out.len() - j * 17) {
                assert!(out[j * 17 + i].is_nan(), "ld gap overwritten at ({i},{j})");
            }
        }
    }
}
