//! Copy/transpose/pad routines between user matrices and packed buffers.
//!
//! This is the "copying of matrix data" of §III-D and §IV-B: before the
//! fast `AᵀB` kernel can run, each operand is copied (with transposition
//! where the GEMM type requires it) into a zero-padded staging buffer laid
//! out in one of the Fig. 3 layouts; after the kernel, the padded `C` tile
//! is merged back into the user matrix.
//!
//! The copy is `O(N²)` work against the kernel's `O(N³)`, which is exactly
//! why the paper's routine is slow at small `N` and amortised at large `N`
//! — the timing model in `clgemm-device` charges for these copies so the
//! reproduction shows the same crossover.

use crate::layout::{round_up, BlockLayout, PackedDims};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::Trans;

/// Description of one operand-packing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackSpec {
    /// Transpose to apply while copying (`op` from the GEMM call combined
    /// with the kernel's fixed `Aᵀ·B` shape).
    pub trans: Trans,
    /// Target layout in the staging buffer.
    pub layout: BlockLayout,
    /// Width-direction blocking factor of the target (`Mwg` or `Nwg`).
    pub wwg: usize,
    /// Depth-direction blocking factor of the target (`Kwg`).
    pub kwg: usize,
}

/// Pack `op(X)` into a fresh zero-padded staging buffer.
///
/// The logical operand `op(X)` must have shape `k × width` — depth first,
/// exactly how the `AᵀB` kernel consumes both operands. Returns the buffer
/// and its padded dimensions.
///
/// # Panics
/// Panics if the logical dimensions of `op(X)` don't match `(k, width)`.
pub fn pack_operand<T: Scalar>(
    x: &Matrix<T>,
    spec: PackSpec,
    k: usize,
    width: usize,
) -> (Vec<T>, PackedDims) {
    let (xr, xc) = x.dims_op(spec.trans);
    assert_eq!(
        (xr, xc),
        (k, width),
        "operand shape mismatch: op(X) is {xr}x{xc}, expected {k}x{width}"
    );

    let kp = round_up(k, spec.kwg);
    let wp = round_up(width, spec.wwg);
    let dims = PackedDims::new(kp, wp, spec.wwg, spec.kwg)
        .expect("rounded dims are multiples of the blocking factors by construction");
    let mut buf = vec![T::ZERO; dims.len()];
    pack_into(x, spec, k, width, &mut buf, dims);
    (buf, dims)
}

/// Pack into a caller-provided buffer (used when staging buffers are
/// reused across calls). Padding cells are written with zero.
pub fn pack_into<T: Scalar>(
    x: &Matrix<T>,
    spec: PackSpec,
    k: usize,
    width: usize,
    buf: &mut [T],
    dims: PackedDims,
) {
    assert_eq!(buf.len(), dims.len(), "staging buffer size mismatch");
    // Walk the *destination* in its linear order for each block so the
    // write stream is sequential — the same optimisation a real packing
    // routine performs.
    for p in 0..dims.k {
        for w in 0..dims.width {
            let v = if p < k && w < width {
                x.at_op(spec.trans, p, w)
            } else {
                T::ZERO
            };
            buf[spec.layout.offset(p, w, dims)] = v;
        }
    }
}

/// Read one element of a packed operand back out (test/debug helper).
#[must_use]
pub fn packed_at<T: Scalar>(
    buf: &[T],
    layout: BlockLayout,
    dims: PackedDims,
    p: usize,
    w: usize,
) -> T {
    buf[layout.offset(p, w, dims)]
}

/// Unpack a packed operand back into a dense `k × width` matrix, dropping
/// padding (the inverse of [`pack_operand`]; used by property tests).
#[must_use]
pub fn unpack_operand<T: Scalar>(
    buf: &[T],
    layout: BlockLayout,
    dims: PackedDims,
    k: usize,
    width: usize,
    order: crate::StorageOrder,
) -> Matrix<T> {
    Matrix::from_fn(k, width, order, |p, w| buf[layout.offset(p, w, dims)])
}

/// Dimensions of the padded `C` staging buffer for a `m × n` result with
/// work-group factors `mwg × nwg`. `C` is staged row-major (the kernel's
/// natural order); the merge step converts back to the user's order.
#[must_use]
pub fn c_staging_dims(m: usize, n: usize, mwg: usize, nwg: usize) -> (usize, usize) {
    (round_up(m, mwg), round_up(n, nwg))
}

/// Stage the user's `C` into a padded row-major buffer (needed when
/// `β ≠ 0`, because the kernel reads `C` to apply `β·C`).
#[must_use]
pub fn stage_c<T: Scalar>(c: &Matrix<T>, mwg: usize, nwg: usize) -> Vec<T> {
    let (mp, np) = c_staging_dims(c.rows(), c.cols(), mwg, nwg);
    let mut buf = vec![T::ZERO; mp * np];
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            buf[i * np + j] = c.at(i, j);
        }
    }
    buf
}

/// Merge the kernel's padded row-major `C` result back into the user
/// matrix, discarding padding rows/columns.
pub fn merge_c<T: Scalar>(staged: &[T], mwg: usize, nwg: usize, c: &mut Matrix<T>) {
    let (mp, np) = c_staging_dims(c.rows(), c.cols(), mwg, nwg);
    assert_eq!(staged.len(), mp * np, "staged C buffer size mismatch");
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            *c.at_mut(i, j) = staged[i * np + j];
        }
    }
}

/// Number of scalar memory operations (reads + writes) the packing of one
/// `k × width` operand performs, used by the routine-level timing model to
/// charge the copy overhead.
#[must_use]
pub fn pack_mem_ops(k: usize, width: usize, kwg: usize, wwg: usize) -> usize {
    // Read k*width source elements, write the padded destination.
    k * width + round_up(k, kwg) * round_up(width, wwg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageOrder;

    #[test]
    fn pack_then_unpack_is_identity_without_transpose() {
        let x = Matrix::<f64>::test_pattern(12, 10, StorageOrder::ColMajor, 7);
        for layout in BlockLayout::ALL {
            let spec = PackSpec {
                trans: Trans::No,
                layout,
                wwg: 4,
                kwg: 3,
            };
            let (buf, dims) = pack_operand(&x, spec, 12, 10);
            let back = unpack_operand(&buf, layout, dims, 12, 10, StorageOrder::ColMajor);
            assert_eq!(back, x, "layout {layout}");
        }
    }

    #[test]
    fn pack_applies_transpose() {
        let x = Matrix::<f32>::test_pattern(5, 9, StorageOrder::RowMajor, 1);
        let spec = PackSpec {
            trans: Trans::Yes,
            layout: BlockLayout::Cbl,
            wwg: 5,
            kwg: 3,
        };
        // op(X) = Xᵀ is 9x5: depth 9, width 5.
        let (buf, dims) = pack_operand(&x, spec, 9, 5);
        for p in 0..9 {
            for w in 0..5 {
                assert_eq!(packed_at(&buf, spec.layout, dims, p, w), x.at(w, p));
            }
        }
    }

    #[test]
    fn padding_cells_are_zero() {
        let x = Matrix::<f64>::test_pattern(5, 6, StorageOrder::ColMajor, 0);
        let spec = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::Rbl,
            wwg: 4,
            kwg: 4,
        };
        let (buf, dims) = pack_operand(&x, spec, 5, 6);
        assert_eq!((dims.k, dims.width), (8, 8));
        for p in 0..8 {
            for w in 0..8 {
                let v = packed_at(&buf, spec.layout, dims, p, w);
                if p >= 5 || w >= 6 {
                    assert_eq!(v, 0.0, "padding at ({p},{w}) not zero");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "operand shape mismatch")]
    fn wrong_shape_is_rejected() {
        let x = Matrix::<f64>::zeros(4, 4, StorageOrder::ColMajor);
        let spec = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::RowMajor,
            wwg: 2,
            kwg: 2,
        };
        let _ = pack_operand(&x, spec, 5, 4);
    }

    #[test]
    fn stage_and_merge_c_round_trip() {
        let c = Matrix::<f64>::test_pattern(7, 5, StorageOrder::ColMajor, 2);
        let staged = stage_c(&c, 4, 4);
        assert_eq!(staged.len(), 8 * 8);
        let mut out = Matrix::<f64>::zeros(7, 5, StorageOrder::ColMajor);
        merge_c(&staged, 4, 4, &mut out);
        assert_eq!(out, c);
    }

    #[test]
    fn exact_multiple_sizes_need_no_padding() {
        let (mp, np) = c_staging_dims(64, 32, 16, 8);
        assert_eq!((mp, np), (64, 32));
    }

    #[test]
    fn pack_mem_ops_counts_padding_writes() {
        assert_eq!(pack_mem_ops(4, 4, 4, 4), 32);
        // 5x5 source padded to 8x8: 25 reads + 64 writes.
        assert_eq!(pack_mem_ops(5, 5, 4, 4), 25 + 64);
    }
}
