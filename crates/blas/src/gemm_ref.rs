//! Reference GEMM implementations used as the correctness oracle.
//!
//! Every kernel the code generator emits is checked against these (the
//! paper's "testing" stage: kernels that fail testing are not counted).
//! Three implementations of the same contract are provided so they can
//! cross-check each other:
//!
//! * [`gemm_naive`] — the textbook triple loop; trusted by inspection.
//! * [`gemm_blocked`] — cache-blocked serial version; fast enough for
//!   medium problem sizes in tests.
//! * [`gemm_parallel`] — thread-parallel over row panels; used for the
//!   large validation runs of the integration suite.
//!
//! All compute `C ← α·op(A)·op(B) + β·C` on [`Matrix`] operands of any
//! storage order.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::GemmType;

/// Validate GEMM operand shapes; returns `(m, n, k)`.
///
/// # Panics
/// Panics with a descriptive message if the shapes are inconsistent —
/// mirrors the argument checks of the reference BLAS.
pub fn check_shapes<T: Scalar>(
    ty: GemmType,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &Matrix<T>,
) -> (usize, usize, usize) {
    let (am, ak) = a.dims_op(ty.ta);
    let (bk, bn) = b.dims_op(ty.tb);
    assert_eq!(
        ak, bk,
        "inner dimensions disagree: op(A) is {am}x{ak}, op(B) is {bk}x{bn}"
    );
    assert_eq!(
        (c.rows(), c.cols()),
        (am, bn),
        "C is {}x{}, expected {am}x{bn}",
        c.rows(),
        c.cols()
    );
    (am, bn, ak)
}

/// Textbook triple-loop GEMM. `O(MNK)` with no blocking; the slowest and
/// most obviously correct implementation.
pub fn gemm_naive<T: Scalar>(
    ty: GemmType,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n, k) = check_shapes(ty, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc = a.at_op(ty.ta, i, p).mul_add(b.at_op(ty.tb, p, j), acc);
            }
            let old = c.at(i, j);
            *c.at_mut(i, j) = alpha * acc + beta * old;
        }
    }
}

/// Cache-blocked serial GEMM. Accumulates in `f64`-free native precision
/// with the same FMA contract as the naive version but visits operands in
/// `BS × BS` tiles for locality.
pub fn gemm_blocked<T: Scalar>(
    ty: GemmType,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    const BS: usize = 64;
    let (m, n, k) = check_shapes(ty, a, b, c);

    // Scale C by beta up front, then accumulate alpha * op(A)op(B).
    for i in 0..m {
        for j in 0..n {
            let old = c.at(i, j);
            *c.at_mut(i, j) = beta * old;
        }
    }
    for jj in (0..n).step_by(BS) {
        let jmax = (jj + BS).min(n);
        for pp in (0..k).step_by(BS) {
            let pmax = (pp + BS).min(k);
            for ii in (0..m).step_by(BS) {
                let imax = (ii + BS).min(m);
                for i in ii..imax {
                    for j in jj..jmax {
                        let mut acc = T::ZERO;
                        for p in pp..pmax {
                            acc = a.at_op(ty.ta, i, p).mul_add(b.at_op(ty.tb, p, j), acc);
                        }
                        let old = c.at(i, j);
                        *c.at_mut(i, j) = alpha.mul_add(acc, old);
                    }
                }
            }
        }
    }
}

/// Thread-parallel GEMM: operands are first normalised into contiguous
/// row-major panels, then row blocks of `C` are computed in parallel.
pub fn gemm_parallel<T: Scalar>(
    ty: GemmType,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n, k) = check_shapes(ty, a, b, c);
    if m == 0 || n == 0 {
        return;
    }

    // Normalise to op-applied row-major copies so the hot loop is a pure
    // slice walk (Matrix::at_op per element would dominate otherwise).
    let at: Vec<T> = (0..m * k)
        .map(|idx| a.at_op(ty.ta, idx / k, idx % k))
        .collect();
    let bt: Vec<T> = (0..k * n)
        .map(|idx| b.at_op(ty.tb, idx / n, idx % n))
        .collect();

    let mut out = vec![T::ZERO; m * n];
    clgemm_shim::par::par_chunks_mut(&mut out, n, |i, row| {
        let arow = &at[i * k..(i + 1) * k];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == T::ZERO {
                continue;
            }
            let brow = &bt[p * n..(p + 1) * n];
            for (dst, &bval) in row.iter_mut().zip(brow) {
                *dst = aval.mul_add(bval, *dst);
            }
        }
    });

    for i in 0..m {
        for j in 0..n {
            let old = c.at(i, j);
            *c.at_mut(i, j) = alpha.mul_add(out[i * n + j], beta * old);
        }
    }
}

/// Convenience: number of floating-point operations a GEMM of the given
/// shape performs (the 2·M·N·K the paper's GFlop/s numbers are based on).
#[must_use]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StorageOrder, Trans};

    fn operands(
        ty: GemmType,
        m: usize,
        n: usize,
        k: usize,
        order: StorageOrder,
    ) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let (ar, ac) = match ty.ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match ty.tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        (
            Matrix::test_pattern(ar, ac, order, 1),
            Matrix::test_pattern(br, bc, order, 2),
            Matrix::test_pattern(m, n, order, 3),
        )
    }

    #[test]
    fn identity_times_identity() {
        let eye =
            Matrix::<f64>::from_fn(
                4,
                4,
                StorageOrder::ColMajor,
                |i, j| {
                    if i == j {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
        let mut c = Matrix::<f64>::zeros(4, 4, StorageOrder::ColMajor);
        gemm_naive(GemmType::NN, 1.0, &eye, &eye, 0.0, &mut c);
        assert_eq!(c, eye);
    }

    #[test]
    fn all_three_impls_agree_for_all_types() {
        for ty in GemmType::ALL {
            let (a, b, c0) = operands(ty, 17, 13, 9, StorageOrder::ColMajor);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            let mut c3 = c0.clone();
            gemm_naive(ty, 0.75, &a, &b, -0.5, &mut c1);
            gemm_blocked(ty, 0.75, &a, &b, -0.5, &mut c2);
            gemm_parallel(ty, 0.75, &a, &b, -0.5, &mut c3);
            for i in 0..17 {
                for j in 0..13 {
                    assert!(
                        (c1.at(i, j) - c2.at(i, j)).abs() < 1e-12,
                        "{ty} blocked mismatch"
                    );
                    assert!(
                        (c1.at(i, j) - c3.at(i, j)).abs() < 1e-12,
                        "{ty} parallel mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_even_garbage_c() {
        // beta = 0 must not propagate pre-existing values.
        let (a, b, _) = operands(GemmType::NN, 5, 5, 5, StorageOrder::RowMajor);
        let mut c = Matrix::from_fn(5, 5, StorageOrder::RowMajor, |_, _| 1e300);
        gemm_naive(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.all_finite());
    }

    #[test]
    fn alpha_zero_scales_c_only() {
        let (a, b, c0) = operands(GemmType::TN, 6, 4, 3, StorageOrder::ColMajor);
        let mut c = c0.clone();
        gemm_blocked(GemmType::TN, 0.0, &a, &b, 2.0, &mut c);
        for i in 0..6 {
            for j in 0..4 {
                assert!((c.at(i, j) - 2.0 * c0.at(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn row_and_col_major_inputs_give_same_answer() {
        let ty = GemmType::NT;
        let (ac, bc, cc) = operands(ty, 8, 7, 6, StorageOrder::ColMajor);
        let ar = ac.to_order(StorageOrder::RowMajor);
        let br = bc.to_order(StorageOrder::RowMajor);
        let mut c1 = cc.clone();
        let mut c2 = cc.to_order(StorageOrder::RowMajor);
        gemm_naive(ty, 1.0, &ac, &bc, 1.0, &mut c1);
        gemm_naive(ty, 1.0, &ar, &br, 1.0, &mut c2);
        for i in 0..8 {
            for j in 0..7 {
                assert!((c1.at(i, j) - c2.at(i, j)).abs() < 1e-14);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 4, StorageOrder::ColMajor);
        let b = Matrix::<f64>::zeros(5, 2, StorageOrder::ColMajor);
        let mut c = Matrix::<f64>::zeros(3, 2, StorageOrder::ColMajor);
        gemm_naive(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
        assert_eq!(gemm_flops(0, 3, 4), 0.0);
    }

    #[test]
    fn empty_k_means_pure_beta_scaling() {
        let a = Matrix::<f64>::zeros(3, 0, StorageOrder::ColMajor);
        let b = Matrix::<f64>::zeros(0, 2, StorageOrder::ColMajor);
        let mut c = Matrix::from_fn(3, 2, StorageOrder::ColMajor, |i, j| (i + j) as f64);
        let expect = c.clone();
        gemm_parallel(GemmType::NN, 5.0, &a, &b, 1.0, &mut c);
        assert_eq!(c, expect);
    }
}
