//! A small JSON document model: value type, strict recursive-descent
//! parser, compact and pretty writers.
//!
//! Replaces `serde_json` for the workspace's persistence needs
//! (`KernelRepo` files, experiment dumps). Objects preserve insertion
//! order so written files diff cleanly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64` (integers round-trip exactly up
    /// to 2^53, far beyond any quantity this workspace stores).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Why a document failed to parse or a lookup failed to convert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description including the byte offset.
    pub msg: String,
}

impl JsonError {
    /// Construct from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { msg: msg.into() })
}

impl Json {
    /// Build an object from pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as a typed error on absence.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .map_or_else(|| err(format!("missing field {key:?}")), Ok)
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of a number (must be finite and integral).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Like [`Json::as_f64`] but with a typed error.
    pub fn expect_f64(&self) -> Result<f64, JsonError> {
        self.as_f64()
            .ok_or_else(|| JsonError::new("expected a number"))
    }

    /// Like [`Json::as_usize`] but with a typed error.
    pub fn expect_usize(&self) -> Result<usize, JsonError> {
        self.as_usize()
            .ok_or_else(|| JsonError::new("expected a non-negative integer"))
    }

    /// Like [`Json::as_bool`] but with a typed error.
    pub fn expect_bool(&self) -> Result<bool, JsonError> {
        self.as_bool()
            .ok_or_else(|| JsonError::new("expected a boolean"))
    }

    /// Like [`Json::as_str`] but with a typed error.
    pub fn expect_str(&self) -> Result<&str, JsonError> {
        self.as_str()
            .ok_or_else(|| JsonError::new("expected a string"))
    }

    /// Like [`Json::as_arr`] but with a typed error.
    pub fn expect_arr(&self) -> Result<&[Json], JsonError> {
        self.as_arr()
            .ok_or_else(|| JsonError::new("expected an array"))
    }

    /// Like [`Json::as_obj`] but with a typed error.
    pub fn expect_obj(&self) -> Result<&[(String, Json)], JsonError> {
        self.as_obj()
            .ok_or_else(|| JsonError::new("expected an object"))
    }

    /// Parse a document. The whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

// ---------------------------------------------------------------- parser

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
        msg: format!("non-utf8 number at byte {start}"),
    })?;
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => err(format!("invalid number {text:?} at byte {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError {
                                msg: format!("bad \\u escape at byte {}", *pos),
                            })?;
                        // Surrogate pairs are not needed for this
                        // workspace's ASCII-dominated payloads; reject
                        // them rather than decode them wrongly.
                        let ch = char::from_u32(hex).ok_or_else(|| JsonError {
                            msg: format!("surrogate \\u escape at byte {}", *pos),
                        })?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or_else(|| JsonError {
                    msg: format!("truncated utf8 at byte {}", *pos),
                })?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| JsonError {
                    msg: format!("invalid utf8 at byte {}", *pos),
                })?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------- writer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(v: f64, out: &mut String) {
    if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{:?}` is the shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    }
}

fn write_value(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => write_seq(items.iter().map(|i| (None, i)), b"[]", indent, depth, out),
        Json::Obj(pairs) => write_seq(
            pairs.iter().map(|(k, v)| (Some(k.as_str()), v)),
            b"{}",
            indent,
            depth,
            out,
        ),
    }
}

fn write_seq<'a>(
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Json)>,
    brackets: &[u8; 2],
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    out.push(brackets[0] as char);
    let n = items.len();
    for (i, (key, v)) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        if let Some(k) = key {
            write_escaped(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(v, indent, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if indent.is_some() && n > 0 {
        out.push('\n');
        out.push_str(&" ".repeat(indent.unwrap_or(0) * depth));
    }
    out.push(brackets[1] as char);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::from("tahiti/DGEMM")),
            ("gflops", Json::from(689.5)),
            ("count", Json::from(12usize)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("sweep", Json::Arr(vec![Json::from(1.0), Json::from(2.5)])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"k": "a\"b\\c\ndAµ"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "a\"b\\c\ndAµ");
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "12notanumber",
            "\"open",
            "{}extra",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::from(9_007_199_254_740_992usize - 1);
        let text = v.to_string_compact();
        assert_eq!(text, "9007199254740991");
        assert_eq!(
            Json::parse(&text).unwrap().as_usize(),
            Some(9_007_199_254_740_991)
        );
    }

    #[test]
    fn object_lookup_and_typed_errors() {
        let v = Json::parse(r#"{"a": 1, "b": [true]}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_usize(), Some(1));
        assert!(v.field("missing").is_err());
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("a").unwrap().as_str(), None);
    }
}
