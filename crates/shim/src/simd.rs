//! Host SIMD capability detection for the fast GEMM microkernels.
//!
//! The paper's central finding is that the register-tile shape must
//! follow the processor's vector width (§III-B, Tables 2–4). For the
//! *host* fast path that means the FMA lane count of the CPU the process
//! actually runs on — not the tuned (device) blocking, which was chosen
//! for a GPU. This module answers exactly one question: how many f32/f64
//! FMA lanes does one vector register of this machine hold?
//!
//! Detection never changes numerics. The host microkernels are scalar
//! Rust whose FMA chains the compiler vectorises across *independent*
//! accumulators only, so the lane width informs tile-shape selection and
//! nothing else; results stay bit-for-bit identical across levels.
//!
//! `CLGEMM_SIMD=scalar|sse2|neon|avx2|avx512` overrides the probe —
//! useful for benchmarking a lower tier or reproducing another host's
//! tile selection. Unknown values are ignored in favour of the hardware
//! probe.

use std::sync::OnceLock;

/// The instruction-set tiers the tile selector distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// No usable vector unit: one FMA lane.
    Scalar,
    /// 128-bit x86 vectors (baseline on `x86_64`).
    Sse2,
    /// 128-bit ARM vectors (baseline on `aarch64`).
    Neon,
    /// 256-bit x86 vectors with FMA.
    Avx2,
    /// 512-bit x86 vectors (AVX-512F).
    Avx512,
}

impl SimdLevel {
    /// Every tier, narrowest first.
    pub const ALL: [SimdLevel; 5] = [
        SimdLevel::Scalar,
        SimdLevel::Sse2,
        SimdLevel::Neon,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ];

    /// The level of the running host, probed once and cached. Honours
    /// the `CLGEMM_SIMD` override.
    #[must_use]
    pub fn detect() -> SimdLevel {
        static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
        *LEVEL.get_or_init(SimdLevel::probe)
    }

    /// One uncached probe: environment override first, then hardware.
    #[must_use]
    pub fn probe() -> SimdLevel {
        if let Ok(tag) = std::env::var("CLGEMM_SIMD") {
            if let Ok(level) = tag.parse() {
                return level;
            }
        }
        SimdLevel::probe_hardware()
    }

    #[cfg(target_arch = "x86_64")]
    fn probe_hardware() -> SimdLevel {
        if std::arch::is_x86_feature_detected!("avx512f") {
            SimdLevel::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            SimdLevel::Avx2
        } else {
            // SSE2 is architecturally guaranteed on x86_64.
            SimdLevel::Sse2
        }
    }

    #[cfg(target_arch = "aarch64")]
    fn probe_hardware() -> SimdLevel {
        // NEON is architecturally guaranteed on aarch64.
        SimdLevel::Neon
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn probe_hardware() -> SimdLevel {
        SimdLevel::Scalar
    }

    /// `f32` FMA lanes per vector register.
    #[must_use]
    pub fn lanes_f32(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 | SimdLevel::Neon => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    /// `f64` FMA lanes per vector register.
    #[must_use]
    pub fn lanes_f64(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 | SimdLevel::Neon => 2,
            SimdLevel::Avx2 => 4,
            SimdLevel::Avx512 => 8,
        }
    }

    /// Lowercase tag, parseable back via [`std::str::FromStr`].
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Neon => "neon",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for SimdLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdLevel::Scalar),
            "sse2" => Ok(SimdLevel::Sse2),
            "neon" => Ok(SimdLevel::Neon),
            "avx2" => Ok(SimdLevel::Avx2),
            "avx512" | "avx512f" => Ok(SimdLevel::Avx512),
            other => Err(format!(
                "unknown SIMD level {other:?}; expected scalar/sse2/neon/avx2/avx512"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_double_with_register_width() {
        for level in SimdLevel::ALL {
            if level == SimdLevel::Scalar {
                assert_eq!((level.lanes_f32(), level.lanes_f64()), (1, 1));
            } else {
                assert_eq!(
                    level.lanes_f32(),
                    2 * level.lanes_f64(),
                    "{level}: f32 lanes must be twice the f64 lanes"
                );
            }
            assert!(level.lanes_f32().is_power_of_two());
            assert!(level.lanes_f64().is_power_of_two());
        }
    }

    #[test]
    fn tags_round_trip() {
        for level in SimdLevel::ALL {
            let parsed: SimdLevel = level.tag().parse().unwrap();
            assert_eq!(parsed, level);
        }
        assert!("mmx".parse::<SimdLevel>().is_err());
    }

    #[test]
    fn detect_is_stable_and_probe_agrees_without_override() {
        let a = SimdLevel::detect();
        let b = SimdLevel::detect();
        assert_eq!(a, b, "cached detection must be stable");
        // The probe itself must return something the host can run.
        let probed = SimdLevel::probe();
        assert!(SimdLevel::ALL.contains(&probed));
    }
}
