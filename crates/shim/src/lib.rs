//! Zero-dependency stand-ins for the external crates the workspace would
//! normally pull from crates.io.
//!
//! The build environment for this repository is fully offline: no
//! registry, no vendored sources. Rather than gating functionality behind
//! missing dependencies, this crate provides the small slices of
//! `serde_json`, `rand`, `rayon` and `criterion` the workspace actually
//! uses:
//!
//! * [`json`] — a JSON value type with a strict parser and a
//!   pretty-printer (replaces `serde_json` for persistence).
//! * [`rng`] — a seedable xoshiro256** generator with the handful of
//!   sampling helpers the search strategies and property tests need
//!   (replaces `rand` / `proptest`'s case generation).
//! * [`par`] — scoped-thread data-parallel helpers (replaces the
//!   `rayon` `par_iter`/`par_chunks_mut` call sites).
//! * [`bench`] — a minimal wall-clock benchmark harness with median
//!   reporting (replaces `criterion` for the `harness = false` benches).
//! * [`simd`] — host CPU vector-width detection (the tiny slice of
//!   `std::arch` feature probing the tile selector needs, with a
//!   `CLGEMM_SIMD` override for reproducibility).
//!
//! Everything here is std-only and deterministic where the replaced crate
//! was deterministic.

pub mod bench;
pub mod json;
pub mod par;
pub mod rng;
pub mod simd;

pub use json::{Json, JsonError};
pub use rng::Rng;
