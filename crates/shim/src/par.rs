//! Scoped-thread data-parallel helpers.
//!
//! Replaces the two rayon shapes the workspace uses: an indexed parallel
//! map over a slice (`par_iter().enumerate().map(...)`) and parallel
//! mutation of fixed-size output chunks (`par_chunks_mut`). Work is
//! statically partitioned into contiguous per-thread ranges — the
//! workloads here (per-candidate timing-model evaluations, per-row GEMM
//! accumulation) are uniform enough that stealing would buy nothing.

use std::num::NonZeroUsize;

/// How many worker threads `jobs` uniform jobs should fan out to: one
/// per core, never more than there are jobs, and at least one. Callers
/// that pre-size per-worker state (e.g. batched-GEMM workspaces) use
/// this to know the fan-out before spawning.
pub fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    cores.min(jobs).max(1)
}

/// Parallel indexed for-each over mutable items with per-worker mutable
/// state.
///
/// `items` is split into one contiguous range per worker (at most
/// `states.len()` workers) and each worker calls `f(index, item, state)`
/// for every item in its range, with exclusive access to both the item
/// and its own state slot. This is the batched-GEMM harness: each item
/// is one batch entry's output slice, each state a reusable
/// `Workspace`-style arena, so a steady-state batch loop allocates
/// nothing while entries still execute in parallel.
///
/// # Panics
/// Panics if `states` is empty while `items` is not.
pub fn par_items_mut<I, S, F>(items: &mut [I], states: &mut [S], f: F)
where
    I: Send,
    S: Send,
    F: Fn(usize, &mut I, &mut S) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    assert!(!states.is_empty(), "par_items_mut needs at least one state");
    let threads = worker_count(n).min(states.len());
    if threads <= 1 {
        let state = &mut states[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, state);
        }
        return;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|s| {
        for ((t, chunk), state) in items.chunks_mut(per).enumerate().zip(states.iter_mut()) {
            let f = &f;
            s.spawn(move || {
                let base = t * per;
                for (i, item) in chunk.iter_mut().enumerate() {
                    f(base + i, item, state);
                }
            });
        }
    });
}

/// Parallel indexed map: `out[i] = f(i, &items[i])`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, v)| f(i, v)).collect();
    }
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slots) in out.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = t * per;
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + i, &items[base + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every slot filled"))
        .collect()
}

/// Parallel map over contiguous index ranges: `0..n` is split into one
/// range per worker and `f(range)` runs once per worker. Results come
/// back in range order, so folds over them are deterministic regardless
/// of thread scheduling. Unlike [`par_map`] the caller keeps per-thread
/// state alive for a whole range (e.g. a reusable register arena), which
/// is what the VM's parallel work-group launch needs.
pub fn par_range_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = worker_count(n);
    if threads <= 1 {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + per).min(n);
            let f = &f;
            handles.push(s.spawn(move || f(start..end)));
            start = end;
        }
        for h in handles {
            out.push(Some(h.join().expect("par_range_map worker panicked")));
        }
    });
    out.into_iter().map(|v| v.expect("worker result")).collect()
}

/// Parallel mutation of consecutive `chunk`-sized pieces of `data`;
/// `f(chunk_index, chunk)` like `par_chunks_mut().enumerate()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = data.len().div_ceil(chunk);
    let threads = worker_count(n_chunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let chunks_per_thread = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per_thread * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = first_chunk;
            first_chunk += chunks_per_thread;
            let f = &f;
            s.spawn(move || {
                for (i, c) in head.chunks_mut(chunk).enumerate() {
                    f(base + i, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<usize> = (0..1037).collect();
        let seq: Vec<usize> = items.iter().enumerate().map(|(i, v)| i * 3 + v).collect();
        assert_eq!(par_map(&items, |i, v| i * 3 + v), seq);
        assert!(par_map::<usize, usize, _>(&[], |_, v| *v).is_empty());
    }

    #[test]
    fn par_range_map_covers_all_indices_in_order() {
        let parts = par_range_map(1003, |r| r.clone());
        let mut flat: Vec<usize> = Vec::new();
        for r in parts {
            flat.extend(r);
        }
        assert_eq!(flat, (0..1003).collect::<Vec<_>>());
        assert!(par_range_map(0, |r| r.len()).is_empty());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 7, |idx, c| {
            for v in c.iter_mut() {
                *v += idx + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7 + 1, "element {i}");
        }
    }

    #[test]
    fn par_items_mut_visits_every_item_once_with_worker_state() {
        // Each item records (index it saw, owning state's tag); every
        // item must be visited exactly once and the per-state counts
        // must sum to n.
        let n = 997;
        let mut items: Vec<(usize, Option<usize>)> = (0..n).map(|_| (0, None)).collect();
        let mut states: Vec<(usize, usize)> = (0..4).map(|t| (t, 0)).collect();
        par_items_mut(&mut items, &mut states, |i, item, (tag, count)| {
            item.0 += i + 1;
            item.1 = Some(*tag);
            *count += 1;
        });
        let total: usize = states.iter().map(|(_, c)| c).sum();
        assert_eq!(total, n);
        for (i, (v, owner)) in items.iter().enumerate() {
            assert_eq!(*v, i + 1, "item {i} visited once with its own index");
            assert!(owner.is_some(), "item {i} owned by some worker");
        }
        // Zero items with an empty state set is a no-op, not a panic.
        par_items_mut(
            &mut [] as &mut [u8],
            &mut [] as &mut [u8],
            |_, _, _| unreachable!(),
        );
    }

    #[test]
    fn par_items_mut_uses_at_most_the_given_states() {
        let mut items = vec![0u8; 100];
        let mut states = vec![0usize; 1];
        par_items_mut(&mut items, &mut states, |_, item, c| {
            *item = 1;
            *c += 1;
        });
        assert_eq!(states[0], 100);
        assert!(items.iter().all(|&v| v == 1));
        assert!(worker_count(8) >= 1);
    }

    #[test]
    fn chunk_larger_than_data_is_one_chunk() {
        let mut data = vec![1u32; 5];
        par_chunks_mut(&mut data, 100, |idx, c| {
            assert_eq!(idx, 0);
            for v in c.iter_mut() {
                *v = 9;
            }
        });
        assert_eq!(data, vec![9; 5]);
    }
}
