//! Scoped-thread data-parallel helpers.
//!
//! Replaces the two rayon shapes the workspace uses: an indexed parallel
//! map over a slice (`par_iter().enumerate().map(...)`) and parallel
//! mutation of fixed-size output chunks (`par_chunks_mut`). Work is
//! statically partitioned into contiguous per-thread ranges — the
//! workloads here (per-candidate timing-model evaluations, per-row GEMM
//! accumulation) are uniform enough that stealing would buy nothing.

use std::num::NonZeroUsize;

fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    cores.min(jobs).max(1)
}

/// Parallel indexed map: `out[i] = f(i, &items[i])`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, v)| f(i, v)).collect();
    }
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slots) in out.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = t * per;
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + i, &items[base + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every slot filled"))
        .collect()
}

/// Parallel map over contiguous index ranges: `0..n` is split into one
/// range per worker and `f(range)` runs once per worker. Results come
/// back in range order, so folds over them are deterministic regardless
/// of thread scheduling. Unlike [`par_map`] the caller keeps per-thread
/// state alive for a whole range (e.g. a reusable register arena), which
/// is what the VM's parallel work-group launch needs.
pub fn par_range_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = worker_count(n);
    if threads <= 1 {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + per).min(n);
            let f = &f;
            handles.push(s.spawn(move || f(start..end)));
            start = end;
        }
        for h in handles {
            out.push(Some(h.join().expect("par_range_map worker panicked")));
        }
    });
    out.into_iter().map(|v| v.expect("worker result")).collect()
}

/// Parallel mutation of consecutive `chunk`-sized pieces of `data`;
/// `f(chunk_index, chunk)` like `par_chunks_mut().enumerate()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = data.len().div_ceil(chunk);
    let threads = worker_count(n_chunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let chunks_per_thread = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per_thread * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = first_chunk;
            first_chunk += chunks_per_thread;
            let f = &f;
            s.spawn(move || {
                for (i, c) in head.chunks_mut(chunk).enumerate() {
                    f(base + i, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<usize> = (0..1037).collect();
        let seq: Vec<usize> = items.iter().enumerate().map(|(i, v)| i * 3 + v).collect();
        assert_eq!(par_map(&items, |i, v| i * 3 + v), seq);
        assert!(par_map::<usize, usize, _>(&[], |_, v| *v).is_empty());
    }

    #[test]
    fn par_range_map_covers_all_indices_in_order() {
        let parts = par_range_map(1003, |r| r.clone());
        let mut flat: Vec<usize> = Vec::new();
        for r in parts {
            flat.extend(r);
        }
        assert_eq!(flat, (0..1003).collect::<Vec<_>>());
        assert!(par_range_map(0, |r| r.len()).is_empty());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 7, |idx, c| {
            for v in c.iter_mut() {
                *v += idx + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7 + 1, "element {i}");
        }
    }

    #[test]
    fn chunk_larger_than_data_is_one_chunk() {
        let mut data = vec![1u32; 5];
        par_chunks_mut(&mut data, 100, |idx, c| {
            assert_eq!(idx, 0);
            for v in c.iter_mut() {
                *v = 9;
            }
        });
        assert_eq!(data, vec![9; 5]);
    }
}
