//! A minimal wall-clock benchmark harness for `harness = false` bench
//! targets: warm up, time batches until a budget is spent, report the
//! median per-iteration time.
//!
//! Interface kept deliberately tiny — a bench file builds a [`Harness`]
//! and calls [`Harness::bench`] per case. Under `cargo test` the bench
//! binaries run one iteration per case (smoke mode) so broken benches
//! fail CI quickly without burning minutes.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and prints benchmark results.
#[derive(Debug, Default)]
pub struct Harness {
    /// One (name, median seconds per iteration) row per finished case.
    results: Vec<(String, f64)>,
    /// Per-case wall-clock budget.
    pub budget: Duration,
    /// Smoke mode: run each case once, skip timing loops.
    pub smoke: bool,
}

impl Harness {
    /// Harness honouring `CLGEMM_BENCH_SMOKE=1` (used by CI) and an
    /// optional `CLGEMM_BENCH_MS` per-case budget override.
    #[must_use]
    pub fn from_env() -> Harness {
        let smoke = std::env::var_os("CLGEMM_BENCH_SMOKE").is_some_and(|v| v == "1");
        let ms = std::env::var("CLGEMM_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Harness {
            results: Vec::new(),
            budget: Duration::from_millis(ms),
            smoke,
        }
    }

    /// Time one case. `f` should return a value the optimiser must not
    /// discard; it is black-boxed here.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if self.smoke {
            black_box(f());
            println!("{name}: smoke ok");
            self.results.push((name.to_string(), 0.0));
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs at least ~1% of the budget.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= self.budget / 100 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 3 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median = samples[samples.len() / 2];
        println!(
            "{name}: {} ({} samples of {batch})",
            fmt_secs(median),
            samples.len()
        );
        self.results.push((name.to_string(), median));
    }

    /// Rows recorded so far.
    #[must_use]
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Human-readable seconds.
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once_and_records() {
        let mut h = Harness {
            smoke: true,
            ..Harness::default()
        };
        let mut count = 0;
        h.bench("case", || {
            count += 1;
            count
        });
        assert_eq!(count, 1);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn timed_mode_reports_positive_median() {
        let mut h = Harness {
            budget: Duration::from_millis(5),
            ..Harness::default()
        };
        h.bench("spin", || std::hint::black_box((0..100).sum::<u64>()));
        assert!(h.results()[0].1 > 0.0);
    }

    #[test]
    fn formats_cover_all_magnitudes() {
        assert!(fmt_secs(2.5).ends_with(" s"));
        assert!(fmt_secs(2.5e-3).ends_with(" ms"));
        assert!(fmt_secs(2.5e-6).ends_with(" µs"));
        assert!(fmt_secs(2.5e-9).ends_with(" ns"));
    }
}
