//! Seedable pseudo-random generator (xoshiro256**) with the sampling
//! helpers the search strategies and randomized tests use.
//!
//! Deterministic for a given seed on every platform, like the seeded
//! `StdRng` uses it replaces.

/// A xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator (any seed, including 0, is valid).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi)`; `hi` must exceed `lo`.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniformly chosen element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.range(0, i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_and_f64_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 17);
            assert!((3..17).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::new(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.range(0, 8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut r = Rng::new(5);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(r.choose(&v).is_some());
        assert!(r.choose::<usize>(&[]).is_none());
    }
}
