//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                    # everything, full search space
//! repro table2 fig9            # selected experiments
//! repro all --quick            # thinned search space (fast smoke run)
//! repro all --csv out/         # additionally write CSV files
//! ```

use clgemm_report::{run_experiment, Lab, Quality, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quality = Quality::Full;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quality = Quality::Quick,
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(dir.into()),
                None => {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: repro [EXPERIMENT...|all] [--quick] [--csv DIR]");
                println!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut lab = Lab::new(quality);
    let mut failed = false;
    for name in &wanted {
        let t0 = std::time::Instant::now();
        match run_experiment(name, &mut lab) {
            Some(rep) => {
                println!("{}", rep.to_text());
                eprintln!("[{name} regenerated in {:.1}s]", t0.elapsed().as_secs_f64());
                if let Some(dir) = &csv_dir {
                    match rep.write_csvs(dir) {
                        Ok(paths) => {
                            for p in paths {
                                eprintln!("  wrote {}", p.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("failed to write CSVs for {name}: {e}");
                            failed = true;
                        }
                    }
                }
            }
            None => {
                eprintln!(
                    "unknown experiment {name:?}; known: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
