//! Plain-text and CSV rendering of experiment outputs.

/// One table of an experiment's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Caption shown above the table.
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A full experiment output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Experiment id (e.g. "fig7").
    pub id: String,
    /// Human title (e.g. "Fig. 7 — ...").
    pub title: String,
    pub tables: Vec<TextTable>,
    /// Free-form observations, including paper-vs-measured commentary.
    pub notes: Vec<String>,
}

impl Report {
    /// Start an empty report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a table.
    pub fn table(&mut self, t: TextTable) {
        self.tables.push(t);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render everything as text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Write each table as `<dir>/<id>_<index>.csv`.
    pub fn write_csvs(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{}.csv", self.id, i));
            std::fs::write(&path, t.to_csv())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Format GFlop/s compactly.
#[must_use]
pub fn gf(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Format an efficiency as a percentage.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.0}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new("Sample", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("## Sample"));
        let lines: Vec<&str> = text.lines().collect();
        // header, rule, two rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("a    bb"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("x", &["a"]);
        t.row(vec!["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_width_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn report_renders_tables_and_notes() {
        let mut r = Report::new("t", "Title");
        r.table(sample());
        r.note("hello");
        let text = r.to_text();
        assert!(text.contains("# t — Title"));
        assert!(text.contains("note: hello"));
    }

    #[test]
    fn csv_files_written() {
        let mut r = Report::new("unit_csv", "x");
        r.table(sample());
        let dir = std::env::temp_dir().join("clgemm_csv_test");
        let paths = r.write_csvs(&dir).unwrap();
        assert_eq!(paths.len(), 1);
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(content.starts_with("a,bb"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(gf(863.4), "863");
        assert_eq!(gf(37.25), "37.2");
        assert_eq!(pct(0.911), "91%");
    }
}
