//! Shared tuning context for the experiments.
//!
//! Experiments share one [`Lab`], which lazily tunes each
//! `(device, precision, space-restriction)` combination exactly once —
//! the analogue of the paper's per-device five-hour tuning runs, which
//! the deterministic timing model compresses to fractions of a second.

use clgemm::params::Algorithm;
use clgemm::routine::TunedGemm;
use clgemm::tuner::{tune, SearchOpts, SearchSpace, TuningResult};
use clgemm_blas::scalar::Precision;
use clgemm_device::{DeviceId, DeviceSpec};
use std::collections::BTreeMap;

/// How thorough the searches should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Full default space (the paper-scale run; use `--release`).
    Full,
    /// Thinned space for tests and smoke runs.
    Quick,
}

/// Space restrictions the experiments need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Restriction {
    /// The unrestricted search (Table II / Fig. 7).
    None,
    /// Fixed algorithm (Fig. 8).
    Algorithm(u8),
    /// No local memory at all (§IV-A ablation).
    NoLocal,
    /// Row-major layouts only (§IV-A block-major ablation).
    RowMajorOnly,
}

/// The shared context.
pub struct Lab {
    quality: Quality,
    cache: BTreeMap<(String, bool, Restriction), TuningResult>,
}

impl Lab {
    /// Create a lab at the given quality.
    #[must_use]
    pub fn new(quality: Quality) -> Lab {
        Lab {
            quality,
            cache: BTreeMap::new(),
        }
    }

    /// The search options experiments use.
    #[must_use]
    pub fn opts(&self) -> SearchOpts {
        match self.quality {
            Quality::Full => SearchOpts {
                verify_winner: false,
                max_sweep_points: 24,
                ..Default::default()
            },
            Quality::Quick => SearchOpts {
                top_k: 8,
                max_sweep_points: 6,
                verify_winner: false,
                ..Default::default()
            },
        }
    }

    fn space(&self, dev: &DeviceSpec, restriction: Restriction) -> SearchSpace {
        let base = match self.quality {
            Quality::Full => SearchSpace::for_device(dev),
            Quality::Quick => SearchSpace::smoke(dev),
        };
        match restriction {
            Restriction::None => base,
            Restriction::Algorithm(i) => base.with_algorithm(Algorithm::ALL[i as usize]),
            Restriction::NoLocal => base.with_locals(vec![(false, false)]),
            Restriction::RowMajorOnly => base.with_layouts(vec![(
                clgemm_blas::layout::BlockLayout::RowMajor,
                clgemm_blas::layout::BlockLayout::RowMajor,
            )]),
        }
    }

    /// Tune (or fetch the cached result for) one combination.
    pub fn tuned(
        &mut self,
        id: DeviceId,
        precision: Precision,
        restriction: Restriction,
    ) -> &TuningResult {
        let dev = id.spec();
        let key = (
            dev.code_name.clone(),
            precision == Precision::F64,
            restriction,
        );
        if !self.cache.contains_key(&key) {
            let space = self.space(&dev, restriction);
            let res = tune(&dev, precision, &space, &self.opts());
            self.cache.insert(key.clone(), res);
        }
        &self.cache[&key]
    }

    /// The unrestricted winner for a device/precision.
    pub fn best(&mut self, id: DeviceId, precision: Precision) -> &TuningResult {
        self.tuned(id, precision, Restriction::None)
    }

    /// A [`TunedGemm`] bundle for the device's unrestricted winners.
    pub fn tuned_gemm(&mut self, id: DeviceId) -> TunedGemm {
        let d = self.best(id, Precision::F64).best.params;
        let s = self.best(id, Precision::F32).best.params;
        TunedGemm::new(id.spec(), d, s)
    }

    /// Restriction handle for an algorithm (helper around the enum's
    /// index encoding).
    #[must_use]
    pub fn algo_restriction(alg: Algorithm) -> Restriction {
        let idx = Algorithm::ALL
            .iter()
            .position(|a| *a == alg)
            .expect("algorithm in ALL") as u8;
        Restriction::Algorithm(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_caches_results() {
        let mut lab = Lab::new(Quality::Quick);
        let g1 = lab.best(DeviceId::Tahiti, Precision::F64).best.gflops;
        let g2 = lab.best(DeviceId::Tahiti, Precision::F64).best.gflops;
        assert_eq!(g1, g2);
        assert_eq!(lab.cache.len(), 1);
    }

    #[test]
    fn restrictions_produce_different_searches() {
        let mut lab = Lab::new(Quality::Quick);
        let full = lab.best(DeviceId::Tahiti, Precision::F32).best.gflops;
        let no_local = lab
            .tuned(DeviceId::Tahiti, Precision::F32, Restriction::NoLocal)
            .best
            .gflops;
        // The restricted search can never beat the unrestricted one.
        assert!(no_local <= full + 1e-9);
        assert_eq!(lab.cache.len(), 2);
    }

    #[test]
    fn tuned_gemm_bundle_built_from_lab() {
        let mut lab = Lab::new(Quality::Quick);
        let tg = lab.tuned_gemm(DeviceId::Fermi);
        assert_eq!(tg.device().code_name, "Fermi");
    }

    #[test]
    fn algo_restriction_round_trips() {
        assert_eq!(
            Lab::algo_restriction(Algorithm::Ba),
            Restriction::Algorithm(0)
        );
        assert_eq!(
            Lab::algo_restriction(Algorithm::Db),
            Restriction::Algorithm(2)
        );
    }
}
