//! Experiment registry: regenerates every table and figure of the paper.
//!
//! Each experiment module produces a [`Report`] — one or more text/CSV
//! tables plus notes — from the same library APIs a user would call. The
//! `repro` binary drives them:
//!
//! ```text
//! cargo run --release -p clgemm-report --bin repro -- all
//! cargo run --release -p clgemm-report --bin repro -- table2 fig9 --quick
//! ```
//!
//! | experiment | paper artefact |
//! |---|---|
//! | `table1` | Table I — processor specifications |
//! | `fig7` | Fig. 7 — fastest-kernel GFlop/s vs N (DGEMM + SGEMM) |
//! | `table2` | Table II — best parameters and maximum performance |
//! | `fig8` | Fig. 8 — relative performance of BA/PL/DB |
//! | `table3` | Table III — routine maxima vs vendor libraries |
//! | `fig9` | Fig. 9 — Tahiti routine vs clBLAS vs previous study |
//! | `fig10` | Fig. 10 — Fermi/Kepler vs CUBLAS/MAGMA |
//! | `fig11` | Fig. 11 — Sandy Bridge DGEMM vs MKL/ATLAS |
//! | `ablations` | §IV-A text — local memory, layouts, pow2 cliff, Cypress |
//! | `hybrid` | EXTENSION: §V future work — copy-free small-size kernel |
//! | `strategies` | EXTENSION: search-strategy sample efficiency |
//! | `paperparams` | EXTENSION: the paper's Table II winners replayed in the model |
//! | `serving` | EXTENSION: clgemm-serve throughput vs device count and batch cap |
//! | `observability` | EXTENSION: clgemm-trace lifecycle histograms, drift and phase spans |
//! | `batched` | EXTENSION: strided-batched GEMM — direct path, amortised packing, f16/bf16 storage |
//! | `prediction` | EXTENSION: analytical parameter prediction and the persistent tuning database |
//! | `saturation` | EXTENSION: serving under overload — admission control, fair queueing, coalescing |

pub mod experiments;
pub mod lab;
pub mod plot;
pub mod render;

pub use lab::{Lab, Quality};
pub use plot::{ascii_chart, Series};
pub use render::{Report, TextTable};

/// Names of all experiments in paper order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "table1",
    "fig7",
    "table2",
    "fig8",
    "table3",
    "fig9",
    "fig10",
    "fig11",
    "ablations",
    "hybrid",
    "strategies",
    "paperparams",
    "serving",
    "observability",
    "batched",
    "prediction",
    "saturation",
];

/// Run one experiment by name.
pub fn run_experiment(name: &str, lab: &mut Lab) -> Option<Report> {
    Some(match name {
        "table1" => experiments::table1::report(),
        "fig7" => experiments::fig7::report(lab),
        "table2" => experiments::table2::report(lab),
        "fig8" => experiments::fig8::report(lab),
        "table3" => experiments::table3::report(lab),
        "fig9" => experiments::fig9::report(lab),
        "fig10" => experiments::fig10::report(lab),
        "fig11" => experiments::fig11::report(lab),
        "ablations" => experiments::ablations::report(lab),
        "hybrid" => experiments::hybrid::report(lab),
        "strategies" => experiments::strategies::report(lab),
        "paperparams" => experiments::paperparams::report(lab),
        "serving" => experiments::serving::report(lab),
        "observability" => experiments::observability::report(lab),
        "batched" => experiments::batched::report(lab),
        "prediction" => experiments::prediction::report(lab),
        "saturation" => experiments::saturation::report(lab),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_experiment_runs_in_quick_mode() {
        let mut lab = Lab::new(Quality::Quick);
        for name in ALL_EXPERIMENTS {
            let rep = run_experiment(name, &mut lab)
                .unwrap_or_else(|| panic!("experiment {name} missing"));
            assert!(!rep.tables.is_empty(), "{name} produced no tables");
            let text = rep.to_text();
            assert!(text.len() > 100, "{name} output suspiciously short");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        let mut lab = Lab::new(Quality::Quick);
        assert!(run_experiment("fig99", &mut lab).is_none());
    }
}
