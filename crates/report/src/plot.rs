//! Minimal ASCII line charts for the figure experiments.
//!
//! The paper's figures are performance-vs-size curves; rendering them as
//! text keeps `repro` self-contained (no plotting dependencies) while
//! still showing curve shapes — saturation, crossover, cliffs — at a
//! glance.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.to_string(),
            points,
        }
    }
}

/// Render series into a `width × height` character grid with a y-axis
/// scale and a per-series glyph legend.
#[must_use]
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let (width, height) = (width.max(16), height.max(4));
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_max_v,) = (f64::NEG_INFINITY,);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_max_v = y_max_v.max(*y);
    }
    let y_min = 0.0; // performance charts start at zero, like the paper's
    let y_max = if y_max_v <= y_min {
        y_min + 1.0
    } else {
        y_max_v
    };
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = y_max - y_min;

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            grid[r][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, rowchars) in grid.iter().enumerate() {
        // Y-axis label on the top, middle and bottom rows.
        let yv = y_max - (r as f64 / (height - 1) as f64) * y_span;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("{yv:>8.0} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(rowchars.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}{:<.0}{}{:>.0}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(8)),
        x_max
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.name
        ));
    }
    out
}

/// Build a chart from a [`crate::render::TextTable`] whose first column
/// is numeric X and remaining columns are numeric series (the shape all
/// figure experiments produce).
#[must_use]
pub fn chart_from_table(
    title: &str,
    t: &crate::render::TextTable,
    width: usize,
    height: usize,
) -> String {
    let series: Vec<Series> = (1..t.headers.len())
        .filter_map(|j| {
            let pts: Vec<(f64, f64)> = t
                .rows
                .iter()
                .filter_map(|r| Some((r[0].parse::<f64>().ok()?, r[j].parse::<f64>().ok()?)))
                .collect();
            if pts.is_empty() {
                None
            } else {
                Some(Series {
                    name: t.headers[j].clone(),
                    points: pts,
                })
            }
        })
        .collect();
    ascii_chart(title, &series, width, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        vec![
            Series::new(
                "linear",
                (0..10).map(|i| (i as f64, 10.0 * i as f64)).collect(),
            ),
            Series::new("flat", (0..10).map(|i| (i as f64, 42.0)).collect()),
        ]
    }

    #[test]
    fn chart_contains_title_legend_and_glyphs() {
        let c = ascii_chart("Demo", &demo(), 40, 10);
        assert!(c.starts_with("Demo\n"));
        assert!(c.contains("* = linear"));
        assert!(c.contains("o = flat"));
        assert!(c.contains('*') && c.contains('o'));
    }

    #[test]
    fn y_axis_spans_zero_to_max() {
        let c = ascii_chart("Demo", &demo(), 40, 10);
        let first_label = c.lines().nth(1).unwrap();
        assert!(first_label.trim_start().starts_with("90"), "{first_label}");
        assert!(c.contains("       0 |"), "bottom row is zero");
    }

    #[test]
    fn empty_series_render_gracefully() {
        let c = ascii_chart("Empty", &[Series::new("none", vec![])], 40, 10);
        assert!(c.contains("(no data)"));
    }

    #[test]
    fn single_point_does_not_panic() {
        let c = ascii_chart("One", &[Series::new("pt", vec![(5.0, 5.0)])], 30, 6);
        assert!(c.contains('*'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let c = ascii_chart(
            "NaN",
            &[Series::new(
                "s",
                vec![(0.0, f64::NAN), (1.0, 1.0), (f64::INFINITY, 2.0)],
            )],
            30,
            6,
        );
        assert!(c.contains('*'));
    }

    #[test]
    fn monotone_series_rises_left_to_right() {
        let c = ascii_chart(
            "Rise",
            &[Series::new(
                "r",
                (0..20).map(|i| (i as f64, i as f64)).collect(),
            )],
            40,
            8,
        );
        // The topmost data row's glyph must be to the right of the
        // bottom-most data row's glyph.
        let rows: Vec<&str> = c.lines().skip(1).take(8).collect();
        let top_col = rows.first().unwrap().find('*');
        let bottom_col = rows.last().unwrap().find('*');
        if let (Some(t), Some(b)) = (top_col, bottom_col) {
            assert!(t > b, "top {t} vs bottom {b}");
        }
    }
}
