//! Extension experiment — the analytical parameter predictor and the
//! persistent tuning database. Three tables: how hard the closed-form
//! feasible set prunes the stage-1 search space on every profile, how
//! close the zero-search prediction lands to an actual tuning run, and
//! what a serve cold start + restart looks like with the on-disk
//! database (predict → background refine → persist → warm restart).

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm::params::KernelParams;
use clgemm::predict::{predict_best, FeasibleSet, PruneReason};
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::SearchSpace;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::{DeviceId, DeviceKind, DeviceSpec};
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Provenance, ServeConfig, StatsSnapshot};
use clgemm_trace::Registry;

/// Smallest stage-1 size ≥ `base` that `p`'s blocking divides.
fn padded(p: &KernelParams, base: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let lcm = |a: usize, b: usize| a / gcd(a, b) * b;
    let step = lcm(lcm(p.mwg, p.nwg), p.k_multiple());
    base.div_ceil(step) * step
}

fn stage1_base(dev: &DeviceSpec) -> usize {
    match dev.kind {
        DeviceKind::Gpu => 4096,
        DeviceKind::Cpu => 1536,
    }
}

/// One DGEMM request at `s`³ (column-major, `beta = 0`).
fn dgemm_request(s: usize, seed: u64) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(s, s, order, seed),
            b: Matrix::test_pattern(s, s, order, seed + 1),
            beta: 0.0,
            c: Matrix::zeros(s, s, order),
        },
    )
}

/// Serve a tiny workload against `path`, return the stats snapshot
/// after the background refiner has finished and persisted.
fn serve_once(path: &std::path::Path) -> StatsSnapshot {
    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec()],
        ServeConfig {
            predict: true,
            background_refine: true,
            tuning_db: Some(path.to_path_buf()),
            registry: Some(Registry::new()),
            ..Default::default()
        },
    );
    for (i, s) in [96usize, 100, 200].iter().enumerate() {
        server
            .submit(dgemm_request(*s, i as u64))
            .expect("queue has room");
    }
    server.drain();
    server.wait_refines();
    server.stats()
}

/// Regenerate the prediction/tuning-database tables.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "prediction",
        "EXTENSION: analytical parameter prediction and the persistent tuning database",
    );

    // ---- table 1: stage-1 pruning power on every profile ---------------
    let mut t = TextTable::new(
        "closed-form feasible set vs the full stage-1 space",
        &[
            "Device",
            "Prec",
            "Stage 1",
            "Admitted",
            "Prune x",
            "Top reject reason",
        ],
    );
    for id in DeviceId::ALL {
        let dev = id.spec();
        for precision in [Precision::F32, Precision::F64] {
            let candidates = SearchSpace::for_device(&dev).enumerate(&dev, precision);
            let feasible = FeasibleSet::derive(&dev, precision);
            let mut tally = [0usize; PruneReason::ALL.len()];
            let mut kept = 0usize;
            for p in &candidates {
                match feasible.reject(p) {
                    None => kept += 1,
                    Some(r) => tally[r.index()] += 1,
                }
            }
            let top = PruneReason::ALL
                .iter()
                .zip(&tally)
                .max_by_key(|(_, &n)| n)
                .map_or("-", |(r, _)| r.tag());
            t.row(vec![
                format!("{id:?}"),
                format!("{precision:?}"),
                candidates.len().to_string(),
                kept.to_string(),
                format!("{:.1}", candidates.len() as f64 / kept.max(1) as f64),
                top.to_string(),
            ]);
        }
    }
    rep.table(t);

    // ---- table 2: zero-search prediction vs an actual search -----------
    let mut t = TextTable::new(
        "predicted winner vs tuned winner (stage-1 model GFlop/s)",
        &["Device", "Prec", "Predicted", "Searched", "Pred/Search"],
    );
    for id in DeviceId::ALL {
        let dev = id.spec();
        for precision in [Precision::F32, Precision::F64] {
            let base = stage1_base(&dev);
            let pred = predict_best(&dev, precision).expect("non-empty prediction");
            let predicted = measure_gflops(&pred.params, &dev, padded(&pred.params, base))
                .expect("predictions are launchable");
            let tuned = lab.best(id, precision).best.params;
            let searched =
                measure_gflops(&tuned, &dev, padded(&tuned, base)).expect("winner launches");
            t.row(vec![
                format!("{id:?}"),
                format!("{precision:?}"),
                gf(predicted),
                gf(searched),
                format!("{:.2}", predicted / searched),
            ]);
        }
    }
    rep.table(t);

    // ---- table 3: serve cold start, refine, warm restart ---------------
    let path = std::env::temp_dir().join(format!(
        "clgemm-report-prediction-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut t = TextTable::new(
        "one server lifecycle over the on-disk tuning database",
        &[
            "Run",
            "Cold starts",
            "DB hit/miss/stale",
            "Refines",
            "Hits pred/ref/pers",
        ],
    );
    for run in ["cold", "restart"] {
        let stats = serve_once(&path);
        let by = stats.hits_by_provenance;
        t.row(vec![
            run.to_string(),
            stats.predict_cold_starts.to_string(),
            format!("{}/{}/{}", stats.db_hits, stats.db_misses, stats.db_stale),
            stats.refines.to_string(),
            format!(
                "{}/{}/{}",
                by[Provenance::Predicted.index()],
                by[Provenance::Refined.index()],
                by[Provenance::Persisted.index()]
            ),
        ]);
    }
    let _ = std::fs::remove_file(&path);
    rep.table(t);

    rep.note(
        "Expected shape: the feasible set prunes every profile by well \
         over 10x (CPUs hardest — the no-local-memory and full-SIMD \
         rules collapse whole axes), the predicted winner lands within \
         a factor of two of the searched one with zero measurements, \
         and the restarted server resolves every bucket from disk: no \
         cold starts, no refines, all hits Persisted.",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn pruning_and_restart_behave() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);

        // Every profile prunes by at least the 10x gate.
        for row in &rep.tables[0].rows {
            let ratio: f64 = row[4].trim().parse().expect("numeric prune column");
            assert!(ratio >= 10.0, "{} {}: prune {ratio}x", row[0], row[1]);
        }

        // Prediction lands within 2x of the searched winner everywhere.
        for row in &rep.tables[1].rows {
            let ratio: f64 = row[4].trim().parse().expect("numeric ratio column");
            assert!(ratio >= 0.5, "{} {}: pred/search {ratio}", row[0], row[1]);
        }

        // The restart run is fully warm: no cold starts, all db hits.
        let cold = &rep.tables[2].rows[0];
        let warm = &rep.tables[2].rows[1];
        assert!(cold[1].trim().parse::<u64>().unwrap() > 0);
        assert_eq!(warm[1].trim(), "0", "restart must not cold start");
        // Two distinct buckets (128³ and 256³) → two db hits, no misses.
        assert!(warm[2].trim().starts_with("2/0"), "restart warms from disk");
    }
}
