//! Extension experiment — the strided-batched host path: one
//! `GemmBatch` call vs a loop of single-GEMM calls in the analytic
//! model, the direct-vs-packed crossover, and a host-measured bit-exact
//! check across all four storage types.

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm::batched::{BatchOptions, BatchPath};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::{Scalar, StorageScalar};
use clgemm_blas::workspace::WorkspaceScalar;
use clgemm_blas::{BatchWorkspace, Bf16, GemmBatch, GemmType, F16};
use clgemm_device::DeviceId;

/// Regenerate the batched-GEMM study.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "batched",
        "EXTENSION: strided-batched GEMM — amortised packing, the small-matrix direct path, \
         and f16/bf16 storage with f32 accumulation",
    );
    let tg = lab.tuned_gemm(DeviceId::Tahiti);

    // Modelled batch economics: the looped column pays the per-call
    // pack/stage/merge cost `batch` times; the batched column pays the
    // shared parts once. The direct column skips copies entirely.
    let mut t = TextTable::new(
        "Tahiti SGEMM (NN), modelled: loop of singles vs one batched call",
        &[
            "batch",
            "N",
            "looped s",
            "packed batch s",
            "direct batch s",
            "best path",
            "speedup",
        ],
    );
    for &batch in &[1usize, 8, 64] {
        for &edge in &[32usize, 128, 512] {
            let desc = GemmBatch::packed(GemmType::NN, batch, edge, edge, edge);
            let one = tg.predict(false, GemmType::NN, edge, edge, edge);
            let looped = one.total * batch as f64;
            let packed = tg.predict_batch(false, &desc);
            let direct = tg.predict_batch_direct::<f32>(&desc);
            let (path, best) = if direct <= packed {
                ("direct", direct)
            } else {
                ("packed", packed)
            };
            t.row(vec![
                batch.to_string(),
                edge.to_string(),
                format!("{looped:.6}"),
                format!("{packed:.6}"),
                format!("{direct:.6}"),
                path.to_string(),
                format!("{:.2}x", looped / best),
            ]);
        }
    }
    rep.table(t);

    // Modelled crossover: where the in-place direct kernel stops paying.
    let mut t = TextTable::new(
        "Direct vs packed modelled crossover (batch 16, SGEMM NN)",
        &["N", "direct GF", "packed GF", "winner"],
    );
    for &edge in &[16usize, 32, 64, 128, 256, 512, 1024] {
        let desc = GemmBatch::packed(GemmType::NN, 16, edge, edge, edge);
        let flops = 2.0 * 16.0 * (edge as f64).powi(3);
        let direct = tg.predict_batch_direct::<f32>(&desc);
        let packed = tg.predict_batch(false, &desc);
        t.row(vec![
            edge.to_string(),
            gf(flops / direct / 1e9),
            gf(flops / packed / 1e9),
            if direct <= packed { "direct" } else { "packed" }.to_string(),
        ]);
    }
    rep.table(t);

    // Host-measured storage sweep: every storage type, both paths, each
    // checked bit-exact against a loop of single-GEMM calls on widened
    // operands — the property the batched paths are built around.
    let mut t = TextTable::new(
        "Host batched call, 8 x 24^3: bit-exactness vs looped singles",
        &["storage", "accumulate", "direct", "packed"],
    );
    t.row(storage_row::<f32>(&tg, "f32"));
    t.row(storage_row::<f64>(&tg, "f64"));
    t.row(storage_row::<F16>(&tg, "f16"));
    t.row(storage_row::<Bf16>(&tg, "bf16"));
    rep.table(t);

    rep.note(
        "The batched entry point amortises workspace acquisition, tile selection and shared-\
         operand packs across the batch; below the crossover the direct register-tile kernel \
         additionally skips all four O(N^2) copy passes.",
    );
    rep.note(
        "f16/bf16 operands widen exactly to f32 on pack (or per load on the direct path) and \
         narrow once with round-to-nearest-even on merge, so every storage type is bit-identical \
         to computing on pre-widened matrices. Measured curves: BENCH_batched.json.",
    );
    rep
}

/// Run one storage type through both host paths and compare bitwise
/// against the looped single-GEMM oracle on widened entries.
fn storage_row<S>(tg: &clgemm::routine::TunedGemm, name: &str) -> Vec<String>
where
    S: StorageScalar,
    S::Acc: WorkspaceScalar,
{
    let (batch, edge) = (8usize, 24usize);
    let desc = GemmBatch::packed(GemmType::NN, batch, edge, edge, edge);
    let len = batch * edge * edge;
    let fill = |seed: usize| -> Vec<S> {
        (0..len)
            .map(|i| S::from_f64(((i * 7 + seed * 13) % 16) as f64 * 0.25 - 2.125))
            .collect()
    };
    let (a, b, c0) = (fill(1), fill(2), fill(3));
    let alpha = S::Acc::from_f64(1.25);
    let beta = S::Acc::from_f64(-0.5);

    // Oracle: loop the single-GEMM routine over widened entries.
    let mut want: Vec<S> = Vec::with_capacity(len);
    for i in 0..batch {
        let widen = |slab: &[S], r: usize, j: usize| slab[desc.c_offset(i) + j * edge + r].widen();
        let am = Matrix::from_fn(edge, edge, StorageOrder::ColMajor, |r, j| widen(&a, r, j));
        let bm = Matrix::from_fn(edge, edge, StorageOrder::ColMajor, |r, j| widen(&b, r, j));
        let mut cm = Matrix::from_fn(edge, edge, StorageOrder::ColMajor, |r, j| widen(&c0, r, j));
        tg.gemm(GemmType::NN, alpha, &am, &bm, beta, &mut cm);
        for j in 0..edge {
            for r in 0..edge {
                want.push(S::narrow(cm.at(r, j)));
            }
        }
    }

    let mut ws = BatchWorkspace::new();
    let mut verdict = |path: BatchPath| -> String {
        let mut c = c0.clone();
        let opts = BatchOptions {
            force_path: Some(path),
        };
        tg.gemm_batch_with(&desc, alpha, &a, &b, beta, &mut c, &mut ws, &opts)
            .expect("descriptor is valid");
        if c == want {
            "bit-exact".to_string()
        } else {
            "DIVERGED".to_string()
        }
    };
    vec![
        name.to_string(),
        S::Acc::PRECISION.to_string(),
        verdict(BatchPath::Direct),
        verdict(BatchPath::Packed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn batched_beats_looped_in_the_model_and_stays_bit_exact() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        // Every batch>1 row must show the best batched path ahead of the
        // looped singles.
        for row in &rep.tables[0].rows {
            let batch: usize = row[0].parse().unwrap();
            let speedup: f64 = row[6].trim_end_matches('x').parse().unwrap();
            if batch > 1 {
                assert!(speedup >= 1.0, "row {row:?} lost to the loop");
            }
        }
        // The storage sweep must be bit-exact on both paths, all types.
        for row in &rep.tables[2].rows {
            assert_eq!(row[2], "bit-exact", "{} direct path diverged", row[0]);
            assert_eq!(row[3], "bit-exact", "{} packed path diverged", row[0]);
        }
    }
}
