//! Extension experiment — the paper's §V future work, implemented: a
//! copy-free kernel for small sizes combined with the packed routine,
//! plus the §IV-C Kepler SGEMM comparison against Kurzak et al.'s CUDA
//! auto-tuner.

use crate::experiments::sweep_sizes;
use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm::routine::HybridGemm;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;

/// Regenerate the hybrid-routine study.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "hybrid",
        "EXTENSION: copy-free kernel for small sizes + packed routine (the paper's §V future work)",
    );
    let hybrid = HybridGemm::new(lab.tuned_gemm(DeviceId::Tahiti));

    let mut t = TextTable::new(
        "Tahiti DGEMM (NN): packed vs direct vs hybrid",
        &["N", "packed GF", "direct GF", "hybrid GF", "path"],
    );
    let mut sizes = vec![32usize, 64, 96, 128, 192, 256, 384];
    sizes.extend(sweep_sizes(4096, 512));
    for n in sizes {
        let packed = hybrid.tuned().predict(true, GemmType::NN, n, n, n);
        let direct_s = hybrid.direct_seconds(true, GemmType::NN, n, n, n);
        let flops = 2.0 * (n as f64).powi(3);
        let (path, run) = hybrid.choose(true, GemmType::NN, n, n, n);
        t.row(vec![
            n.to_string(),
            gf(packed.gflops),
            gf(flops / direct_s / 1e9),
            gf(run.gflops),
            path.to_string(),
        ]);
    }
    rep.table(t);

    let mut t = TextTable::new("Crossover sizes (model)", &["Type", "DGEMM N*", "SGEMM N*"]);
    for ty in GemmType::ALL {
        let d = hybrid.crossover(true, ty, 8192);
        let s = hybrid.crossover(false, ty, 8192);
        let fmt = |x: Option<usize>| x.map_or("-".to_string(), |v| v.to_string());
        t.row(vec![ty.to_string(), fmt(d), fmt(s)]);
    }
    rep.table(t);

    // §IV-C: Kurzak et al.'s CUDA autotuner reports ~1150 GFlop/s SGEMM
    // at N=4096 on a GTX 680; the paper measures 1340 on its GTX 670 OC.
    let kepler = lab.tuned_gemm(DeviceId::Kepler);
    let ours_4096 = kepler.predict(false, GemmType::NN, 4096, 4096, 4096).gflops;
    let mut t = TextTable::new(
        "Kepler SGEMM at N=4096 (§IV-C comparison)",
        &["Impl.", "GFlop/s"],
    );
    t.row(vec![
        "Ours (OpenCL, GTX 670 OC model)".into(),
        gf(ours_4096),
    ]);
    t.row(vec![
        "Kurzak et al. CUDA autotuner (GTX 680, published)".into(),
        gf(1150.0),
    ]);
    rep.table(t);
    rep.note(
        "Paper §IV-C: ours 1340 GFlop/s at N=4096 vs Kurzak's 1150 despite the different card.",
    );
    rep.note("The hybrid routine must equal the better pure path at every size, with the direct path winning below the crossover and the packed path above it.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn hybrid_path_switches_with_size() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0];
        let first = t.rows.first().unwrap();
        let last = t.rows.last().unwrap();
        assert_eq!(first[4], "direct", "smallest size must use the direct path");
        assert_eq!(last[4], "packed", "largest size must use the packed path");
        // hybrid == max(packed, direct) row-wise.
        for row in &t.rows {
            let packed: f64 = row[1].parse().unwrap();
            let direct: f64 = row[2].parse().unwrap();
            let hybrid: f64 = row[3].parse().unwrap();
            assert!(hybrid >= packed.max(direct) * 0.99, "row {row:?}");
        }
    }

    #[test]
    fn kepler_beats_kurzak_at_4096() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = rep
            .tables
            .iter()
            .find(|t| t.title.contains("Kurzak") || t.title.contains("Kepler"))
            .unwrap();
        let ours: f64 = t.rows[0][1].parse().unwrap();
        let kurzak: f64 = t.rows[1][1].parse().unwrap();
        // The full-space run clears 1150 (paper: 1340); quick mode's
        // thinned space may land somewhat lower, so allow slack here.
        assert!(ours > 0.8 * kurzak, "ours {ours} vs Kurzak {kurzak}");
    }
}
