//! Extension experiment — serving-layer throughput scaling. The tuner
//! amortises its search cost only if the winners are *reused*; this
//! experiment drives one mixed GEMM workload through `clgemm-serve`
//! (queue → batcher → kernel cache → multi-device scheduler) and tables
//! how aggregate throughput scales with the device pool and the
//! batch-size cap.

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig, StatsSnapshot};
use clgemm_shim::Rng;

/// One mixed NN/NT/TN/TT DGEMM workload over a few popular shapes.
fn workload(n_requests: usize) -> Vec<GemmRequest> {
    let mut rng = Rng::new(2012);
    let popular = [48usize, 96, 120, 200];
    (0..n_requests)
        .map(|_| {
            let n = popular[rng.range(0, popular.len())];
            GemmRequest::new(
                GemmType::ALL[rng.range(0, 4)],
                GemmPayload::F64 {
                    alpha: 1.0,
                    a: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                    b: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                    beta: 0.5,
                    c: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                },
            )
        })
        .collect()
}

/// Serve the workload once; returns the counters, the total modelled
/// flops, and the pool makespan in virtual seconds.
fn serve(
    requests: &[GemmRequest],
    n_devices: usize,
    max_batch: usize,
) -> (StatsSnapshot, f64, f64) {
    let devices: Vec<_> = DeviceId::ALL
        .iter()
        .take(n_devices)
        .map(|id| id.spec())
        .collect();
    let mut server = GemmServer::new(
        devices,
        ServeConfig {
            max_batch,
            queue_capacity: requests.len(),
            ..Default::default()
        },
    );
    for req in requests {
        server
            .submit(req.clone())
            .expect("queue sized for the workload");
    }
    server.drain();
    let flops: f64 = server
        .take_responses()
        .iter()
        .map(|r| r.run.gflops * r.run.total * 1e9)
        .sum();
    let makespan = server
        .workers()
        .iter()
        .map(clgemm_sim::DeviceWorker::busy_until)
        .fold(0.0, f64::max);
    (server.stats(), flops, makespan)
}

/// Regenerate the serving-throughput scaling tables.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "serving",
        "EXTENSION: serving-layer throughput vs device count and batch cap",
    );
    let n_requests = if lab.opts().top_k <= 8 { 24 } else { 96 };
    let requests = workload(n_requests);

    let mut t = TextTable::new(
        &format!("{n_requests} mixed DGEMM requests, batch cap 4"),
        &[
            "Devices",
            "Batches",
            "Largest",
            "Cache hit/miss",
            "Steals",
            "Makespan ms",
            "Aggregate GF",
        ],
    );
    for n_devices in [1usize, 2, 4, 7] {
        let (stats, flops, makespan) = serve(&requests, n_devices, 4);
        t.row(vec![
            n_devices.to_string(),
            stats.batches.to_string(),
            stats.max_batch.to_string(),
            format!("{}/{}", stats.cache_hits, stats.cache_misses),
            stats.steals.to_string(),
            format!("{:.3}", makespan * 1e3),
            gf(flops / makespan / 1e9),
        ]);
    }
    rep.table(t);

    let mut t = TextTable::new(
        &format!("{n_requests} mixed DGEMM requests, 3 devices"),
        &[
            "Batch cap",
            "Batches",
            "Largest",
            "Makespan ms",
            "Aggregate GF",
        ],
    );
    for max_batch in [1usize, 2, 4, 8] {
        let (stats, flops, makespan) = serve(&requests, 3, max_batch);
        t.row(vec![
            max_batch.to_string(),
            stats.batches.to_string(),
            stats.max_batch.to_string(),
            format!("{:.3}", makespan * 1e3),
            gf(flops / makespan / 1e9),
        ]);
    }
    rep.table(t);

    rep.note(
        "Expected shape: aggregate GFLOP/s grows with the device pool \
         (the scheduler spreads batches by modelled finish time, so \
         slower pool members add less than linearly), and larger batch \
         caps trade per-device balance for fewer grouped launches.",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn serving_scaling_is_monotone_in_devices() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0];
        assert_eq!(t.rows.len(), 4);
        let gflops: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[6].trim().parse().expect("numeric GF column"))
            .collect();
        assert!(
            gflops[3] > gflops[0] * 1.5,
            "7 devices must beat 1 by a wide margin: {gflops:?}"
        );
        // Every pool serves the whole workload through some batches.
        for row in &t.rows {
            assert!(row[1].parse::<u64>().unwrap() > 0);
        }
    }
}
