//! Extension experiment — serving under overload. A deterministic
//! two-tenant workload (4:1 weights, bit-identical duplicate
//! submissions mixed in) runs at 1× and 2× the pool's capacity with a
//! fixed virtual deadline budget. The tables show what admission
//! control sheds, what the in-batch guard still catches, how weighted
//! fairness divides the served work, and what idempotent coalescing
//! absorbs — the serving-layer behaviours the saturation bench gates
//! in CI.

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Outcome, ServeConfig};
use clgemm_shim::Rng;
use clgemm_trace::Registry;

struct LoadRow {
    load: usize,
    submitted: usize,
    completed: usize,
    shed_admit: u64,
    shed_late: u64,
    coalesce_hits: u64,
    makespan: f64,
    goodput_gflops: f64,
    inter_completed: u64,
    bulk_completed: u64,
}

fn request(rng: &mut Rng, n: usize, tenant: &str) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(n, n, order, rng.next_u64()),
            b: Matrix::test_pattern(n, n, order, rng.next_u64()),
            beta: 0.5,
            c: Matrix::test_pattern(n, n, order, rng.next_u64()),
        },
    )
    .with_tenant(tenant)
}

/// Serve `load`× the base workload under `deadline` (None = pre-pass).
fn run_load(rounds: usize, per_round: usize, load: usize, deadline: Option<f64>) -> LoadRow {
    let quota = 2 * per_round;
    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec(), DeviceId::Cayman.spec()],
        ServeConfig {
            queue_capacity: 400,
            drain_quota: quota,
            tenant_weights: vec![("inter".into(), 4), ("bulk".into(), 1)],
            registry: Some(Registry::new()),
            background_refine: false,
            ..Default::default()
        },
    );
    let mut rng = Rng::new(0x5A7);
    let sizes = [48usize, 64, 96];
    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut flops_served = 0.0f64;

    let absorb = |server: &mut GemmServer, completed: &mut usize, flops: &mut f64| -> usize {
        let responses = server.take_responses();
        let n = responses.len();
        for r in responses {
            if r.outcome == Outcome::Completed {
                *completed += 1;
                *flops += r.run.gflops * r.run.total * 1e9;
            }
        }
        n
    };

    for _round in 0..rounds {
        for tenant in ["inter", "bulk"] {
            let mut last: Option<GemmRequest> = None;
            for i in 0..per_round * load {
                let req = match (&last, load >= 2 && i % 8 == 7) {
                    (Some(prev), true) => prev.clone(),
                    _ => {
                        let n = sizes[rng.range(0, sizes.len())];
                        let fresh = request(&mut rng, n, tenant);
                        last = Some(fresh.clone());
                        fresh
                    }
                };
                let req = match deadline {
                    Some(d) => req.with_deadline(d),
                    None => req,
                };
                submitted += 1;
                let _ = server.submit(req);
            }
        }
        server.drain();
        absorb(&mut server, &mut completed, &mut flops_served);
    }
    loop {
        server.drain();
        if absorb(&mut server, &mut completed, &mut flops_served) == 0 {
            break;
        }
    }

    let stats = server.stats();
    let makespan = server
        .workers()
        .iter()
        .map(clgemm_sim::DeviceWorker::busy_until)
        .fold(0.0, f64::max);
    LoadRow {
        load,
        submitted,
        completed,
        shed_admit: stats.rejected_deadline_admit,
        shed_late: stats.rejected_deadline_late,
        coalesce_hits: stats.coalesce_hits,
        makespan,
        goodput_gflops: if makespan > 0.0 {
            flops_served / makespan / 1e9
        } else {
            0.0
        },
        inter_completed: stats.per_tenant.get("inter").map_or(0, |t| t.completed),
        bulk_completed: stats.per_tenant.get("bulk").map_or(0, |t| t.completed),
    }
}

/// Regenerate the overload-behaviour tables.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "saturation",
        "EXTENSION: serving under overload — admission control, fair queueing, coalescing",
    );
    let (rounds, per_round) = if lab.opts().top_k <= 8 {
        (4, 4)
    } else {
        (6, 6)
    };
    let budget = 1.3 * run_load(rounds, per_round, 1, None).makespan;

    let rows = [
        run_load(rounds, per_round, 1, Some(budget)),
        run_load(rounds, per_round, 2, Some(budget)),
    ];

    let mut t = TextTable::new(
        &format!(
            "two tenants (inter:bulk weights 4:1), deadline budget {:.3} virtual ms",
            budget * 1e3
        ),
        &[
            "Load",
            "Submitted",
            "Completed",
            "Shed@admit",
            "Shed late",
            "Coalesced",
            "Makespan ms",
            "Goodput GF",
        ],
    );
    for r in &rows {
        t.row(vec![
            format!("{}x", r.load),
            r.submitted.to_string(),
            r.completed.to_string(),
            r.shed_admit.to_string(),
            r.shed_late.to_string(),
            r.coalesce_hits.to_string(),
            format!("{:.3}", r.makespan * 1e3),
            gf(r.goodput_gflops),
        ]);
    }
    rep.table(t);

    let mut t = TextTable::new(
        "served requests per tenant (weights 4:1)",
        &["Load", "inter", "bulk", "Ratio"],
    );
    for r in &rows {
        t.row(vec![
            format!("{}x", r.load),
            r.inter_completed.to_string(),
            r.bulk_completed.to_string(),
            format!(
                "{:.2}",
                r.inter_completed as f64 / r.bulk_completed.max(1) as f64
            ),
        ]);
    }
    rep.table(t);

    rep.note(
        "Expected shape: at 1x everything completes inside the budget \
         and the tenants split the (uncontended) pool evenly; at 2x \
         admission control sheds work whose projected completion misses \
         its deadline — before it queues — the in-batch guard catches \
         the remainder, duplicate submissions coalesce onto single \
         executions, and deficit-round-robin drains skew completions \
         toward the 4x-weighted tenant without starving the other.",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn overload_sheds_and_fairness_holds() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0];
        assert_eq!(t.rows.len(), 2);
        // 1x completes everything; 2x sheds something and coalesces.
        assert_eq!(t.rows[0][1], t.rows[0][2], "1x must complete all");
        let shed: u64 = t.rows[1][3].parse::<u64>().unwrap() + t.rows[1][4].parse::<u64>().unwrap();
        assert!(shed > 0, "2x must shed");
        assert!(t.rows[1][5].parse::<u64>().unwrap() > 0, "2x must coalesce");
        // Fairness table: bulk is served at both loads.
        let fair = &rep.tables[1];
        for row in &fair.rows {
            assert!(row[2].parse::<u64>().unwrap() > 0, "bulk starved");
        }
    }
}
