//! Model-fidelity experiment: evaluate the paper's *own* Table II winning
//! parameter sets in our timing model and compare three numbers per
//! device: the paper's measurement, the model's prediction for the
//! paper's winner, and the model's prediction for our tuner's winner.
//!
//! A faithful model should (a) place the paper's winners close to their
//! published GFlop/s, and (b) show our winners at most a few percent
//! above them — the optimum neighbourhood of a well-tuned GEMM is flat.

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm::paper_params::{all_winners, PaperEntry};
use clgemm::tuner::search::measure_gflops;
use clgemm_blas::layout::round_up;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceKind;

fn eval_entry(e: &PaperEntry) -> f64 {
    let dev = e.device.spec();
    let base = match dev.kind {
        DeviceKind::Gpu => 4096,
        DeviceKind::Cpu => 1536,
    };
    // Sweep a few LCM multiples like stage 2 and keep the best.
    let lcm = e.params.lcm_block().max(1);
    let mut best = 0.0f64;
    for mult in 1..=4 {
        let n = round_up(base, lcm) * mult / 2;
        let n = round_up(n.max(lcm), lcm);
        if let Some(g) = measure_gflops(&e.params, &dev, n) {
            best = best.max(g);
        }
    }
    best
}

/// Regenerate the fidelity table.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "paperparams",
        "Model fidelity: the paper's Table II winners evaluated in our timing model",
    );
    for precision in [Precision::F64, Precision::F32] {
        let mut t = TextTable::new(
            &format!("{precision}"),
            &[
                "Device",
                "paper GF",
                "paper params in model",
                "our winner in model",
                "model/paper",
                "adapted",
            ],
        );
        for e in all_winners()
            .iter()
            .filter(|e| e.params.precision == precision)
        {
            let model_g = eval_entry(e);
            let ours = lab.best(e.device, precision).best.gflops;
            t.row(vec![
                e.device.name().to_string(),
                gf(e.paper_gflops),
                gf(model_g),
                gf(ours),
                format!("{:.2}", model_g / e.paper_gflops),
                if e.adapted { "yes" } else { "" }.to_string(),
            ]);
        }
        rep.table(t);
    }
    rep.note("'adapted' marks entries whose Table II transcription required adjusting to this generator's constraints (see clgemm::paper_params for the per-entry rationale).");
    rep.note("Acceptance: unadapted entries within ~25% of the paper's number, and never above our winner by more than a whisker.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn unadapted_paper_winners_land_near_their_published_numbers() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            for row in &t.rows {
                if row[5] == "yes" {
                    continue; // adapted entries carry transcription risk
                }
                let ratio: f64 = row[4].parse().unwrap();
                assert!(
                    (0.55..=1.35).contains(&ratio),
                    "{} model/paper ratio {ratio} out of band",
                    row[0]
                );
            }
        }
    }

    #[test]
    fn paper_winners_never_beat_our_full_search_by_much() {
        // (In quick mode our winner comes from the smoke space, so allow
        // the paper's full-space winner to edge it out somewhat.)
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            for row in &t.rows {
                let paper_in_model: f64 = row[2].parse().unwrap();
                let ours: f64 = row[3].parse().unwrap();
                assert!(
                    paper_in_model <= ours * 1.25,
                    "{}: paper params {paper_in_model} vastly beat our search {ours} — the tuner is leaving performance on the table",
                    row[0]
                );
            }
        }
    }
}
