//! Fig. 7 — performance of the fastest `C ← α·AᵀB + β·C` kernels as a
//! function of problem size, for DGEMM and SGEMM on all six processors.

use crate::experiments::sweep_sizes;
use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm::tuner::search::measure_gflops;
use clgemm_blas::layout::round_up;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

/// Regenerate both panels of Fig. 7.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new("fig7", "Fastest kernel GFlop/s vs matrix size (Fig. 7)");
    for precision in [Precision::F64, Precision::F32] {
        let mut t = TextTable::new(
            &format!("{precision} kernels"),
            &[
                "N",
                "Tahiti",
                "Cayman",
                "Kepler",
                "Fermi",
                "Sandy Bridge",
                "Bulldozer",
            ],
        );
        let winners: Vec<_> = DeviceId::TABLE1
            .iter()
            .map(|id| (*id, lab.best(*id, precision).best.params))
            .collect();
        for n in sweep_sizes(6144, 512) {
            let mut cells = vec![n.to_string()];
            for (id, params) in &winners {
                let dev = id.spec();
                let np = round_up(n, params.lcm_block());
                let g = measure_gflops(params, &dev, np).unwrap_or(0.0);
                cells.push(gf(g));
            }
            t.row(cells);
        }
        let chart =
            crate::plot::chart_from_table(&format!("{precision} kernels GFlop/s vs N"), &t, 64, 14);
        rep.table(t);
        rep.note(format!("\n{chart}"));
    }
    rep.note("Paper shape: Tahiti on top for both precisions; GPU curves saturate by N~2000; CPU curves are flat and low; Kepler DGEMM sits below Fermi (few DP units).");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn tahiti_dominates_and_curves_saturate() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        assert_eq!(rep.tables.len(), 2);
        let dgemm = &rep.tables[0];
        // Columns: N, Tahiti, Cayman, Kepler, Fermi, SNB, BD.
        let last = dgemm.rows.last().unwrap();
        let vals: Vec<f64> = last[1..].iter().map(|s| s.parse().unwrap()).collect();
        assert!(vals[0] > vals[1], "Tahiti > Cayman at large N: {vals:?}");
        assert!(vals[3] > vals[2], "Fermi > Kepler for DGEMM: {vals:?}");
        assert!(vals[0] > 5.0 * vals[4], "GPU >> CPU: {vals:?}");
        // Saturation: the last two sizes within 10 %.
        let prev = &dgemm.rows[dgemm.rows.len() - 2];
        let t_last: f64 = last[1].parse().unwrap();
        let t_prev: f64 = prev[1].parse().unwrap();
        assert!((t_last - t_prev).abs() / t_last < 0.10);
    }
}
