//! Table I — processor specifications.

use crate::render::{Report, TextTable};
use clgemm_device::{all_devices, LocalMemType};

/// Regenerate Table I from the device profiles.
#[must_use]
pub fn report() -> Report {
    let mut rep = Report::new("table1", "Processor specification (Table I)");
    let devices = all_devices();

    let mut t = TextTable::new(
        "Specifications",
        &[
            "Row",
            "Tahiti",
            "Cayman",
            "Kepler",
            "Fermi",
            "Sandy Bridge",
            "Bulldozer",
        ],
    );
    let row = |label: &str, f: &dyn Fn(&clgemm_device::DeviceSpec) -> String| {
        let mut cells = vec![label.to_string()];
        cells.extend(devices.iter().map(f));
        cells
    };
    t.row(row("Product name", &|d| d.product_name.clone()));
    t.row(row("Core clock [GHz]", &|d| format!("{}", d.clock_ghz)));
    t.row(row("Compute units", &|d| d.compute_units.to_string()));
    t.row(row("Max DP ops/clock", &|d| d.dp_ops_per_clock.to_string()));
    t.row(row("Max SP ops/clock", &|d| d.sp_ops_per_clock.to_string()));
    t.row(row("Peak DP [GFlop/s]", &|d| {
        format!("{:.1}", d.peak_gflops(true))
    }));
    t.row(row("Peak SP [GFlop/s]", &|d| {
        format!("{:.1}", d.peak_gflops(false))
    }));
    t.row(row("Global memory [GiB]", &|d| {
        format!("{}", d.global_mem_gib)
    }));
    t.row(row("Peak bandwidth [GB/s]", &|d| {
        format!("{}", d.global_bw_gbs)
    }));
    t.row(row("Local memory [KiB]", &|d| d.local_mem_kib.to_string()));
    t.row(row("Local memory type", &|d| match d.local_mem_type {
        LocalMemType::Scratchpad => "Scratchpad".to_string(),
        LocalMemType::GlobalBacked => "Global".to_string(),
    }));
    t.row(row("OpenCL SDK", &|d| d.sdk.clone()));
    rep.table(t);
    rep.note("Values transcribed from Table I; peaks are clock x ops/clock at the listed clock (Kepler's boost is modelled separately).");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_peaks() {
        let rep = report();
        let text = rep.to_text();
        // Computed as clock x ops/clock, so they carry one decimal; the
        // paper's Table I rounds (947, 676, 665, 3789, 2703, 2916, 1331).
        for expected in [
            "947.2", "675.8", "665.6", "158.4", "115.2", "3788.8", "2703.4", "2916.5", "1331.2",
            "316.8", "230.4",
        ] {
            assert!(text.contains(expected), "missing {expected} in:\n{text}");
        }
        assert!(text.contains("Scratchpad"));
        assert!(text.contains("Global"));
    }
}
