//! Fig. 9 — DGEMM and SGEMM `C ← αAB + βC` routine performance on the
//! Tahiti GPU: this study vs the authors' previous study vs AMD clBLAS.

use crate::experiments::sweep_sizes;
use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_vendor::{libraries_for, previous_study};

/// Regenerate both panels of Fig. 9.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "fig9",
        "Tahiti GEMM (NN) routine vs clBLAS vs previous study (Fig. 9)",
    );
    let tg = lab.tuned_gemm(DeviceId::Tahiti);
    let clblas = &libraries_for(DeviceId::Tahiti)[0];
    let prev = previous_study();
    for precision in [Precision::F64, Precision::F32] {
        let dp = precision == Precision::F64;
        let mut t = TextTable::new(
            &format!("{precision}"),
            &["N", "This study", "Previous study", "clBLAS"],
        );
        for n in sweep_sizes(6144, 512) {
            t.row(vec![
                n.to_string(),
                gf(tg.predict(dp, GemmType::NN, n, n, n).gflops),
                gf(prev.gflops(precision, GemmType::NN, n)),
                gf(clblas.gflops(precision, GemmType::NN, n)),
            ]);
        }
        let chart = crate::plot::chart_from_table(&format!("{precision} GFlop/s vs N"), &t, 64, 14);
        rep.table(t);
        rep.note(format!("\n{chart}"));
    }
    rep.note("Paper shape: this study highest at large N (852 DGEMM / 2989 SGEMM vs clBLAS 647 / 2468); our routine is NOT fast at small N because the O(N^2) copy dominates there.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    fn col(t: &TextTable, j: usize) -> Vec<f64> {
        t.rows.iter().map(|r| r[j].parse().unwrap()).collect()
    }

    #[test]
    fn this_study_wins_at_large_n() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            let ours = col(t, 1);
            let prev = col(t, 2);
            let clblas = col(t, 3);
            let last = ours.len() - 1;
            assert!(
                ours[last] > clblas[last],
                "ours {} vs clBLAS {}",
                ours[last],
                clblas[last]
            );
            // Quick mode searches a thinned space, so allow a small slack
            // against the previous-study curve; the full run clears it.
            assert!(
                ours[last] > 0.92 * prev[last],
                "ours {} vs previous {}",
                ours[last],
                prev[last]
            );
        }
    }

    #[test]
    fn copy_overhead_shows_at_small_n() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0];
        let ours = col(t, 1);
        // Relative to its own max, the smallest size must be well below
        // saturation (the crossover evidence).
        let max = ours.iter().cloned().fold(0.0, f64::max);
        assert!(
            ours[0] < 0.8 * max,
            "small-N penalty missing: {} vs max {max}",
            ours[0]
        );
    }
}
