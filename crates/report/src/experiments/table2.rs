//! Table II — parameters of the fastest kernel and the maximum
//! performance per processor and precision.

use crate::lab::Lab;
use crate::render::{gf, pct, Report, TextTable};
use clgemm::params::KernelParams;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

fn param_rows(t: &mut TextTable, entries: &[(DeviceId, KernelParams, f64, f64)]) {
    let row = |label: &str,
               f: &dyn Fn(&KernelParams) -> String,
               extra: &dyn Fn(usize) -> Option<String>| {
        let mut cells = vec![label.to_string()];
        for (i, (_, p, _, _)) in entries.iter().enumerate() {
            cells.push(extra(i).unwrap_or_else(|| f(p)));
        }
        cells
    };
    let none = |_: usize| -> Option<String> { None };
    t.row(row(
        "Mwg,Nwg,Kwg",
        &|p| format!("{},{},{}", p.mwg, p.nwg, p.kwg),
        &none,
    ));
    t.row(row(
        "Mwi,Nwi,Kwi",
        &|p| format!("{},{},{}", p.mwi(), p.nwi(), p.kwi),
        &none,
    ));
    t.row(row(
        "MdimC,NdimC",
        &|p| format!("{},{}", p.mdimc, p.ndimc),
        &none,
    ));
    t.row(row(
        "MdimA,KdimA",
        &|p| format!("{},{}", p.mdima, p.kdima()),
        &none,
    ));
    t.row(row(
        "KdimB,NdimB",
        &|p| format!("{},{}", p.kdimb(), p.ndimb),
        &none,
    ));
    t.row(row("Vector width", &|p| p.vw.to_string(), &none));
    t.row(row(
        "Non-unit stride",
        &|p| match (p.stride_m.is_non_unit(), p.stride_n.is_non_unit()) {
            (true, true) => "M,N".into(),
            (true, false) => "M".into(),
            (false, true) => "N".into(),
            (false, false) => "-".into(),
        },
        &none,
    ));
    t.row(row(
        "Shared (local mem)",
        &|p| match (p.local_a, p.local_b) {
            (true, true) => "A,B".into(),
            (true, false) => "A".into(),
            (false, true) => "B".into(),
            (false, false) => "-".into(),
        },
        &none,
    ));
    t.row(row(
        "Layout A,B",
        &|p| format!("{},{}", p.layout_a.tag(), p.layout_b.tag()),
        &none,
    ));
    t.row(row("Algorithm", &|p| p.algorithm.tag().to_string(), &none));
    let gfrow: Vec<String> = std::iter::once("GFlop/s".to_string())
        .chain(entries.iter().map(|(_, _, g, _)| gf(*g)))
        .collect();
    t.row(gfrow);
    let effrow: Vec<String> = std::iter::once("Efficiency".to_string())
        .chain(entries.iter().map(|(_, _, _, e)| pct(*e)))
        .collect();
    t.row(effrow);
}

/// Regenerate Table II.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "table2",
        "Best kernel parameters and maximum performance (Table II)",
    );
    for precision in [Precision::F64, Precision::F32] {
        let entries: Vec<_> = DeviceId::TABLE1
            .iter()
            .map(|id| {
                let r = lab.best(*id, precision);
                (*id, r.best.params, r.best.gflops, r.efficiency)
            })
            .collect();
        let mut t = TextTable::new(
            &format!("{precision}"),
            &[
                "Parameter",
                "Tahiti",
                "Cayman",
                "Kepler",
                "Fermi",
                "Sandy Bridge",
                "Bulldozer",
            ],
        );
        param_rows(&mut t, &entries);
        rep.table(t);
    }
    rep.note("Paper maxima: DGEMM 863/580/128/370/64/37 GFlop/s (91/86/105/56/40/32 % of listed peak); SGEMM 3047/2167/1440/896/140/87 (80/80/49/67/44/38 %). Kepler exceeds 100 % of its listed peak because the overclocked card boosts above the listed clock.");
    rep.note("All winners use block-major layouts, reproducing the paper's key observation; the exact winning blocking factors are model-dependent and may differ from the paper's.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn table2_has_12_winners_with_block_major_layouts() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        assert_eq!(rep.tables.len(), 2);
        for t in &rep.tables {
            assert_eq!(t.headers.len(), 7);
            let layout_row = t.rows.iter().find(|r| r[0] == "Layout A,B").unwrap();
            for cell in &layout_row[1..] {
                assert!(
                    cell.contains("CBL") || cell.contains("RBL"),
                    "winner should use block-major layouts, got {cell}"
                );
            }
        }
    }

    #[test]
    fn efficiency_row_is_sane() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let eff_row = rep.tables[0]
            .rows
            .iter()
            .find(|r| r[0] == "Efficiency")
            .unwrap();
        for cell in &eff_row[1..] {
            let v: f64 = cell.trim_end_matches('%').parse().unwrap();
            assert!(v > 5.0 && v < 140.0, "{cell}");
        }
    }
}
