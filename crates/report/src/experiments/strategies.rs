//! Extension experiment — sample-efficiency of alternative search
//! strategies over the same candidate space (the paper measures every
//! heuristically chosen variant; on real hardware that costs 5+ hours per
//! device, so the evaluations-vs-quality trade-off matters).

use crate::lab::{Lab, Quality};
use crate::render::{gf, Report, TextTable};
use clgemm::tuner::{tune_with_strategy, SearchSpace, Strategy};
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

/// Regenerate the strategy comparison.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "strategies",
        "EXTENSION: search-strategy sample efficiency (exhaustive vs random/CD/annealing)",
    );
    let dev = DeviceId::Tahiti.spec();
    // Quality is inferred from the lab's options (quick labs get the
    // smoke space so tests stay fast).
    let space = if lab.opts().top_k <= 8 {
        SearchSpace::smoke(&dev)
    } else {
        SearchSpace::for_device(&dev)
    };

    let mut t = TextTable::new(
        "Tahiti DGEMM, stage-1 objective",
        &[
            "Strategy",
            "best GF",
            "evaluations",
            "evals % of space",
            "GF % of exhaustive",
        ],
    );
    let exhaustive = tune_with_strategy(&dev, Precision::F64, &space, Strategy::Exhaustive);
    let budgeted = [
        ("Exhaustive (paper)", Strategy::Exhaustive),
        (
            "Random 1%",
            Strategy::Random {
                samples: exhaustive.space_size / 100 + 1,
                seed: 42,
            },
        ),
        (
            "Coordinate descent x4",
            Strategy::CoordinateDescent {
                restarts: 4,
                seed: 42,
            },
        ),
        (
            "Simulated annealing",
            Strategy::Anneal {
                iters: exhaustive.space_size / 100 + 1,
                seed: 42,
            },
        ),
    ];
    for (name, strat) in budgeted {
        let res = if matches!(strat, Strategy::Exhaustive) {
            exhaustive.clone()
        } else {
            tune_with_strategy(&dev, Precision::F64, &space, strat)
        };
        t.row(vec![
            name.to_string(),
            gf(res.best.gflops),
            res.evaluations.to_string(),
            format!(
                "{:.2}%",
                100.0 * res.evaluations as f64 / res.space_size as f64
            ),
            format!("{:.1}%", 100.0 * res.best.gflops / exhaustive.best.gflops),
        ]);
    }
    rep.table(t);
    rep.note("Expected shape: coordinate descent reaches ~95-100% of the exhaustive optimum with well under 5% of the evaluations — the sample-efficiency argument behind search-based auto-tuners like ATLAS.");
    let _ = Quality::Quick; // quality handled through the lab's options
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_table_is_consistent() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0];
        assert_eq!(t.rows.len(), 4);
        // Exhaustive is 100 % of itself and uses 100 % of the space.
        assert_eq!(t.rows[0][4], "100.0%");
        assert_eq!(t.rows[0][3], "100.00%");
        // No strategy exceeds the exhaustive optimum.
        for row in &t.rows {
            let pct: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(pct <= 100.0 + 1e-9, "{row:?}");
            assert!(pct > 30.0, "strategy collapsed: {row:?}");
        }
        // Coordinate descent must be sample-efficient.
        let cd_evals: f64 = t.rows[2][3].trim_end_matches('%').parse().unwrap();
        assert!(cd_evals < 100.0);
    }
}
