//! §IV-A textual claims as explicit ablation experiments:
//!
//! 1. **Local memory**: best kernel with vs without local memory per
//!    device (paper: Kepler SGEMM drops 1440 → 1150 without; Cayman runs
//!    *slower* with local memory; CPUs barely change).
//! 2. **Block-major layouts**: best kernel restricted to row-major
//!    layouts (paper: Tahiti DGEMM 863 → 837, with drastic deterioration
//!    at sizes that are multiples of 2048 due to channel conflicts).
//! 3. **Cypress cross-check** (§IV-C): our tuner on the HD 5870 vs
//!    Nakasato's IL kernels (498) and Du et al. (308).

use crate::lab::{Lab, Restriction};
use crate::render::{gf, pct, Report, TextTable};
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::{tune, SearchSpace};
use clgemm_blas::layout::round_up;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;
use clgemm_vendor::libraries_for;

/// Regenerate the §IV-A/§IV-C ablations.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "ablations",
        "Local-memory, layout and Cypress ablations (§IV-A/§IV-C)",
    );

    // --- 1. local memory -----------------------------------------------
    for precision in [Precision::F64, Precision::F32] {
        let mut t = TextTable::new(
            &format!("{precision}: local memory on/off"),
            &["Device", "best GF", "no-local GF", "no-local / best"],
        );
        for id in DeviceId::TABLE1 {
            let best = lab.best(id, precision).best.gflops;
            let off = lab.tuned(id, precision, Restriction::NoLocal).best.gflops;
            t.row(vec![
                id.name().to_string(),
                gf(best),
                gf(off),
                format!("{:.3}", off / best),
            ]);
        }
        rep.table(t);
    }

    // --- 2. block-major layouts -----------------------------------------
    let mut t = TextTable::new(
        "DGEMM: row-major-only restriction and the power-of-two cliff (Tahiti)",
        &["Quantity", "Value"],
    );
    let best = lab.best(DeviceId::Tahiti, Precision::F64).best.clone();
    let rm = lab
        .tuned(DeviceId::Tahiti, Precision::F64, Restriction::RowMajorOnly)
        .best
        .clone();
    t.row(vec!["best (block-major) GF".into(), gf(best.gflops)]);
    t.row(vec!["best row-major-only GF".into(), gf(rm.gflops)]);
    t.row(vec![
        "row-major / block-major".into(),
        format!("{:.3}", rm.gflops / best.gflops),
    ]);
    // The cliff: the row-major winner at N=4096 (multiple of 2048) vs a
    // neighbouring non-pow2 size.
    let dev = DeviceId::Tahiti.spec();
    let lcm = rm.params.lcm_block().max(1);
    let n_bad = round_up(4096, clgemm::params::lcm(lcm, 2048));
    let n_good = n_bad + lcm;
    let g_bad = measure_gflops(&rm.params, &dev, n_bad).unwrap_or(0.0);
    let g_good = measure_gflops(&rm.params, &dev, n_good).unwrap_or(0.0);
    t.row(vec![
        format!("row-major at N={n_bad} (pow2 multiple)"),
        gf(g_bad),
    ]);
    t.row(vec![format!("row-major at N={n_good}"), gf(g_good)]);
    t.row(vec![
        "pow2 / neighbour".into(),
        format!("{:.3}", g_bad / g_good),
    ]);
    rep.table(t);

    // --- 3. Cypress (§IV-C) ----------------------------------------------
    let cy = DeviceId::Cypress.spec();
    let space = match lab.opts().top_k {
        k if k <= 8 => SearchSpace::smoke(&cy),
        _ => SearchSpace::for_device(&cy),
    };
    let ours = tune(&cy, Precision::F64, &space, &lab.opts());
    let mut t = TextTable::new(
        "Cypress (HD 5870) DGEMM cross-check (§IV-C)",
        &["Impl.", "GF", "Efficiency"],
    );
    t.row(vec![
        "Ours (auto-tuned OpenCL)".into(),
        gf(ours.best.gflops),
        pct(ours.efficiency),
    ]);
    for lib in libraries_for(DeviceId::Cypress) {
        let g = lib.max_gflops(Precision::F64, clgemm_blas::GemmType::NN);
        t.row(vec![lib.name.clone(), gf(g), pct(g / cy.peak_gflops(true))]);
    }
    rep.table(t);

    // --- 4. host<->device transfers (Table I footnote) ------------------
    let mut t = TextTable::new(
        "What including PCIe transfers would do (Tahiti DGEMM kernel)",
        &["N", "kernel GF", "incl. transfers GF", "fraction kept"],
    );
    let tahiti = DeviceId::Tahiti.spec();
    let best_t = lab.best(DeviceId::Tahiti, Precision::F64).best.clone();
    for n in [512usize, 1024, 2048, 4096, 8192] {
        let np = clgemm_blas::layout::round_up(n, best_t.params.lcm_block());
        let Some(g) = measure_gflops(&best_t.params, &tahiti, np) else {
            continue;
        };
        let kernel_s = 2.0 * (np as f64).powi(3) / (g * 1e9);
        let with = clgemm_sim::gflops_with_transfers(&tahiti, np, 8, kernel_s);
        t.row(vec![
            np.to_string(),
            gf(g),
            gf(with),
            format!("{:.2}", with / g),
        ]);
    }
    rep.table(t);
    rep.note("The paper excludes host<->device transfers; the table shows why that is defensible at large N (O(N^2) bus traffic vs O(N^3) flops) and fatal at small N.");

    rep.note("Paper anchors: Kepler SGEMM 1440 -> 1150 without local memory; Cayman prefers no local memory (barrier cost); CPUs indifferent; Tahiti DGEMM 863 -> 837 row-major with a drastic pow2-multiple cliff; Cypress ours 495 vs Nakasato 498 vs Du et al. 308.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn cayman_and_cpus_lose_nothing_without_local_memory() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        // DGEMM table: Device, best, no-local, ratio.
        let t = &rep.tables[0];
        for dev in ["Cayman", "Sandy Bridge", "Bulldozer"] {
            let row = t.rows.iter().find(|r| r[0] == dev).unwrap();
            let ratio: f64 = row[3].parse().unwrap();
            assert!(
                ratio > 0.97,
                "{dev} should be ~indifferent to local memory, got {ratio}"
            );
        }
    }

    #[test]
    fn pow2_cliff_exists_for_row_major() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = rep
            .tables
            .iter()
            .find(|t| t.title.contains("row-major"))
            .unwrap();
        let cliff_row = t.rows.iter().find(|r| r[0].starts_with("pow2 /")).unwrap();
        let ratio: f64 = cliff_row[1].parse().unwrap();
        assert!(
            ratio < 0.75,
            "pow2-multiple sizes must deteriorate drastically, got {ratio}"
        );
        let rel_row = t
            .rows
            .iter()
            .find(|r| r[0].starts_with("row-major / block"))
            .unwrap();
        let rel: f64 = rel_row[1].parse().unwrap();
        assert!(
            rel > 0.85 && rel <= 1.0,
            "row-major loses a little off-cliff: {rel}"
        );
    }

    #[test]
    fn cypress_matches_nakasato_and_beats_du() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = rep
            .tables
            .iter()
            .find(|t| t.title.contains("Cypress"))
            .unwrap();
        let ours: f64 = t.rows[0][1].parse().unwrap();
        let nakasato: f64 = t.rows[1][1].parse().unwrap();
        let du: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            (ours / nakasato - 1.0).abs() < 0.15,
            "ours {ours} ~ Nakasato {nakasato}"
        );
        assert!(ours > 1.3 * du, "ours {ours} well above Du et al. {du}");
    }

    #[test]
    fn kepler_sgemm_needs_local_memory() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let sgemm = &rep.tables[1];
        let kepler = sgemm.rows.iter().find(|r| r[0] == "Kepler").unwrap();
        let ratio: f64 = kepler[3].parse().unwrap();
        assert!(
            ratio < 0.97,
            "Kepler SGEMM should lose without local memory, got {ratio}"
        );
    }
}
