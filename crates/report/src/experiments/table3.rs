//! Table III — maximum performance of the full GEMM routines (copy +
//! kernel, column-major API) against vendor libraries, for all four GEMM
//! types.

use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_vendor::libraries_for;

/// Maximum routine GFlop/s over the size sweep for one type.
fn our_max(lab: &mut Lab, id: DeviceId, precision: Precision, ty: GemmType) -> f64 {
    let tg = lab.tuned_gemm(id);
    let dp = precision == Precision::F64;
    let mut best = 0.0f64;
    for n in [1024usize, 2048, 3072, 4096, 5120, 6144, 8192] {
        best = best.max(tg.predict(dp, ty, n, n, n).gflops);
    }
    best
}

/// Regenerate Table III.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "table3",
        "Maximum GFlop/s of our GEMM implementations vs vendor libraries, column-major (Table III)",
    );
    for precision in [Precision::F64, Precision::F32] {
        let mut t = TextTable::new(
            &format!("{precision}"),
            &["Device", "Impl.", "NN", "NT", "TN", "TT"],
        );
        for id in DeviceId::TABLE1 {
            let mut ours = vec![id.name().to_string(), "Ours".to_string()];
            for ty in GemmType::ALL {
                ours.push(gf(our_max(lab, id, precision, ty)));
            }
            t.row(ours);
            for lib in libraries_for(id) {
                if !lib.supports(precision) || lib.name.contains("ATLAS") {
                    // ATLAS belongs to Fig. 11, not Table III.
                    continue;
                }
                if lib.name.contains("MAGMA") {
                    // MAGMA belongs to Fig. 10, not Table III.
                    continue;
                }
                let mut row = vec![String::new(), lib.name.clone()];
                for ty in GemmType::ALL {
                    row.push(gf(lib.max_gflops(precision, ty)));
                }
                t.row(row);
            }
        }
        rep.table(t);
    }
    rep.note("Paper shape: ours beats clBLAS on both AMD GPUs for every type; comparable to CUBLAS on NVIDIA; roughly half of MKL/ACML on the CPUs; our rows are nearly type-independent while clBLAS TN is the weak type.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    fn parse_rows(lab: &mut Lab) -> Vec<(String, String, Vec<f64>)> {
        let rep = report(lab);
        let mut out = Vec::new();
        let mut device = String::new();
        for t in &rep.tables {
            for row in &t.rows {
                if !row[0].is_empty() {
                    device = row[0].clone();
                }
                let vals: Vec<f64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
                out.push((device.clone(), row[1].clone(), vals));
            }
        }
        out
    }

    #[test]
    fn ours_beats_clblas_on_amd_gpus() {
        let mut lab = Lab::new(Quality::Quick);
        let rows = parse_rows(&mut lab);
        for dev in ["Tahiti", "Cayman"] {
            let ours = rows
                .iter()
                .find(|(d, i, _)| d == dev && i == "Ours")
                .unwrap();
            let clblas = rows
                .iter()
                .find(|(d, i, _)| d == dev && i.contains("clBLAS"))
                .unwrap();
            for (o, v) in ours.2.iter().zip(&clblas.2) {
                assert!(o > v, "{dev}: ours {o} must beat clBLAS {v}");
            }
        }
    }

    #[test]
    fn cpus_lose_to_vendor_libraries() {
        let mut lab = Lab::new(Quality::Quick);
        let rows = parse_rows(&mut lab);
        for (dev, lib) in [("Sandy Bridge", "MKL"), ("Bulldozer", "ACML")] {
            let ours = rows
                .iter()
                .find(|(d, i, _)| d == dev && i == "Ours")
                .unwrap();
            let vendor = rows
                .iter()
                .find(|(d, i, _)| d == dev && i.contains(lib))
                .unwrap();
            for (o, v) in ours.2.iter().zip(&vendor.2) {
                assert!(o < v, "{dev}: ours {o} must trail {lib} {v}");
            }
        }
    }

    #[test]
    fn our_rows_are_type_insensitive() {
        let mut lab = Lab::new(Quality::Quick);
        let rows = parse_rows(&mut lab);
        for (dev, imp, vals) in &rows {
            if imp == "Ours" {
                let max = vals.iter().cloned().fold(0.0, f64::max);
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(max / min < 1.15, "{dev} ours spread too wide: {vals:?}");
            }
        }
    }

    #[test]
    fn comparable_to_cublas_on_nvidia() {
        let mut lab = Lab::new(Quality::Quick);
        let rows = parse_rows(&mut lab);
        for dev in ["Kepler", "Fermi"] {
            let ours = rows
                .iter()
                .find(|(d, i, _)| d == dev && i == "Ours")
                .unwrap();
            let cublas = rows
                .iter()
                .find(|(d, i, _)| d == dev && i.contains("CUBLAS"))
                .unwrap();
            for (o, v) in ours.2.iter().zip(&cublas.2) {
                let ratio = o / v;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{dev}: ours {o} vs CUBLAS {v} not comparable"
                );
            }
        }
    }
}
