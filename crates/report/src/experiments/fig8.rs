//! Fig. 8 — relative performance of the three GEMM algorithms (BA, PL,
//! DB) with respect to each processor's overall best kernel.

use crate::lab::Lab;
use crate::render::{Report, TextTable};
use clgemm::params::Algorithm;
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

/// Regenerate Fig. 8.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "fig8",
        "Relative performance of BA/PL/DB algorithms vs the overall best (Fig. 8)",
    );
    for precision in [Precision::F64, Precision::F32] {
        let mut t = TextTable::new(
            &format!("{precision}"),
            &["Device", "best GF", "BA", "PL", "DB"],
        );
        for id in DeviceId::TABLE1 {
            let best = lab.best(id, precision).best.gflops;
            let mut cells = vec![id.name().to_string(), crate::render::gf(best)];
            for alg in Algorithm::ALL {
                let r = lab.tuned(id, precision, Lab::algo_restriction(alg));
                cells.push(format!("{:.3}", r.best.gflops / best));
            }
            t.row(cells);
        }
        rep.table(t);
    }
    rep.note("Paper shape: BA clearly best on Tahiti; the best algorithm differs per device and precision elsewhere; CPU variation is small. (The paper also notes PL DGEMM kernels always fail to execute on Bulldozer — an SDK defect we do not emulate.)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn relative_values_are_at_most_one() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            for row in &t.rows {
                for cell in &row[2..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v > 0.0 && v <= 1.0 + 1e-9, "relative perf {v} out of range");
                }
            }
        }
    }

    #[test]
    fn ba_is_best_on_tahiti() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            let tahiti = &t.rows[0];
            let ba: f64 = tahiti[2].parse().unwrap();
            let pl: f64 = tahiti[3].parse().unwrap();
            let db: f64 = tahiti[4].parse().unwrap();
            assert!(
                ba >= pl && ba >= db,
                "BA must lead on Tahiti: {ba} {pl} {db}"
            );
            assert!(ba > 0.99, "unrestricted winner on Tahiti is BA");
        }
    }

    #[test]
    fn cpu_variation_is_smaller_than_gpu_variation() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let t = &rep.tables[0]; // DGEMM
        let spread = |row: &Vec<String>| -> f64 {
            let v: Vec<f64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
            let max = v.iter().cloned().fold(0.0, f64::max);
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        };
        let snb = spread(&t.rows[4]);
        let tahiti = spread(&t.rows[0]);
        assert!(
            snb <= tahiti + 0.25,
            "CPU algorithm spread ({snb:.3}) should not dwarf Tahiti's ({tahiti:.3})"
        );
    }
}
