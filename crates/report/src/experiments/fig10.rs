//! Fig. 10 — GEMM (NN) routine performance on the Fermi and Kepler GPUs
//! vs CUBLAS and MAGMA.

use crate::experiments::sweep_sizes;
use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_vendor::libraries_for;

/// Regenerate both panels of Fig. 10.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "fig10",
        "Fermi/Kepler GEMM (NN) vs CUBLAS and MAGMA (Fig. 10)",
    );
    let fermi = lab.tuned_gemm(DeviceId::Fermi);
    let kepler = lab.tuned_gemm(DeviceId::Kepler);
    let fermi_libs = libraries_for(DeviceId::Fermi);
    let kepler_libs = libraries_for(DeviceId::Kepler);
    let cublas4 = fermi_libs
        .iter()
        .find(|l| l.name.contains("CUBLAS"))
        .expect("cublas4");
    let magma = fermi_libs
        .iter()
        .find(|l| l.name.contains("MAGMA"))
        .expect("magma");
    let cublas5 = &kepler_libs[0];

    for precision in [Precision::F64, Precision::F32] {
        let dp = precision == Precision::F64;
        let mut t = TextTable::new(
            &format!("{precision}"),
            &[
                "N",
                "CUBLAS 4.1 (Fermi)",
                "MAGMA 1.2.1 (Fermi)",
                "Ours (Fermi)",
                "Ours (Kepler)",
                "CUBLAS 5.0 (Kepler)",
            ],
        );
        for n in sweep_sizes(6144, 512) {
            t.row(vec![
                n.to_string(),
                gf(cublas4.gflops(precision, GemmType::NN, n)),
                gf(magma.gflops(precision, GemmType::NN, n)),
                gf(fermi.predict(dp, GemmType::NN, n, n, n).gflops),
                gf(kepler.predict(dp, GemmType::NN, n, n, n).gflops),
                gf(cublas5.gflops(precision, GemmType::NN, n)),
            ]);
        }
        let chart = crate::plot::chart_from_table(&format!("{precision} GFlop/s vs N"), &t, 64, 14);
        rep.table(t);
        rep.note(format!("\n{chart}"));
    }
    rep.note("Paper shape: our OpenCL routine is comparable to the CUDA libraries — CUBLAS 4.1 slightly ahead for Fermi DGEMM, ours ahead for Fermi SGEMM; Kepler ours ~ CUBLAS 5.0 for both precisions.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn ours_is_comparable_to_cuda_libraries_at_large_n() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        for t in &rep.tables {
            let last = t.rows.last().unwrap();
            let cublas4: f64 = last[1].parse().unwrap();
            let ours_fermi: f64 = last[3].parse().unwrap();
            let ours_kepler: f64 = last[4].parse().unwrap();
            let cublas5: f64 = last[5].parse().unwrap();
            assert!(
                (0.5..2.0).contains(&(ours_fermi / cublas4)),
                "{ours_fermi} vs {cublas4}"
            );
            assert!(
                (0.5..2.0).contains(&(ours_kepler / cublas5)),
                "{ours_kepler} vs {cublas5}"
            );
        }
    }

    #[test]
    fn fermi_dgemm_beats_kepler_dgemm() {
        // GK104 has almost no DP hardware; Fermi's tesla card is ~3x
        // faster for DGEMM — visible in the figure's lower panel.
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let dgemm = &rep.tables[0];
        let last = dgemm.rows.last().unwrap();
        let fermi: f64 = last[3].parse().unwrap();
        let kepler: f64 = last[4].parse().unwrap();
        assert!(fermi > 2.0 * kepler);
    }
}
