//! Extension experiment — what the observability layer sees. Serves a
//! deadline-laden workload against an isolated metrics registry and
//! tables the request-lifecycle percentiles, the modelled-vs-actual
//! drift per device, and the routine phase spans of one traced GEMM —
//! the same data `clgemm_trace` exports as Prometheus text and JSON.

use crate::lab::Lab;
use crate::render::{Report, TextTable};
use clgemm::params::{small_test_params, tahiti_dgemm_best};
use clgemm::routine::TunedGemm;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig};
use clgemm_shim::Rng;
use clgemm_trace::hist::HistSummary;
use clgemm_trace::Registry;

fn hist_row(name: &str, h: &HistSummary, unit_scale: f64) -> Vec<String> {
    vec![
        name.to_string(),
        h.count.to_string(),
        format!("{:.3}", h.p50 * unit_scale),
        format!("{:.3}", h.p95 * unit_scale),
        format!("{:.3}", h.p99 * unit_scale),
        format!("{:.3}", h.max * unit_scale),
    ]
}

/// Regenerate the observability tables.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "observability",
        "EXTENSION: one snapshot of the clgemm-trace layer under load",
    );
    let n_requests = if lab.opts().top_k <= 8 { 24 } else { 72 };

    // ---- serve a deadline-laden workload against a private registry --
    let registry = Registry::new();
    let mut server = GemmServer::new(
        vec![
            DeviceId::Tahiti.spec(),
            DeviceId::Cayman.spec(),
            DeviceId::Fermi.spec(),
        ],
        ServeConfig {
            max_batch: 4,
            queue_capacity: n_requests,
            registry: Some(registry.clone()),
            ..Default::default()
        },
    );
    let mut rng = Rng::new(2026);
    let popular = [48usize, 96, 120];
    for i in 0..n_requests {
        let n = popular[rng.range(0, popular.len())];
        let req = GemmRequest::new(
            GemmType::ALL[rng.range(0, 4)],
            GemmPayload::F64 {
                alpha: 1.0,
                a: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                b: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                beta: 0.5,
                c: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
            },
        );
        // Every fourth request carries a (generous) deadline so the
        // slack histogram fills alongside the queue-wait one.
        let req = if i % 4 == 0 {
            req.with_deadline(120.0)
        } else {
            req
        };
        server.submit(req).expect("queue sized for the workload");
        if i % 8 == 7 {
            server.drain();
        }
    }
    server.drain();
    let stats = server.stats();

    let mut t = TextTable::new(
        &format!("{n_requests} mixed DGEMM requests, lifecycle histograms"),
        &["Histogram", "Count", "p50", "p95", "p99", "Max"],
    );
    t.row(hist_row("queue wait (ms)", &stats.queue_wait, 1e3));
    t.row(hist_row("batch size (requests)", &stats.batch_size, 1.0));
    t.row(hist_row(
        "deadline slack (virtual s)",
        &stats.deadline_slack,
        1.0,
    ));
    t.row(hist_row(
        "|modelled - wall| (ms)",
        &stats.model_drift_abs,
        1e3,
    ));
    rep.table(t);

    // ---- modelled-vs-actual drift per device -------------------------
    let mut t = TextTable::new(
        "modelled busy vs measured wall time per device",
        &["Device", "Requests", "Modelled ms", "Wall ms", "Drift ms"],
    );
    for (device, d) in &stats.per_device {
        t.row(vec![
            device.clone(),
            d.requests.to_string(),
            format!("{:.3}", d.busy_seconds * 1e3),
            format!("{:.3}", d.wall_seconds * 1e3),
            format!("{:+.3}", d.drift() * 1e3),
        ]);
    }
    rep.table(t);

    // ---- routine phase spans of one traced call ----------------------
    let was_enabled = clgemm_trace::enabled();
    clgemm_trace::set_enabled(true);
    let tuned = TunedGemm::new(
        DeviceId::Tahiti.spec(),
        tahiti_dgemm_best(),
        small_test_params(Precision::F32),
    );
    let n = 256;
    let a = Matrix::<f64>::test_pattern(n, n, StorageOrder::ColMajor, 1);
    let b = Matrix::<f64>::test_pattern(n, n, StorageOrder::ColMajor, 2);
    let mut c = Matrix::<f64>::zeros(n, n, StorageOrder::ColMajor);
    // A unique tag keeps concurrent report() invocations (the
    // all-experiments test runs in a threaded harness) from picking up
    // each other's wrapping span.
    static INVOCATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let tag = INVOCATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    {
        let _obs = clgemm_trace::span!("report.observability", tag);
        tuned.gemm(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
        // Guard drops here, committing the wrapping span to the ring.
    }
    let outer = clgemm_trace::ring::all_events()
        .into_iter()
        .find(|e| e.name == "report.observability" && e.tag == tag);
    clgemm_trace::set_enabled(was_enabled);
    let outer = outer.expect("the wrapping span must be recorded");
    let phases = clgemm_trace::ring::all_events();
    let mut t = TextTable::new(
        &format!("routine spans inside one traced {n}^3 DGEMM call"),
        &["Span", "Depth", "Wall us"],
    );
    for e in phases
        .iter()
        .filter(|e| e.thread == outer.thread && outer.contains(e) && e.name != outer.name)
    {
        t.row(vec![
            e.name.to_string(),
            e.depth.to_string(),
            format!("{:.1}", e.dur_ns as f64 / 1e3),
        ]);
    }
    rep.table(t);

    rep.note(
        "Queue-wait and drift values are wall-clock measurements and \
         vary run to run; counts, batch sizes and the span structure \
         are deterministic. The same registry renders to Prometheus \
         text and JSON via clgemm_trace::export, and `cargo run -p \
         clgemm-bench --example stats` prints all three forms while \
         asserting that no registered metric is dead.",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn observability_tables_cover_all_layers() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        assert_eq!(rep.tables.len(), 3);

        // Lifecycle histograms: every request waited in the queue, and
        // the deadline'd quarter of the workload recorded slack.
        let hist = &rep.tables[0];
        let count = |row: usize| hist.rows[row][1].parse::<u64>().unwrap();
        assert_eq!(count(0), 24, "queue-wait count covers the workload");
        assert_eq!(count(2), 6, "every fourth request carried a deadline");
        assert!(count(1) > 0 && count(3) > 0);

        // Drift table: some device served something, and wall time was
        // actually measured (a zero wall column would mean the serving
        // layer stopped timing batches).
        let drift = &rep.tables[1];
        assert!(!drift.rows.is_empty());
        let requests: u64 = drift
            .rows
            .iter()
            .map(|r| r[1].parse::<u64>().unwrap())
            .sum();
        assert_eq!(requests, 24);
        assert!(drift
            .rows
            .iter()
            .any(|r| r[3].parse::<f64>().unwrap() > 0.0));

        // Span table: the packed fast path records its phase splits.
        let spans = &rep.tables[2];
        let names: Vec<&str> = spans.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(names.contains(&"routine.gemm"));
        assert!(names.contains(&"routine.pack_a"));
        assert!(names.contains(&"routine.kernel"));
    }
}
