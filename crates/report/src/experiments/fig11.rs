//! Fig. 11 — DGEMM routine performance on the Sandy Bridge CPU: Intel
//! MKL vs ATLAS vs our implementation under two Intel OpenCL SDKs.

use crate::experiments::sweep_sizes;
use crate::lab::Lab;
use crate::render::{gf, Report, TextTable};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_vendor::libraries_for;

/// The paper reports the 2013-beta SDK improved our kernels by ~20 % over
/// the 2012 SDK; the older SDK is modelled as this derating of the same
/// tuned routine.
pub const SDK_2012_FACTOR: f64 = 1.0 / 1.20;

/// Regenerate Fig. 11.
#[must_use]
pub fn report(lab: &mut Lab) -> Report {
    let mut rep = Report::new(
        "fig11",
        "Sandy Bridge DGEMM: MKL vs ATLAS vs ours under two OpenCL SDKs (Fig. 11)",
    );
    let tg = lab.tuned_gemm(DeviceId::SandyBridge);
    let libs = libraries_for(DeviceId::SandyBridge);
    let mkl = libs.iter().find(|l| l.name.contains("MKL")).expect("mkl");
    let atlas = libs
        .iter()
        .find(|l| l.name.contains("ATLAS"))
        .expect("atlas");

    let mut t = TextTable::new(
        "DGEMM (NN)",
        &[
            "N",
            "Intel MKL",
            "ATLAS 3.10.0",
            "Ours (SDK 2013 beta)",
            "Ours (SDK 2012)",
        ],
    );
    for n in sweep_sizes(5120, 512) {
        let ours = tg.predict(true, GemmType::NN, n, n, n).gflops;
        t.row(vec![
            n.to_string(),
            gf(mkl.gflops(Precision::F64, GemmType::NN, n)),
            gf(atlas.gflops(Precision::F64, GemmType::NN, n)),
            gf(ours),
            gf(ours * SDK_2012_FACTOR),
        ]);
    }
    let chart = crate::plot::chart_from_table("DGEMM GFlop/s vs N", &t, 64, 14);
    rep.table(t);
    rep.note(format!("\n{chart}"));
    rep.note("Paper shape: MKL > ATLAS > ours; ATLAS's auto-tuned C kernels beat our OpenCL kernels even though both are high-level languages; the 2013-beta SDK gives ~20 % over the 2012 SDK.");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Quality;

    #[test]
    fn ordering_matches_paper() {
        let mut lab = Lab::new(Quality::Quick);
        let rep = report(&mut lab);
        let last = rep.tables[0].rows.last().unwrap();
        let mkl: f64 = last[1].parse().unwrap();
        let atlas: f64 = last[2].parse().unwrap();
        let ours13: f64 = last[3].parse().unwrap();
        let ours12: f64 = last[4].parse().unwrap();
        assert!(mkl > atlas, "MKL above ATLAS");
        assert!(atlas > ours13, "ATLAS above ours");
        assert!(ours13 > ours12, "2013 beta SDK above 2012 SDK");
        assert!((ours13 / ours12 - 1.2).abs() < 0.01, "20 % SDK delta");
        assert!(mkl > 2.0 * ours13, "paper: OpenCL is 2x+ below MKL");
    }
}
