//! One module per paper table/figure.

pub mod ablations;
pub mod batched;
pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hybrid;
pub mod observability;
pub mod paperparams;
pub mod prediction;
pub mod saturation;
pub mod serving;
pub mod strategies;
pub mod table1;
pub mod table2;
pub mod table3;

/// Square sweep sizes used by the figure experiments, rounded to each
/// kernel's LCM by the callee.
pub(crate) fn sweep_sizes(max: usize, step: usize) -> Vec<usize> {
    (1..).map(|i| i * step).take_while(|n| *n <= max).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_sizes_cover_range() {
        let s = super::sweep_sizes(6144, 512);
        assert_eq!(s.first(), Some(&512));
        assert_eq!(s.last(), Some(&6144));
        assert_eq!(s.len(), 12);
    }
}
