//! Concrete device profiles.
//!
//! The six processors of Table I, in the paper's column order, plus the
//! AMD Cypress GPU that §IV-C uses to compare against Nakasato's IL
//! kernels and the Du et al. OpenCL tuner.
//!
//! Table I values are copied verbatim. The [`MicroParams`] calibration is
//! derived as follows:
//!
//! * wavefront/warp widths, register-file sizes, residency caps and
//!   work-group size caps are the published architecture limits;
//! * `issue_eff_{dp,sp}` are set so the *best* kernel the tuner can find
//!   lands at the paper's measured efficiency ceiling (Table II):
//!   91/80 % on Tahiti, 86/80 % on Cayman, 56/67 % on Fermi, ~40/44 % on
//!   Sandy Bridge, ~32/38 % on Bulldozer; Kepler's listed-peak efficiency
//!   exceeds 100 % because the overclocked GTX 670 boosts well above its
//!   listed clock, modelled by `boost_factor`;
//! * barrier costs make Cayman (long VLIW pipeline flush) and the CPUs
//!   (thread-level sync) lose from local-memory kernels, as observed in
//!   §IV-A, while GCN/NVIDIA barriers are cheap;
//! * `channel_*` parameters reproduce the row-major "multiples of 2048"
//!   bandwidth cliff reported for Tahiti.

use crate::spec::{DeviceKind, DeviceSpec, LocalMemType, MicroParams, Vendor};

/// Identifier for one of the built-in device profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceId {
    Tahiti,
    Cayman,
    Kepler,
    Fermi,
    SandyBridge,
    Bulldozer,
    /// AMD Cypress (Radeon HD 5870) — the §IV-C comparison device.
    Cypress,
}

impl DeviceId {
    /// The six processors of Table I in the paper's order.
    pub const TABLE1: [DeviceId; 6] = [
        DeviceId::Tahiti,
        DeviceId::Cayman,
        DeviceId::Kepler,
        DeviceId::Fermi,
        DeviceId::SandyBridge,
        DeviceId::Bulldozer,
    ];

    /// All built-in profiles including the Cypress extra.
    pub const ALL: [DeviceId; 7] = [
        DeviceId::Tahiti,
        DeviceId::Cayman,
        DeviceId::Kepler,
        DeviceId::Fermi,
        DeviceId::SandyBridge,
        DeviceId::Bulldozer,
        DeviceId::Cypress,
    ];

    /// The paper's code name for the device.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceId::Tahiti => "Tahiti",
            DeviceId::Cayman => "Cayman",
            DeviceId::Kepler => "Kepler",
            DeviceId::Fermi => "Fermi",
            DeviceId::SandyBridge => "Sandy Bridge",
            DeviceId::Bulldozer => "Bulldozer",
            DeviceId::Cypress => "Cypress",
        }
    }

    /// Build the full specification for this device.
    #[must_use]
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceId::Tahiti => tahiti(),
            DeviceId::Cayman => cayman(),
            DeviceId::Kepler => kepler(),
            DeviceId::Fermi => fermi(),
            DeviceId::SandyBridge => sandy_bridge(),
            DeviceId::Bulldozer => bulldozer(),
            DeviceId::Cypress => cypress(),
        }
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DeviceId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace([' ', '-', '_'], "");
        match norm.as_str() {
            "tahiti" | "hd7970" => Ok(DeviceId::Tahiti),
            "cayman" | "hd6970" => Ok(DeviceId::Cayman),
            "kepler" | "gtx670" => Ok(DeviceId::Kepler),
            "fermi" | "m2090" => Ok(DeviceId::Fermi),
            "sandybridge" | "snb" | "i73960x" => Ok(DeviceId::SandyBridge),
            "bulldozer" | "fx8150" => Ok(DeviceId::Bulldozer),
            "cypress" | "hd5870" => Ok(DeviceId::Cypress),
            other => Err(format!("unknown device {other:?}")),
        }
    }
}

/// The six Table I specifications, in the paper's order.
#[must_use]
pub fn all_devices() -> Vec<DeviceSpec> {
    DeviceId::TABLE1.iter().map(|id| id.spec()).collect()
}

/// Look a device up by code or product name.
#[must_use]
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    name.parse::<DeviceId>().ok().map(DeviceId::spec)
}

/// AMD Tahiti — Radeon HD 7970 (GCN, 32 CUs @ 0.925 GHz).
fn tahiti() -> DeviceSpec {
    DeviceSpec {
        code_name: "Tahiti".into(),
        product_name: "Radeon HD 7970".into(),
        vendor: Vendor::Amd,
        kind: DeviceKind::Gpu,
        clock_ghz: 0.925,
        compute_units: 32,
        dp_ops_per_clock: 1024,
        sp_ops_per_clock: 4096,
        global_mem_gib: 3.0,
        global_bw_gbs: 264.0,
        local_mem_kib: 64,
        local_mem_type: LocalMemType::Scratchpad,
        sdk: "AMD APP 2.6".into(),
        micro: MicroParams {
            wavefront: 64,
            regs_per_cu: 65536, // 256 KiB vector registers per GCN CU
            max_wg_per_cu: 16,
            max_wi_per_cu: 2560, // 40 wavefronts
            max_wg_size: 256,
            global_latency: 480.0,
            lds_bytes_per_cycle: 128.0, // 32 banks x 4 B
            cache_bytes_per_cycle: 64.0,
            barrier_cost: 30.0,
            barrier_throughput_frac: 0.15,
            // GCN issues vector memory and scalar/branch ops on separate
            // pipes, so a pure-FMA stream runs at full VALU rate.
            issue_eff_dp: 0.95,
            issue_eff_sp: 0.82,
            mem_port_overlap: 0.95,
            coalesce_bytes: 64,
            channel_interleave_bytes: 256,
            channel_conflict_penalty: 0.30,
            native_simd_lanes: 1,
            min_wavefronts: 8.0,
            max_load_bytes: 16,
            launch_overhead_us: 8.0,
            dram_efficiency: 0.88,
            boost_factor: 1.0,
        },
    }
}

/// AMD Cayman — Radeon HD 6970 (VLIW4, 24 CUs @ 0.88 GHz).
fn cayman() -> DeviceSpec {
    DeviceSpec {
        code_name: "Cayman".into(),
        product_name: "Radeon HD 6970".into(),
        vendor: Vendor::Amd,
        kind: DeviceKind::Gpu,
        clock_ghz: 0.88,
        compute_units: 24,
        dp_ops_per_clock: 768,
        sp_ops_per_clock: 3072,
        global_mem_gib: 1.0,
        global_bw_gbs: 176.0,
        local_mem_kib: 32,
        local_mem_type: LocalMemType::Scratchpad,
        sdk: "AMD APP 2.6".into(),
        micro: MicroParams {
            wavefront: 64,
            regs_per_cu: 65536,
            max_wg_per_cu: 8,
            max_wi_per_cu: 1536,
            max_wg_size: 256,
            global_latency: 550.0,
            lds_bytes_per_cycle: 64.0, // half-rate LDS vs GCN
            cache_bytes_per_cycle: 54.0,
            // Long VLIW pipeline: a barrier flushes in-flight bundles, so
            // most of its cost is real CU throughput (§IV-A: "the Cayman
            // runs slower when the local memory is utilized").
            barrier_cost: 260.0,
            barrier_throughput_frac: 0.90,
            issue_eff_dp: 0.92,
            issue_eff_sp: 0.82,
            mem_port_overlap: 0.85,
            coalesce_bytes: 64,
            channel_interleave_bytes: 256,
            channel_conflict_penalty: 0.35,
            native_simd_lanes: 1,
            min_wavefronts: 6.0,
            max_load_bytes: 16,
            launch_overhead_us: 8.0,
            dram_efficiency: 0.85,
            boost_factor: 1.0,
        },
    }
}

/// NVIDIA Kepler — GeForce GTX 670 factory-overclocked (7 SMX @ 1.085 GHz
/// listed, boosting far above it — the paper measures >100 % of listed
/// peak for DGEMM).
fn kepler() -> DeviceSpec {
    DeviceSpec {
        code_name: "Kepler".into(),
        product_name: "GeForce GTX 670 OC".into(),
        vendor: Vendor::Nvidia,
        kind: DeviceKind::Gpu,
        clock_ghz: 1.085,
        compute_units: 7,
        dp_ops_per_clock: 96,
        sp_ops_per_clock: 2688,
        global_mem_gib: 2.0,
        global_bw_gbs: 192.0,
        local_mem_kib: 48,
        local_mem_type: LocalMemType::Scratchpad,
        sdk: "CUDA 5.0 RC".into(),
        micro: MicroParams {
            wavefront: 32,
            regs_per_cu: 65536,
            max_wg_per_cu: 16,
            max_wi_per_cu: 2048,
            max_wg_size: 1024,
            global_latency: 420.0,
            lds_bytes_per_cycle: 128.0,
            // GK104's L1 does not cache global loads; redundant reuse is
            // served from L2 at much lower per-SMX bandwidth.
            cache_bytes_per_cycle: 16.0,
            barrier_cost: 25.0,
            barrier_throughput_frac: 0.15,
            // DP units are few and easily saturated even from OpenCL; SP
            // needs the static ILP/dual-issue that OpenCL codegen cannot
            // express (paper: 1440 of 2916 GFlop/s listed-peak, 49 %).
            issue_eff_dp: 0.97,
            issue_eff_sp: 0.38,
            mem_port_overlap: 0.75,
            coalesce_bytes: 128,
            channel_interleave_bytes: 256,
            channel_conflict_penalty: 0.45,
            native_simd_lanes: 1,
            min_wavefronts: 8.0,
            max_load_bytes: 16,
            launch_overhead_us: 6.0,
            dram_efficiency: 0.85,
            boost_factor: 1.33, // factory OC + GPU Boost over the listed clock
        },
    }
}

/// NVIDIA Fermi — Tesla M2090 (16 SMs @ 1.3 GHz).
fn fermi() -> DeviceSpec {
    DeviceSpec {
        code_name: "Fermi".into(),
        product_name: "Tesla M2090".into(),
        vendor: Vendor::Nvidia,
        kind: DeviceKind::Gpu,
        clock_ghz: 1.3,
        compute_units: 16,
        dp_ops_per_clock: 512,
        sp_ops_per_clock: 1024,
        global_mem_gib: 6.0,
        global_bw_gbs: 177.0,
        local_mem_kib: 48,
        local_mem_type: LocalMemType::Scratchpad,
        sdk: "CUDA 4.1.28".into(),
        micro: MicroParams {
            wavefront: 32,
            regs_per_cu: 32768, // 128 KiB per SM
            max_wg_per_cu: 8,
            max_wi_per_cu: 1536,
            max_wg_size: 1024,
            global_latency: 600.0,
            lds_bytes_per_cycle: 64.0,
            cache_bytes_per_cycle: 20.0,
            barrier_cost: 30.0,
            barrier_throughput_frac: 0.20,
            // The DP path shares issue slots with loads (Tan et al. report
            // 70 % as the hand-tuned machine-code ceiling; from high-level
            // languages the paper reaches 56 %).
            issue_eff_dp: 0.62,
            issue_eff_sp: 0.70,
            mem_port_overlap: 0.55,
            coalesce_bytes: 128,
            channel_interleave_bytes: 256,
            channel_conflict_penalty: 0.45,
            native_simd_lanes: 1,
            min_wavefronts: 6.0,
            max_load_bytes: 16,
            launch_overhead_us: 7.0,
            dram_efficiency: 0.82,
            boost_factor: 1.0,
        },
    }
}

/// Intel Sandy Bridge — Core i7 3960X (6 cores @ 3.3 GHz, AVX).
fn sandy_bridge() -> DeviceSpec {
    DeviceSpec {
        code_name: "Sandy Bridge".into(),
        product_name: "Core i7 3960X".into(),
        vendor: Vendor::Intel,
        kind: DeviceKind::Cpu,
        clock_ghz: 3.3,
        compute_units: 6,
        dp_ops_per_clock: 48, // 8 DP flops/cycle/core (4-wide AVX add + mul)
        sp_ops_per_clock: 96,
        global_mem_gib: 8.0,
        global_bw_gbs: 51.2, // quad-channel DDR3-1600
        local_mem_kib: 32,
        local_mem_type: LocalMemType::GlobalBacked,
        sdk: "Intel SDK 2013 beta".into(),
        micro: MicroParams {
            wavefront: 1,
            // "Registers" spill to L1 at low cost; model a large file and
            // let cache bandwidth be the real constraint.
            regs_per_cu: 1 << 20,
            max_wg_per_cu: 4,
            max_wi_per_cu: 4096,
            max_wg_size: 1024,
            global_latency: 45.0,      // L2-miss latency largely hidden by OoO
            lds_bytes_per_cycle: 32.0, // LDS is just cached memory here
            cache_bytes_per_cycle: 32.0,
            // A work-group barrier is a thread-level synchronisation.
            barrier_cost: 1500.0,
            barrier_throughput_frac: 1.0,
            // Paper §IV-B: OpenCL reaches less than half of MKL; the 2013
            // beta SDK improved codegen ~20 % over the 2012 SDK.
            issue_eff_dp: 0.41,
            issue_eff_sp: 0.45,
            mem_port_overlap: 0.75,
            coalesce_bytes: 64, // cache line
            channel_interleave_bytes: 4096,
            channel_conflict_penalty: 0.60,
            native_simd_lanes: 8, // 256-bit AVX
            min_wavefronts: 1.0,
            max_load_bytes: 32,
            launch_overhead_us: 20.0,
            dram_efficiency: 0.75,
            boost_factor: 1.0,
        },
    }
}

/// AMD Bulldozer — FX-8150 (8 integer cores / 4 FP modules @ 3.6 GHz).
fn bulldozer() -> DeviceSpec {
    DeviceSpec {
        code_name: "Bulldozer".into(),
        product_name: "FX-8150".into(),
        vendor: Vendor::Amd,
        kind: DeviceKind::Cpu,
        clock_ghz: 3.6,
        compute_units: 8,
        dp_ops_per_clock: 32, // 4 modules x 8 DP flops (shared 256-bit FMA)
        sp_ops_per_clock: 64,
        global_mem_gib: 8.0,
        global_bw_gbs: 29.9, // dual-channel DDR3-1866
        local_mem_kib: 32,
        local_mem_type: LocalMemType::GlobalBacked,
        sdk: "AMD APP 2.7".into(),
        micro: MicroParams {
            wavefront: 1,
            regs_per_cu: 1 << 20,
            max_wg_per_cu: 4,
            max_wi_per_cu: 4096,
            max_wg_size: 1024,
            global_latency: 60.0,
            lds_bytes_per_cycle: 16.0,
            cache_bytes_per_cycle: 16.0, // write-through L1 hurts
            barrier_cost: 2500.0,
            barrier_throughput_frac: 1.0,
            issue_eff_dp: 0.33,
            issue_eff_sp: 0.38,
            mem_port_overlap: 0.60,
            coalesce_bytes: 64,
            channel_interleave_bytes: 4096,
            channel_conflict_penalty: 0.55,
            // Bulldozer's shared FlexFPU executes 256-bit ops as two
            // 128-bit halves; 128-bit vectors already run at full rate.
            native_simd_lanes: 4,
            min_wavefronts: 1.0,
            max_load_bytes: 32,
            launch_overhead_us: 25.0,
            dram_efficiency: 0.70,
            boost_factor: 1.0,
        },
    }
}

/// AMD Cypress — Radeon HD 5870 (VLIW5, 20 CUs @ 0.85 GHz). Used in the
/// paper's §IV-C comparison: their tuner reaches 495 GFlop/s DGEMM (91 %)
/// vs 498 for Nakasato's IL kernels and 308 for Du et al.
fn cypress() -> DeviceSpec {
    DeviceSpec {
        code_name: "Cypress".into(),
        product_name: "Radeon HD 5870".into(),
        vendor: Vendor::Amd,
        kind: DeviceKind::Gpu,
        clock_ghz: 0.85,
        compute_units: 20,
        dp_ops_per_clock: 640,
        sp_ops_per_clock: 3200,
        global_mem_gib: 1.0,
        global_bw_gbs: 153.6,
        local_mem_kib: 32,
        local_mem_type: LocalMemType::Scratchpad,
        sdk: "AMD APP 2.5".into(),
        micro: MicroParams {
            wavefront: 64,
            regs_per_cu: 65536,
            max_wg_per_cu: 8,
            max_wi_per_cu: 1536,
            max_wg_size: 256,
            global_latency: 550.0,
            lds_bytes_per_cycle: 64.0,
            cache_bytes_per_cycle: 54.0,
            barrier_cost: 240.0,
            barrier_throughput_frac: 0.85,
            issue_eff_dp: 0.98,
            issue_eff_sp: 0.85,
            mem_port_overlap: 0.85,
            coalesce_bytes: 64,
            channel_interleave_bytes: 256,
            channel_conflict_penalty: 0.35,
            native_simd_lanes: 1,
            min_wavefronts: 6.0,
            max_load_bytes: 16,
            launch_overhead_us: 9.0,
            dram_efficiency: 0.85,
            boost_factor: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_devices_in_paper_order() {
        let names: Vec<_> = all_devices().iter().map(|d| d.code_name.clone()).collect();
        assert_eq!(
            names,
            [
                "Tahiti",
                "Cayman",
                "Kepler",
                "Fermi",
                "Sandy Bridge",
                "Bulldozer"
            ]
        );
    }

    #[test]
    fn lookup_by_aliases() {
        assert_eq!(device_by_name("hd7970").unwrap().code_name, "Tahiti");
        assert_eq!(
            device_by_name("Sandy Bridge").unwrap().vendor,
            Vendor::Intel
        );
        assert_eq!(device_by_name("FX-8150").unwrap().kind, DeviceKind::Cpu);
        assert!(device_by_name("voodoo2").is_none());
    }

    #[test]
    fn display_and_parse_round_trip() {
        for id in DeviceId::ALL {
            let parsed: DeviceId = id.name().parse().unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn compute_unit_counts_match_table_i() {
        let cus: Vec<_> = all_devices().iter().map(|d| d.compute_units).collect();
        assert_eq!(cus, [32, 24, 7, 16, 6, 8]);
    }

    #[test]
    fn local_memory_sizes_match_table_i() {
        let lm: Vec<_> = all_devices().iter().map(|d| d.local_mem_kib).collect();
        assert_eq!(lm, [64, 32, 48, 48, 32, 32]);
    }

    #[test]
    fn only_kepler_boosts() {
        for d in all_devices() {
            if d.code_name == "Kepler" {
                assert!(d.micro.boost_factor > 1.0);
            } else {
                assert_eq!(d.micro.boost_factor, 1.0, "{}", d.code_name);
            }
        }
    }

    #[test]
    fn cypress_profile_exists_for_section_ivc() {
        let c = DeviceId::Cypress.spec();
        assert!((c.peak_gflops(true) - 544.0).abs() < 1.0);
    }

    #[test]
    fn specs_are_cloneable_and_comparable() {
        let t = DeviceId::Tahiti.spec();
        let copy = t.clone();
        assert_eq!(copy, t);
        assert_ne!(copy, DeviceId::Fermi.spec());
    }
}
