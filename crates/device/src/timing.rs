//! The analytic kernel timing model.
//!
//! Given a [`KernelLaunchProfile`] — the resource/traffic summary the code
//! generator derives from a parameter set — and a [`DeviceSpec`], this
//! module predicts the kernel's execution time as the maximum of five
//! overlap-combined bounds:
//!
//! 1. **Issue**: instruction slots (MADs + the non-hidden part of memory
//!    instructions + loop/address overhead) through the CU's ALUs at the
//!    precision's issue-efficiency ceiling;
//! 2. **DRAM**: unique off-chip traffic through the device bandwidth,
//!    derated by coalescing efficiency and power-of-two channel conflicts;
//! 3. **LDS**: local-memory traffic through the per-CU scratchpad
//!    bandwidth, inflated by bank conflicts (cache-backed local memory is
//!    charged to the cache bound instead);
//! 4. **Cache**: on-chip reuse traffic that bypasses local memory;
//! 5. **Serial/latency**: each work-group's un-hidable critical path —
//!    global-memory latency times the algorithm's serialisation factor
//!    plus the de-scheduling part of barrier costs — divided across the
//!    resident work-groups the occupancy allows.
//!
//! All inputs are *counts per work-group per outer-loop iteration* (the
//! `K/Kwg` loop of the paper's algorithms), so the model is exact in how
//! blocking factors shift work between the bounds. This is where the
//! tuner's landscape comes from.

use crate::occupancy::{occupancy, Occupancy, OccupancyError};
use crate::spec::{DeviceSpec, LocalMemType};

/// Traffic/resource summary of one kernel launch, produced by the code
/// generator. See the module docs for the accounting conventions.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLaunchProfile {
    /// `true` for DGEMM kernels.
    pub double_precision: bool,
    /// Work-items per work-group (`MdimC × NdimC`).
    pub wg_size: usize,
    /// Total work-groups in the NDRange (`⌈M/Mwg⌉ × ⌈N/Nwg⌉`).
    pub n_wgs: usize,
    /// Outer-loop trip count (`K / Kwg`).
    pub outer_iters: usize,

    /// Scalar multiply-adds per work-item per outer iteration
    /// (`Mwi × Nwi × Kwg`).
    pub mad_ops: f64,
    /// Load/store *instructions* per work-item per outer iteration
    /// (vector accesses count once — this is how larger `vw` pays off).
    pub mem_instrs: f64,
    /// Loop-control and addressing slots per work-item per outer
    /// iteration (reduced by the `Kwi` unroll factor).
    pub overhead_ops: f64,

    /// Unique off-chip bytes per work-group per outer iteration.
    pub dram_bytes: f64,
    /// On-chip reuse bytes per work-group per outer iteration served by
    /// caches rather than local memory (redundant re-loads of operands
    /// not staged in LDS).
    pub cache_bytes: f64,
    /// Local-memory bytes (reads + writes) per work-group per outer
    /// iteration; 0 when the kernel uses no local memory.
    pub lds_bytes: f64,
    /// Barriers per outer iteration.
    pub barriers: f64,

    /// One-time off-chip bytes per work-group (C read for β·C, C write).
    pub dram_bytes_once: f64,
    /// One-time load/store instructions per work-item (the C merge).
    pub mem_instrs_once: f64,
    /// One-time MADs per work-item (α/β merge arithmetic).
    pub mad_ops_once: f64,

    /// Coalescing efficiency in (0, 1]: fraction of each memory
    /// transaction that carries useful data, from the layouts, vector
    /// width and stride mode.
    pub coalesce_eff: f64,
    /// `true` when operand strides hit the same DRAM channel repeatedly
    /// (large power-of-two row strides in row-major layouts).
    pub pow2_conflict: bool,
    /// LDS bank-conflict multiplier (≥ 1).
    pub lds_bank_factor: f64,
    /// SIMD lane utilisation in (0, 1] — 1 on GPUs; on CPUs the fraction
    /// of the native vector width the kernel's `vw` fills.
    pub simd_utilization: f64,
    /// Per-iteration non-overlappable latency weight of the algorithm:
    /// ~1 for BA (load → barrier → compute is serial), lower for PL/DB
    /// whose loads overlap the previous iteration's arithmetic.
    pub serial_latency_factor: f64,

    /// Estimated 32-bit register slots per work-item.
    pub regs_per_wi: usize,
    /// Local-memory bytes allocated per work-group.
    pub lds_bytes_per_wg: usize,
}

impl KernelLaunchProfile {
    /// Total scalar MADs across the launch — used for sanity checks; the
    /// useful FLOPs (`2·M·N·K`) are lower when padding is present.
    #[must_use]
    pub fn total_mads(&self) -> f64 {
        (self.mad_ops * self.outer_iters as f64 + self.mad_ops_once)
            * self.wg_size as f64
            * self.n_wgs as f64
    }
}

/// Which bound dominated the estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    Issue,
    Dram,
    Lds,
    Cache,
    Serial,
}

impl std::fmt::Display for BoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BoundKind::Issue => "issue",
            BoundKind::Dram => "dram",
            BoundKind::Lds => "lds",
            BoundKind::Cache => "cache",
            BoundKind::Serial => "serial",
        })
    }
}

/// Per-bound cycle totals (device-level wall cycles), for reporting and
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Components {
    pub issue: f64,
    pub dram: f64,
    pub lds: f64,
    pub cache: f64,
    pub serial: f64,
    /// Fixed launch overhead.
    pub launch: f64,
}

/// The model's output for one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingEstimate {
    /// Wall-clock seconds at the effective (boosted) clock.
    pub seconds: f64,
    /// Wall cycles at the effective clock.
    pub cycles: f64,
    pub occupancy: Occupancy,
    pub bound: BoundKind,
    pub components: Components,
}

impl TimingEstimate {
    /// Achieved GFlop/s for a caller-supplied useful FLOP count.
    #[must_use]
    pub fn gflops(&self, useful_flops: f64) -> f64 {
        useful_flops / self.seconds / 1e9
    }
}

/// Predicted seconds for one launch, or `None` when the kernel cannot
/// launch on the device at all. Convenience over [`estimate`] for
/// callers that only need a scheduling cost (the serving layer's
/// least-loaded placement).
#[must_use]
pub fn estimate_seconds(dev: &DeviceSpec, p: &KernelLaunchProfile) -> Option<f64> {
    estimate(dev, p).ok().map(|e| e.seconds)
}

/// Predicted seconds for a strided-batched request: `batch` back-to-back
/// launches of the same kernel profile, paying the API launch overhead
/// once. That is exactly the host routine's batched execution shape —
/// one enqueue fans the batch out, each entry then re-runs the kernel
/// body — and it is why the model says batching beats a loop of single
/// calls: the loop pays `batch` launches. Returns `Some(0.0)` for an
/// empty batch and `None` when the kernel cannot launch at all.
#[must_use]
pub fn estimate_batch_seconds(
    dev: &DeviceSpec,
    p: &KernelLaunchProfile,
    batch: usize,
) -> Option<f64> {
    if batch == 0 {
        return Some(0.0);
    }
    let est = estimate(dev, p).ok()?;
    let launch = dev.micro.launch_overhead_us * 1e-6 * dev.effective_clock_ghz() * 1e9;
    let body = est.cycles - launch;
    Some(dev.cycles_to_seconds(body * batch as f64 + launch))
}

/// Predict the execution time of one kernel launch.
///
/// # Errors
/// Propagates [`OccupancyError`] when the kernel cannot launch at all —
/// the tuner counts such candidates as failed, mirroring the paper's
/// treatment of kernels that fail compilation or execution.
pub fn estimate(
    dev: &DeviceSpec,
    p: &KernelLaunchProfile,
) -> Result<TimingEstimate, OccupancyError> {
    let occ = occupancy(dev, p.wg_size, p.regs_per_wi, p.lds_bytes_per_wg)?;
    let micro = &dev.micro;

    // --- per-CU instruction issue -------------------------------------
    // Wavefront padding: a work-group whose size is not a multiple of the
    // SIMT width wastes the tail lanes.
    let lanes = micro.wavefront;
    let lane_eff = p.wg_size as f64 / (p.wg_size.div_ceil(lanes) * lanes) as f64;

    let mads_per_cycle_cu = dev.flops_per_cycle_per_cu(p.double_precision) / 2.0;
    let issue_eff = dev.issue_eff(p.double_precision) * p.simd_utilization.clamp(1e-6, 1.0);

    let visible_mem = 1.0 - micro.mem_port_overlap;
    let slots_iter = p.mad_ops + p.mem_instrs * visible_mem + p.overhead_ops;
    let slots_once = p.mad_ops_once + p.mem_instrs_once * visible_mem;
    let barrier_issue = p.barriers * micro.barrier_cost * micro.barrier_throughput_frac;

    // Issue starvation below the device's saturation point: with too few
    // resident wavefronts the CU's issue pipes idle between dependent
    // instructions (§III-E: "if the number of work-groups is not enough,
    // processors cannot hide memory access latencies").
    let saturation = (occ.wavefronts_per_cu as f64 / micro.min_wavefronts).clamp(1.0 / 16.0, 1.0);
    let issue_rate = mads_per_cycle_cu * issue_eff * lane_eff * saturation;
    let issue_wg_iter = slots_iter * p.wg_size as f64 / issue_rate + barrier_issue;
    let issue_wg_once = slots_once * p.wg_size as f64 / issue_rate;
    let issue_wg = issue_wg_iter * p.outer_iters as f64 + issue_wg_once;

    // --- memory traffic -------------------------------------------------
    let coalesce = p.coalesce_eff.clamp(0.01, 1.0);
    let mut dram_bw = dev.dram_bytes_per_cycle() * coalesce;
    if p.pow2_conflict {
        dram_bw *= micro.channel_conflict_penalty;
    }
    let dram_bytes_wg = p.dram_bytes * p.outer_iters as f64 + p.dram_bytes_once;

    // Local memory: on scratchpad devices LDS traffic has its own port;
    // on cache-backed devices it is just more cache traffic (plus it
    // bought nothing — the key CPU observation of §IV-A).
    let (lds_wg, extra_cache) = match dev.local_mem_type {
        LocalMemType::Scratchpad => (
            p.lds_bytes * p.lds_bank_factor * p.outer_iters as f64 / micro.lds_bytes_per_cycle,
            0.0,
        ),
        LocalMemType::GlobalBacked => (0.0, p.lds_bytes),
    };
    let cache_wg =
        (p.cache_bytes + extra_cache) * p.outer_iters as f64 / micro.cache_bytes_per_cycle;

    // --- serial / latency path ------------------------------------------
    let barrier_stall = p.barriers * micro.barrier_cost * (1.0 - micro.barrier_throughput_frac);
    let stall_iter = micro.global_latency * p.serial_latency_factor + barrier_stall;
    // A work-group's own wavefronts overlap its issue/LDS/cache work
    // with each other; only the largest throughput term plus the
    // un-hidable stalls sit on its critical path.
    let serial_wg = stall_iter * p.outer_iters as f64 + issue_wg.max(lds_wg).max(cache_wg);

    // --- aggregate over the grid -----------------------------------------
    let active_cus = dev.compute_units.min(p.n_wgs.max(1)) as f64;
    let wgs_per_cu_total = p.n_wgs as f64 / active_cus;
    let rounds = wgs_per_cu_total / occ.wgs_per_cu as f64;

    let t_issue = wgs_per_cu_total * issue_wg;
    let t_lds = wgs_per_cu_total * lds_wg;
    let t_cache = wgs_per_cu_total * cache_wg;
    // DRAM is a device-wide resource: total bytes over total bandwidth,
    // expressed in wall cycles.
    let t_dram = p.n_wgs as f64 * dram_bytes_wg / dram_bw;
    let t_serial = rounds * serial_wg;

    let launch = micro.launch_overhead_us * 1e-6 * dev.effective_clock_ghz() * 1e9;

    let components = Components {
        issue: t_issue,
        dram: t_dram,
        lds: t_lds,
        cache: t_cache,
        serial: t_serial,
        launch,
    };

    let (cycles_body, bound) = [
        (t_issue, BoundKind::Issue),
        (t_dram, BoundKind::Dram),
        (t_lds, BoundKind::Lds),
        (t_cache, BoundKind::Cache),
        (t_serial, BoundKind::Serial),
    ]
    .into_iter()
    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("cycle counts are finite"))
    .expect("non-empty bound list");

    let cycles = cycles_body + launch;
    Ok(TimingEstimate {
        seconds: dev.cycles_to_seconds(cycles),
        cycles,
        occupancy: occ,
        bound,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceId;

    /// A plausible well-tuned Tahiti DGEMM profile (the paper's winning
    /// parameters: Mwg=96 Nwg=32 Kwg=48, 16x16 work-group, Mwi=6 Nwi=2,
    /// Kwi=2, vw=2, B shared in LDS).
    fn tahiti_dgemm_profile(n: usize) -> KernelLaunchProfile {
        let (mwg, nwg, kwg) = (96usize, 32usize, 48usize);
        let (mwi, nwi) = (6.0, 2.0);
        let wg = 256usize;
        KernelLaunchProfile {
            double_precision: true,
            wg_size: wg,
            n_wgs: (n / mwg) * (n / nwg),
            outer_iters: n / kwg,
            mad_ops: mwi * nwi * kwg as f64,
            mem_instrs: (mwi * kwg as f64) / 2.0 + (nwi * kwg as f64) / 2.0 + 6.0,
            overhead_ops: 60.0,
            dram_bytes: ((mwg + nwg) * kwg * 8) as f64,
            cache_bytes: (wg as f64) * mwi * kwg as f64 * 8.0,
            lds_bytes: (nwg * kwg * 8) as f64 + (wg as f64) * nwi * kwg as f64 * 8.0,
            barriers: 2.0,
            dram_bytes_once: (mwg * nwg * 8 * 2) as f64,
            mem_instrs_once: mwi * nwi,
            mad_ops_once: mwi * nwi,
            coalesce_eff: 1.0,
            pow2_conflict: false,
            lds_bank_factor: 1.0,
            simd_utilization: 1.0,
            serial_latency_factor: 1.0,
            regs_per_wi: 80,
            lds_bytes_per_wg: nwg * kwg * 8,
        }
    }

    #[test]
    fn tahiti_dgemm_lands_near_paper_efficiency() {
        let dev = DeviceId::Tahiti.spec();
        let n = 4608; // multiple of LCM(96, 32, 48) = 288
        let p = tahiti_dgemm_profile(n);
        let est = estimate(&dev, &p).unwrap();
        let flops = 2.0 * (n as f64).powi(3);
        let eff = est.gflops(flops) / dev.peak_gflops(true);
        // Paper: 863 GFlop/s = 91 % of peak. The model should put a
        // well-tuned kernel in the right neighbourhood.
        assert!(
            eff > 0.75 && eff <= 1.0,
            "Tahiti DGEMM efficiency {eff:.3} out of range"
        );
    }

    #[test]
    fn more_work_takes_more_time() {
        let dev = DeviceId::Tahiti.spec();
        let small = estimate(&dev, &tahiti_dgemm_profile(1152)).unwrap();
        let big = estimate(&dev, &tahiti_dgemm_profile(4608)).unwrap();
        assert!(big.seconds > small.seconds);
    }

    #[test]
    fn pow2_conflict_slows_memory_bound_kernels() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = tahiti_dgemm_profile(2304);
        // Make it memory bound by inflating traffic.
        p.dram_bytes *= 50.0;
        let fast = estimate(&dev, &p).unwrap();
        p.pow2_conflict = true;
        let slow = estimate(&dev, &p).unwrap();
        assert!(
            slow.seconds > fast.seconds * 2.0,
            "channel conflicts must bite"
        );
        assert_eq!(slow.bound, BoundKind::Dram);
    }

    #[test]
    fn barriers_hurt_cayman_more_than_tahiti() {
        let mut p = tahiti_dgemm_profile(2304);
        p.lds_bytes_per_wg = 16 * 1024; // fits Cayman's 32 KiB
        let t0 = {
            let dev = DeviceId::Tahiti.spec();
            let with = estimate(&dev, &p).unwrap().seconds;
            let without = {
                let mut q = p.clone();
                q.barriers = 0.0;
                estimate(&dev, &q).unwrap().seconds
            };
            with / without
        };
        let c0 = {
            let dev = DeviceId::Cayman.spec();
            let with = estimate(&dev, &p).unwrap().seconds;
            let without = {
                let mut q = p.clone();
                q.barriers = 0.0;
                estimate(&dev, &q).unwrap().seconds
            };
            with / without
        };
        assert!(
            c0 > t0,
            "Cayman barrier slowdown {c0:.3} should exceed Tahiti {t0:.3}"
        );
    }

    #[test]
    fn unlaunchable_kernel_is_rejected() {
        let dev = DeviceId::Cayman.spec(); // 32 KiB LDS
        let mut p = tahiti_dgemm_profile(2304);
        p.lds_bytes_per_wg = 48 * 1024;
        assert!(estimate(&dev, &p).is_err());
    }

    #[test]
    fn cpu_charges_lds_as_cache_traffic() {
        let dev = DeviceId::SandyBridge.spec();
        let mut p = tahiti_dgemm_profile(1152);
        p.wg_size = 64;
        p.regs_per_wi = 64;
        p.lds_bytes_per_wg = 8 * 1024;
        p.simd_utilization = 1.0;
        let est = estimate(&dev, &p).unwrap();
        assert_eq!(est.components.lds, 0.0, "no scratchpad on CPUs");
        assert!(est.components.cache > 0.0);
    }

    #[test]
    fn poor_simd_utilization_slows_cpus() {
        let dev = DeviceId::SandyBridge.spec();
        let mut p = tahiti_dgemm_profile(1152);
        p.wg_size = 64;
        p.lds_bytes = 0.0;
        p.lds_bytes_per_wg = 0;
        p.barriers = 0.0;
        p.simd_utilization = 1.0;
        let vec = estimate(&dev, &p).unwrap();
        p.simd_utilization = 0.25; // scalar code on a 4-wide DP unit
        let scal = estimate(&dev, &p).unwrap();
        assert!(scal.seconds > vec.seconds * 2.0);
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let dev = DeviceId::Fermi.spec();
        let mut p = tahiti_dgemm_profile(2304);
        p.wg_size = 256;
        p.lds_bytes_per_wg = 4096;
        p.regs_per_wi = 16;
        let high_occ = estimate(&dev, &p).unwrap();
        p.regs_per_wi = 120; // one work-group resident
        let low_occ = estimate(&dev, &p).unwrap();
        assert!(low_occ.occupancy.wgs_per_cu < high_occ.occupancy.wgs_per_cu);
        assert!(low_occ.seconds >= high_occ.seconds);
    }

    #[test]
    fn components_are_nonnegative_and_bound_is_argmax() {
        let dev = DeviceId::Kepler.spec();
        let p = tahiti_dgemm_profile(2304);
        let est = estimate(&dev, &p).unwrap();
        let c = est.components;
        for v in [c.issue, c.dram, c.lds, c.cache, c.serial, c.launch] {
            assert!(v >= 0.0 && v.is_finite());
        }
        let max = c.issue.max(c.dram).max(c.lds).max(c.cache).max(c.serial);
        assert!((est.cycles - (max + c.launch)).abs() < 1e-6);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = tahiti_dgemm_profile(96 * 2);
        p.n_wgs = 2;
        p.outer_iters = 1;
        let est = estimate(&dev, &p).unwrap();
        assert!(
            est.components.launch > 0.3 * est.cycles,
            "small launches are overhead-bound"
        );
    }

    #[test]
    fn batch_estimate_scales_the_body_and_pays_launch_once() {
        let dev = DeviceId::Tahiti.spec();
        let p = tahiti_dgemm_profile(2304);
        let one = estimate_seconds(&dev, &p).unwrap();
        let b1 = estimate_batch_seconds(&dev, &p, 1).unwrap();
        assert!((b1 - one).abs() / one < 1e-12, "batch of one is one launch");
        let b8 = estimate_batch_seconds(&dev, &p, 8).unwrap();
        // Strictly cheaper than eight separate launches, but at least
        // eight kernel bodies.
        assert!(b8 < 8.0 * one);
        assert!(b8 > 7.0 * one - 1e-12);
        assert_eq!(estimate_batch_seconds(&dev, &p, 0), Some(0.0));
    }

    #[test]
    fn batch_estimate_amortisation_matters_most_for_tiny_kernels() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = tahiti_dgemm_profile(96 * 2);
        p.n_wgs = 2;
        p.outer_iters = 1;
        let one = estimate_seconds(&dev, &p).unwrap();
        let b64 = estimate_batch_seconds(&dev, &p, 64).unwrap();
        assert!(
            b64 < 0.75 * 64.0 * one,
            "launch-bound kernels must batch well: {b64} vs {}",
            64.0 * one
        );
    }

    #[test]
    fn batch_estimate_rejects_unlaunchable_kernels() {
        let dev = DeviceId::Tahiti.spec();
        let mut p = tahiti_dgemm_profile(2304);
        p.wg_size = 100_000; // cannot launch anywhere
        assert_eq!(estimate_batch_seconds(&dev, &p, 4), None);
    }
}
