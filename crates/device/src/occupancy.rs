//! Work-group residency ("occupancy") calculation.
//!
//! §III-E of the paper: *"The number of registers determines the number of
//! work-groups launched on a compute unit. If the number of work-groups is
//! not enough, processors cannot hide memory access latencies."* This
//! module computes that residency from the kernel's register and
//! local-memory appetite, and flags kernels that cannot launch at all —
//! those count as failed candidates in the tuner, just as kernels failing
//! compilation do in the paper.

use crate::spec::DeviceSpec;

/// Why a kernel cannot be launched on a device at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OccupancyError {
    /// Work-group size exceeds the device maximum.
    WorkGroupTooLarge { wg_size: usize, max: usize },
    /// The work-group needs more local memory than a CU has.
    LocalMemExceeded { needed: usize, available: usize },
    /// A single work-group's registers exceed the CU register file.
    RegistersExceeded { needed: usize, available: usize },
    /// Work-group size must be a multiple of... nothing here, but zero
    /// sized groups are invalid.
    EmptyWorkGroup,
}

impl std::fmt::Display for OccupancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OccupancyError::WorkGroupTooLarge { wg_size, max } => {
                write!(f, "work-group size {wg_size} exceeds device maximum {max}")
            }
            OccupancyError::LocalMemExceeded { needed, available } => {
                write!(
                    f,
                    "work-group needs {needed} B local memory, CU has {available} B"
                )
            }
            OccupancyError::RegistersExceeded { needed, available } => {
                write!(
                    f,
                    "work-group needs {needed} register slots, CU has {available}"
                )
            }
            OccupancyError::EmptyWorkGroup => write!(f, "work-group has zero work-items"),
        }
    }
}

impl std::error::Error for OccupancyError {}

/// Residency outcome for a kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Concurrently resident work-groups per compute unit.
    pub wgs_per_cu: usize,
    /// Resident work-items per CU (`wgs_per_cu × wg_size`).
    pub wis_per_cu: usize,
    /// Resident wavefront count per CU (at least 1 when resident).
    pub wavefronts_per_cu: usize,
    /// Which resource bounds the residency.
    pub limiter: Limiter,
}

/// The binding residency constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    Registers,
    LocalMem,
    WorkGroupSlots,
    WorkItemSlots,
}

/// Compute the occupancy of a kernel that uses `regs_per_wi` 32-bit
/// register slots per work-item and `lds_bytes_per_wg` bytes of local
/// memory per work-group of `wg_size` work-items.
///
/// # Errors
/// Returns an [`OccupancyError`] when even a single work-group cannot fit,
/// meaning the kernel fails to launch.
pub fn occupancy(
    dev: &DeviceSpec,
    wg_size: usize,
    regs_per_wi: usize,
    lds_bytes_per_wg: usize,
) -> Result<Occupancy, OccupancyError> {
    if wg_size == 0 {
        return Err(OccupancyError::EmptyWorkGroup);
    }
    if wg_size > dev.micro.max_wg_size {
        return Err(OccupancyError::WorkGroupTooLarge {
            wg_size,
            max: dev.micro.max_wg_size,
        });
    }
    let lds_avail = dev.local_mem_bytes();
    if lds_bytes_per_wg > lds_avail {
        return Err(OccupancyError::LocalMemExceeded {
            needed: lds_bytes_per_wg,
            available: lds_avail,
        });
    }
    let regs_per_wg = regs_per_wi * wg_size;
    if regs_per_wg > dev.micro.regs_per_cu {
        return Err(OccupancyError::RegistersExceeded {
            needed: regs_per_wg,
            available: dev.micro.regs_per_cu,
        });
    }

    let by_regs = dev
        .micro
        .regs_per_cu
        .checked_div(regs_per_wg)
        .unwrap_or(usize::MAX);
    let by_lds = lds_avail
        .checked_div(lds_bytes_per_wg)
        .unwrap_or(usize::MAX);
    let by_slots = dev.micro.max_wg_per_cu;
    let by_wis = dev.micro.max_wi_per_cu / wg_size;

    let (wgs, limiter) = [
        (by_regs, Limiter::Registers),
        (by_lds, Limiter::LocalMem),
        (by_slots, Limiter::WorkGroupSlots),
        (by_wis, Limiter::WorkItemSlots),
    ]
    .into_iter()
    .min_by_key(|(n, _)| *n)
    .expect("non-empty candidate list");

    // by_wis can be zero only if wg_size > max_wi_per_cu, which the
    // max_wg_size check should prevent on sane profiles; guard anyway.
    if wgs == 0 {
        return Err(OccupancyError::WorkGroupTooLarge {
            wg_size,
            max: dev.micro.max_wi_per_cu,
        });
    }

    let wis = wgs * wg_size;
    Ok(Occupancy {
        wgs_per_cu: wgs,
        wis_per_cu: wis,
        wavefronts_per_cu: wis.div_ceil(dev.micro.wavefront).max(1),
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceId;

    #[test]
    fn small_kernel_hits_slot_limit() {
        let dev = DeviceId::Tahiti.spec();
        let occ = occupancy(&dev, 64, 16, 0).unwrap();
        assert_eq!(occ.limiter, Limiter::WorkGroupSlots);
        assert_eq!(occ.wgs_per_cu, dev.micro.max_wg_per_cu);
    }

    #[test]
    fn register_hungry_kernel_is_register_limited() {
        let dev = DeviceId::Fermi.spec();
        // 128 slots/wi at wg=256 -> 32768 regs per wg -> exactly 1 resident.
        let occ = occupancy(&dev, 256, 128, 0).unwrap();
        assert_eq!(occ.wgs_per_cu, 1);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn lds_hungry_kernel_is_lds_limited() {
        let dev = DeviceId::Kepler.spec();
        let occ = occupancy(&dev, 64, 8, 20 * 1024).unwrap();
        assert_eq!(occ.wgs_per_cu, 2, "48 KiB / 20 KiB");
        assert_eq!(occ.limiter, Limiter::LocalMem);
    }

    #[test]
    fn oversize_work_group_fails() {
        let dev = DeviceId::Tahiti.spec(); // max 256 on AMD
        let err = occupancy(&dev, 512, 8, 0).unwrap_err();
        assert!(matches!(err, OccupancyError::WorkGroupTooLarge { .. }));
    }

    #[test]
    fn oversize_lds_fails() {
        let dev = DeviceId::Cayman.spec(); // 32 KiB
        let err = occupancy(&dev, 64, 8, 33 * 1024).unwrap_err();
        assert!(matches!(err, OccupancyError::LocalMemExceeded { .. }));
    }

    #[test]
    fn single_work_group_too_many_registers_fails() {
        let dev = DeviceId::Fermi.spec(); // 32768 slots
        let err = occupancy(&dev, 256, 200, 0).unwrap_err();
        assert!(matches!(err, OccupancyError::RegistersExceeded { .. }));
    }

    #[test]
    fn zero_size_group_fails() {
        let dev = DeviceId::Tahiti.spec();
        assert_eq!(
            occupancy(&dev, 0, 8, 0).unwrap_err(),
            OccupancyError::EmptyWorkGroup
        );
    }

    #[test]
    fn more_registers_never_increases_occupancy() {
        let dev = DeviceId::Tahiti.spec();
        let mut last = usize::MAX;
        for regs in [8, 16, 32, 64, 128, 256] {
            let occ = occupancy(&dev, 256, regs, 0).unwrap();
            assert!(
                occ.wgs_per_cu <= last,
                "occupancy must be monotone non-increasing in regs"
            );
            last = occ.wgs_per_cu;
        }
    }

    #[test]
    fn wavefront_count_rounds_up() {
        let dev = DeviceId::Kepler.spec(); // warp 32
        let occ = occupancy(&dev, 48, 8, 0).unwrap();
        assert_eq!(occ.wavefronts_per_cu, occ.wis_per_cu.div_ceil(32));
    }
}
