//! Simulated processor models for the `clgemm` workspace.
//!
//! The paper evaluates its auto-tuner on four GPUs and two CPUs (Table I).
//! This crate substitutes those physical processors with analytic device
//! models:
//!
//! * [`spec`] — the device description: the public Table I specification
//!   plus the microarchitectural calibration parameters
//!   ([`spec::MicroParams`]) that drive the timing model.
//! * [`profiles`] — the concrete devices: AMD Tahiti and Cayman, NVIDIA
//!   Kepler and Fermi, Intel Sandy Bridge, AMD Bulldozer — plus the AMD
//!   Cypress used in the paper's §IV-C comparison with prior work.
//! * [`mod@occupancy`] — how many work-groups fit on a compute unit given the
//!   kernel's register and local-memory appetite; the classic
//!   occupancy/latency-hiding trade-off the tuner must navigate.
//! * [`timing`] — the per-launch analytic performance model combining
//!   instruction issue, DRAM bandwidth with coalescing, local-memory
//!   bandwidth with bank conflicts, barrier overhead and an
//!   occupancy-scaled latency term.
//!
//! The design intent (see DESIGN.md §4) is that the *shape* of the tuning
//! landscape — which blocking factors, layouts and algorithms win on which
//! device — emerges from these constraints, so the heuristic search is
//! exercised exactly as on real hardware.

pub mod occupancy;
pub mod profiles;
pub mod spec;
pub mod timing;

pub use occupancy::{occupancy, Occupancy, OccupancyError};
pub use profiles::{all_devices, device_by_name, DeviceId};
pub use spec::{DeviceKind, DeviceSpec, LocalMemType, MicroParams, Vendor};
pub use timing::{
    estimate, estimate_batch_seconds, estimate_seconds, BoundKind, KernelLaunchProfile,
    TimingEstimate,
};
