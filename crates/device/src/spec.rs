//! Device descriptions: the public specification (Table I) plus the
//! microarchitectural calibration parameters behind the timing model.

/// Processor vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Amd,
    Nvidia,
    Intel,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Vendor::Amd => "AMD",
            Vendor::Nvidia => "NVIDIA",
            Vendor::Intel => "Intel",
        })
    }
}

/// GPU or CPU — the paper tunes both through the same OpenCL path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    Gpu,
    Cpu,
}

/// Where OpenCL local memory lives on this device (Table I "Local memory
/// type"). On GPUs it is a dedicated scratchpad; on the two CPUs it is
/// carved out of ordinary cached global memory, which is why the paper
/// sees no benefit from local-memory kernels there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalMemType {
    /// Dedicated on-chip scratchpad (all four GPUs).
    Scratchpad,
    /// Emulated in cached global memory (both CPUs).
    GlobalBacked,
}

/// Microarchitectural calibration parameters.
///
/// These are *not* in Table I; they are the knobs that make the analytic
/// timing model reproduce each processor's published GEMM behaviour. Each
/// field documents its provenance. Units: cycles are core-clock cycles,
/// bandwidths are bytes per core-clock cycle unless stated otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroParams {
    /// SIMT execution width: 64 on AMD wavefronts, 32 on NVIDIA warps,
    /// 1 on CPUs (a work-item is a scalar/vector lane of one thread).
    pub wavefront: usize,
    /// Register file per compute unit in 32-bit slots (e.g. 65536 on GCN
    /// and Kepler SMX, 32768 on Fermi SM). CPUs get a large value because
    /// "registers" spill to cache at modest cost.
    pub regs_per_cu: usize,
    /// Hard cap on concurrently resident work-groups per CU.
    pub max_wg_per_cu: usize,
    /// Hard cap on concurrently resident work-items per CU.
    pub max_wi_per_cu: usize,
    /// Maximum work-group size the runtime accepts.
    pub max_wg_size: usize,
    /// Global-memory (DRAM) access latency in cycles.
    pub global_latency: f64,
    /// Local-memory bandwidth per CU in bytes/cycle (e.g. 32 banks × 4 B
    /// on GCN). Ignored for [`LocalMemType::GlobalBacked`], where LDS
    /// traffic is charged as cache traffic instead.
    pub lds_bytes_per_cycle: f64,
    /// Cache bandwidth per CU in bytes/cycle for non-LDS on-chip reuse
    /// (L1 on GPUs; L1/L2 on CPUs).
    pub cache_bytes_per_cycle: f64,
    /// Cost of one work-group barrier in cycles.
    pub barrier_cost: f64,
    /// Fraction of the barrier cost that consumes CU throughput (cannot be
    /// hidden by other resident work-groups). High on Cayman's VLIW
    /// pipeline and ~1.0 on CPUs (thread synchronisation), low on GCN and
    /// NVIDIA where barriers mostly just de-schedule the wavefront.
    pub barrier_throughput_frac: f64,
    /// Issue efficiency ceiling for double-precision FMA streams compiled
    /// from OpenCL C. Captures ISA/compiler maturity: e.g. Fermi's DP unit
    /// shares issue ports with the load path (paper: 56% DGEMM ceiling);
    /// CPU OpenCL compilers reach well under half of MKL (§IV-B).
    pub issue_eff_dp: f64,
    /// Same for single precision (e.g. Kepler's SMX needs static ILP that
    /// OpenCL codegen does not provide — paper: 49% SGEMM ceiling).
    pub issue_eff_sp: f64,
    /// Fraction of memory-instruction issue cost hidden by dual-issue on
    /// a separate load/store port. Near 1 on GCN (vector memory ops issue
    /// independently of the VALU); low on Fermi, whose loads share issue
    /// slots with the arithmetic pipeline — a key reason the paper's Fermi
    /// DGEMM tops out near 56 %.
    pub mem_port_overlap: f64,
    /// Memory-transaction (coalescing) granularity in bytes: a wavefront's
    /// requests are served in chunks of this size.
    pub coalesce_bytes: usize,
    /// DRAM address interleaving granularity in bytes. Strides that are a
    /// large power-of-two multiple of this hit the same channel/bank and
    /// collapse effective bandwidth (the paper's "multiples of 2048"
    /// cliff on Tahiti with row-major layouts).
    pub channel_interleave_bytes: usize,
    /// Bandwidth multiplier applied when a power-of-two channel conflict
    /// is detected (≤ 1).
    pub channel_conflict_penalty: f64,
    /// Native SIMD width in 32-bit lanes for implicitly vectorised CPU
    /// work-items (8 for AVX). 1 on GPUs, whose PEs are scalar from the
    /// work-item's point of view.
    pub native_simd_lanes: usize,
    /// Minimum resident wavefronts per CU needed to keep every issue
    /// pipe busy (GCN has 4 SIMDs and wants ≥2 wavefronts each; CPUs
    /// saturate with a single thread). Below this, issue throughput
    /// scales down linearly — the §III-E occupancy effect.
    pub min_wavefronts: f64,
    /// Widest single memory transaction per load instruction in bytes
    /// (GPU load units split vectors beyond 128 bits; AVX CPUs move
    /// 256 bits).
    pub max_load_bytes: usize,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Sustained fraction of peak DRAM bandwidth achievable with perfectly
    /// coalesced streams (GPUs ~0.85, CPUs ~0.75).
    pub dram_efficiency: f64,
    /// Boost-clock multiplier over the listed core clock (only the
    /// overclocked Kepler card departs from 1.0; the paper notes its
    /// measured perf can exceed the listed peak for this reason).
    pub boost_factor: f64,
}

/// A complete simulated processor: Table I row + calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Architecture code name, e.g. "Tahiti" (the paper's identifier).
    pub code_name: String,
    /// Retail product, e.g. "Radeon HD 7970".
    pub product_name: String,
    pub vendor: Vendor,
    pub kind: DeviceKind,
    /// Core clock in GHz (Table I).
    pub clock_ghz: f64,
    /// Number of compute units (Table I).
    pub compute_units: usize,
    /// Device-wide max double-precision floating-point operations per
    /// clock (Table I "Max DP operations / clock").
    pub dp_ops_per_clock: usize,
    /// Device-wide max single-precision operations per clock.
    pub sp_ops_per_clock: usize,
    /// Global memory size in GiB (Table I).
    pub global_mem_gib: f64,
    /// Peak global memory bandwidth in GB/s (Table I).
    pub global_bw_gbs: f64,
    /// Local memory per compute unit in KiB (Table I).
    pub local_mem_kib: usize,
    pub local_mem_type: LocalMemType,
    /// OpenCL SDK the paper used on this processor (Table I), kept for
    /// reporting.
    pub sdk: String,
    pub micro: MicroParams,
}

impl DeviceSpec {
    /// Listed peak performance in GFlop/s at the listed clock (no boost):
    /// `clock × ops_per_clock`, matching the Table I "Peak" rows.
    #[must_use]
    pub fn peak_gflops(&self, double_precision: bool) -> f64 {
        let ops = if double_precision {
            self.dp_ops_per_clock
        } else {
            self.sp_ops_per_clock
        };
        self.clock_ghz * ops as f64
    }

    /// Effective clock in GHz including the boost factor.
    #[must_use]
    pub fn effective_clock_ghz(&self) -> f64 {
        self.clock_ghz * self.micro.boost_factor
    }

    /// FLOPs per cycle per compute unit at the given precision.
    #[must_use]
    pub fn flops_per_cycle_per_cu(&self, double_precision: bool) -> f64 {
        let ops = if double_precision {
            self.dp_ops_per_clock
        } else {
            self.sp_ops_per_clock
        };
        ops as f64 / self.compute_units as f64
    }

    /// Issue-efficiency ceiling at the given precision.
    #[must_use]
    pub fn issue_eff(&self, double_precision: bool) -> f64 {
        if double_precision {
            self.micro.issue_eff_dp
        } else {
            self.micro.issue_eff_sp
        }
    }

    /// Sustained DRAM bandwidth in bytes per core-clock cycle (whole
    /// device), at the effective clock.
    #[must_use]
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.global_bw_gbs * self.micro.dram_efficiency / self.effective_clock_ghz()
    }

    /// Local memory per CU in bytes.
    #[must_use]
    pub fn local_mem_bytes(&self) -> usize {
        self.local_mem_kib * 1024
    }

    /// Global memory capacity in bytes.
    #[must_use]
    pub fn global_mem_bytes(&self) -> usize {
        (self.global_mem_gib * 1024.0 * 1024.0 * 1024.0) as usize
    }

    /// Convert a cycle count into seconds at the effective clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.effective_clock_ghz() * 1e9)
    }

    /// `true` if this device prefers explicitly vectorised kernels (its
    /// work-items map to SIMD lanes of a wider hardware vector).
    #[must_use]
    pub fn is_cpu(&self) -> bool {
        self.kind == DeviceKind::Cpu
    }

    /// A stable identity string for persistent tuning results: the
    /// device name plus every constant that shapes the tuning
    /// landscape (compute layout, clock, register file, local memory,
    /// SIMT width). Two specs with the same fingerprint tune alike;
    /// recalibrating the model changes the fingerprint, so stale
    /// entries from an older calibration are never replayed.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "{}-cu{}-c{:.3}-b{:.3}-wf{}-r{}-l{}k-wg{}-simd{}",
            self.code_name.to_ascii_lowercase(),
            self.compute_units,
            self.clock_ghz,
            self.micro.boost_factor,
            self.micro.wavefront,
            self.micro.regs_per_cu,
            self.local_mem_kib,
            self.micro.max_wg_size,
            self.micro.native_simd_lanes,
        )
    }
}

impl std::fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} ({})",
            self.vendor, self.code_name, self.product_name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{all_devices, DeviceId};

    #[test]
    fn peaks_match_table_i() {
        // Table I "Peak DP/SP performance" rows, within rounding of the
        // published figures.
        let expect = [
            (DeviceId::Tahiti, 947.0, 3789.0),
            (DeviceId::Cayman, 676.0, 2703.0),
            (DeviceId::Kepler, 104.0, 2916.0), // 96 and 2688 ops/clk at 1.085 GHz
            (DeviceId::Fermi, 665.0, 1331.0),
            (DeviceId::SandyBridge, 158.4, 316.8),
            (DeviceId::Bulldozer, 115.2, 230.4),
        ];
        for (id, dp, sp) in expect {
            let d = id.spec();
            assert!(
                (d.peak_gflops(true) - dp).abs() / dp < 0.20,
                "{}: DP peak {} vs Table I {dp}",
                d.code_name,
                d.peak_gflops(true)
            );
            assert!(
                (d.peak_gflops(false) - sp).abs() / sp < 0.20,
                "{}: SP peak {} vs Table I {sp}",
                d.code_name,
                d.peak_gflops(false)
            );
        }
    }

    #[test]
    fn cpus_have_global_backed_local_memory() {
        for d in all_devices() {
            match d.kind {
                DeviceKind::Cpu => assert_eq!(d.local_mem_type, LocalMemType::GlobalBacked),
                DeviceKind::Gpu => assert_eq!(d.local_mem_type, LocalMemType::Scratchpad),
            }
        }
    }

    #[test]
    fn issue_efficiencies_are_probabilities() {
        for d in all_devices() {
            assert!(
                d.micro.issue_eff_dp > 0.0 && d.micro.issue_eff_dp <= 1.0,
                "{}",
                d.code_name
            );
            assert!(
                d.micro.issue_eff_sp > 0.0 && d.micro.issue_eff_sp <= 1.0,
                "{}",
                d.code_name
            );
            assert!(
                d.micro.barrier_throughput_frac >= 0.0 && d.micro.barrier_throughput_frac <= 1.0
            );
            assert!(d.micro.dram_efficiency > 0.0 && d.micro.dram_efficiency <= 1.0);
        }
    }

    #[test]
    fn cycle_conversion_uses_boost() {
        let kepler = DeviceId::Kepler.spec();
        assert!(
            kepler.micro.boost_factor > 1.0,
            "Kepler card is overclocked"
        );
        let secs = kepler.cycles_to_seconds(1e9);
        assert!(secs < 1.0 / kepler.clock_ghz, "boost shortens wall time");
    }

    #[test]
    fn dram_bytes_per_cycle_is_sane() {
        // Tahiti: 264 GB/s at 0.925 GHz is ~285 B/clk before derating.
        let t = DeviceId::Tahiti.spec();
        let b = t.dram_bytes_per_cycle();
        assert!(b > 200.0 && b < 290.0, "got {b}");
    }
}
