//! Seeded property suite for the strided-batched GEMM host path.
//!
//! The contract under test: for every descriptor the batched entry
//! point accepts — any transpose pair, batch sizes 1 through 64, shared
//! or per-entry operands, padded leading dimensions and strides, all
//! four storage types, and both execution paths — the result is **bit
//! identical** to a loop of single-GEMM routine calls over the widened
//! entries. The direct kernel, the packed pipeline's convert-on-pack
//! widening, and the padding introduced by blocking all preserve the
//! canonical ascending-depth FMA chain per C element, so exact equality
//! (not a tolerance) is the assertion throughout.
//!
//! Cases are drawn from a seeded [`clgemm_shim::Rng`], so failures
//! reproduce deterministically.

use clgemm::batched::{BatchOptions, BatchPath, BatchRun, DIRECT_BATCH_MAX};
use clgemm::params::small_test_params;
use clgemm::routine::TunedGemm;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::{Precision, Scalar, StorageScalar};
use clgemm_blas::{BatchWorkspace, Bf16, GemmBatch, GemmType, WorkspaceScalar, F16};
use clgemm_device::DeviceId;
use clgemm_shim::Rng;

fn tuned() -> TunedGemm {
    TunedGemm::new(
        DeviceId::Tahiti.spec(),
        small_test_params(Precision::F64),
        small_test_params(Precision::F32),
    )
}

/// Nonzero values on a 0.25 grid offset by 0.125: exactly representable
/// in every storage type's accumulator and never a signed zero, so the
/// padding lanes' trailing `fma(0, 0, acc)` terms are exact no-ops.
fn fill<S: StorageScalar>(rng: &mut Rng, slab: &mut [S]) {
    for cell in slab.iter_mut() {
        *cell = S::from_f64(rng.range(1, 17) as f64 * 0.25 - 2.125);
    }
}

fn slab_len(batch: usize, stride: usize, extent: usize) -> usize {
    if batch == 0 || extent == 0 {
        0
    } else {
        stride * (batch - 1) + extent
    }
}

/// One drawn scenario: the descriptor plus scaling factors and an
/// optional forced path.
struct Case {
    desc: GemmBatch,
    force: Option<BatchPath>,
    alpha: f64,
    beta: f64,
}

fn draw_case(rng: &mut Rng) -> Case {
    let ty = *rng.choose(&GemmType::ALL).unwrap();
    let batch = *rng.choose(&[1usize, 2, 3, 5, 8, 16, 64]).unwrap();
    let m = rng.range(1, 21);
    let n = rng.range(1, 21);
    let k = rng.range(1, 21);
    let mut desc = GemmBatch::packed(ty, batch, m, n, k);
    // Padded C rows and inter-entry gaps, sometimes.
    if rng.bool() {
        desc.ldc += rng.range(1, 4);
        desc.stride_c = desc.c_extent() + rng.range(0, 3);
    }
    match rng.range(0, 4) {
        0 => desc = desc.with_shared_a(),
        1 => desc = desc.with_shared_b(),
        _ => {}
    }
    let force = match rng.range(0, 3) {
        0 => Some(BatchPath::Packed),
        1 => Some(BatchPath::Direct),
        _ => None,
    };
    Case {
        desc,
        force,
        alpha: *rng.choose(&[1.0, 1.25, -0.75]).unwrap(),
        beta: *rng.choose(&[0.0, 0.5, -0.25, 1.0]).unwrap(),
    }
}

/// Run the batched call and compare every entry, bitwise, against a
/// loop of single-GEMM routine calls on the widened operands.
fn check<S>(tg: &TunedGemm, case: &Case, rng: &mut Rng, ws: &mut BatchWorkspace) -> BatchRun
where
    S: StorageScalar,
    S::Acc: WorkspaceScalar,
{
    let desc = &case.desc;
    let (ar, ac) = desc.a_dims();
    let (br, bc) = desc.b_dims();
    let mut a = vec![
        S::default();
        slab_len(
            desc.batch,
            desc.stride_a.max(desc.a_extent()),
            desc.a_extent()
        )
    ];
    let mut b = vec![
        S::default();
        slab_len(
            desc.batch,
            desc.stride_b.max(desc.b_extent()),
            desc.b_extent()
        )
    ];
    let mut c = vec![S::default(); desc.c_required()];
    fill(rng, &mut a);
    fill(rng, &mut b);
    fill(rng, &mut c);
    let c0 = c.clone();
    let alpha = S::Acc::from_f64(case.alpha);
    let beta = S::Acc::from_f64(case.beta);

    let opts = BatchOptions {
        force_path: case.force,
    };
    let run = tg
        .gemm_batch_with(desc, alpha, &a, &b, beta, &mut c, ws, &opts)
        .unwrap_or_else(|e| panic!("{desc}: {e}"));
    if let Some(path) = case.force {
        assert_eq!(run.path, path);
    }

    for i in 0..desc.batch {
        let widen = |slab: &[S], off: usize, rows: usize, cols: usize, ld: usize| {
            Matrix::from_fn(rows, cols, StorageOrder::ColMajor, |r, j| {
                slab[off + j * ld + r].widen()
            })
        };
        let am = widen(&a, desc.a_offset(i), ar, ac, desc.lda);
        let bm = widen(&b, desc.b_offset(i), br, bc, desc.ldb);
        let mut cm = widen(&c0, desc.c_offset(i), desc.m, desc.n, desc.ldc);
        tg.gemm(desc.ty, alpha, &am, &bm, beta, &mut cm);
        for j in 0..desc.n {
            for r in 0..desc.m {
                let got = c[desc.c_offset(i) + j * desc.ldc + r];
                let want = S::narrow(cm.at(r, j));
                assert_eq!(
                    got, want,
                    "{desc} ({}) entry {i} element ({r},{j}) diverges from the \
                     looped single-GEMM reference",
                    run.path
                );
            }
        }
        // Padding rows between columns stay untouched. The last
        // column's tail is excluded: with a tight extent it is where
        // the next entry begins.
        for j in 0..desc.n.saturating_sub(1) {
            for r in desc.m..desc.ldc {
                let idx = desc.c_offset(i) + j * desc.ldc + r;
                assert_eq!(c[idx], c0[idx], "{desc}: ld gap was written");
            }
        }
        // So is the slack between one entry's extent and the next.
        if i + 1 < desc.batch {
            for idx in desc.c_offset(i) + desc.c_extent()..desc.c_offset(i + 1) {
                assert_eq!(c[idx], c0[idx], "{desc}: stride gap was written");
            }
        }
    }
    run
}

#[test]
fn batched_gemm_is_bit_exact_for_f32_storage() {
    let tg = tuned();
    let mut rng = Rng::new(0xBA7C_4ED0);
    let mut ws = BatchWorkspace::new();
    for _ in 0..40 {
        let case = draw_case(&mut rng);
        check::<f32>(&tg, &case, &mut rng, &mut ws);
    }
}

#[test]
fn batched_gemm_is_bit_exact_for_f64_storage() {
    let tg = tuned();
    let mut rng = Rng::new(0xBA7C_4ED1);
    let mut ws = BatchWorkspace::new();
    for _ in 0..40 {
        let case = draw_case(&mut rng);
        check::<f64>(&tg, &case, &mut rng, &mut ws);
    }
}

#[test]
fn batched_gemm_is_bit_exact_for_f16_storage() {
    let tg = tuned();
    let mut rng = Rng::new(0xBA7C_4ED2);
    let mut ws = BatchWorkspace::new();
    for _ in 0..40 {
        let case = draw_case(&mut rng);
        let run = check::<F16>(&tg, &case, &mut rng, &mut ws);
        assert!(run.widened, "f16 storage must report convert-on-pack");
    }
}

#[test]
fn batched_gemm_is_bit_exact_for_bf16_storage() {
    let tg = tuned();
    let mut rng = Rng::new(0xBA7C_4ED3);
    let mut ws = BatchWorkspace::new();
    for _ in 0..40 {
        let case = draw_case(&mut rng);
        let run = check::<Bf16>(&tg, &case, &mut rng, &mut ws);
        assert!(run.widened);
    }
}

#[test]
fn past_crossover_shapes_route_to_the_packed_path_and_stay_exact() {
    let tg = tuned();
    let mut rng = Rng::new(0xC805_50E4);
    let mut ws = BatchWorkspace::new();
    for ty in GemmType::ALL {
        let case = Case {
            desc: GemmBatch::packed(ty, 3, DIRECT_BATCH_MAX + 22, 9, 7),
            force: None,
            alpha: 1.25,
            beta: -0.5,
        };
        let run = check::<f32>(&tg, &case, &mut rng, &mut ws);
        assert_eq!(run.path, BatchPath::Packed, "one edge past the crossover");
        assert!(run.tile.is_some() && run.pack.is_some());
    }
}

#[test]
fn batch_workspace_survives_shrink_then_grow() {
    let tg = tuned();
    let mut rng = Rng::new(0x5EED_5EED);
    let mut ws = BatchWorkspace::new();
    let opts = BatchOptions {
        force_path: Some(BatchPath::Packed),
    };
    let mut run_shape = |batch: usize, edge: usize, ws: &mut BatchWorkspace| {
        let desc = GemmBatch::packed(GemmType::NN, batch, edge, edge, edge);
        let mut a = vec![0f64; batch * edge * edge];
        let mut b = vec![0f64; batch * edge * edge];
        let mut c = vec![0f64; batch * edge * edge];
        fill(&mut rng, &mut a);
        fill(&mut rng, &mut b);
        fill(&mut rng, &mut c);
        tg.gemm_batch_with(&desc, 1.0, &a, &b, 0.5, &mut c, ws, &opts)
            .unwrap();
    };
    run_shape(4, 48, &mut ws);
    let grows_after_big = ws.grows();
    assert!(grows_after_big > 0, "first call must size the pools");
    // Shrink: a smaller shape fits in the retained buffers.
    run_shape(2, 16, &mut ws);
    assert_eq!(ws.grows(), grows_after_big, "shrinking must reuse");
    // Grow back to the original shape: still no new allocation.
    run_shape(4, 48, &mut ws);
    assert_eq!(
        ws.grows(),
        grows_after_big,
        "regrowth within the high-water mark"
    );
    // A genuinely larger shape is allowed to grow again.
    run_shape(4, 80, &mut ws);
    assert!(ws.grows() > grows_after_big);
}

#[test]
fn degenerate_descriptors_follow_blas_semantics() {
    let tg = tuned();
    let mut ws = BatchWorkspace::new();
    for desc in [
        GemmBatch::packed(GemmType::NN, 0, 8, 8, 8),
        GemmBatch::packed(GemmType::TN, 4, 0, 8, 8),
        GemmBatch::packed(GemmType::NT, 4, 8, 0, 8),
    ] {
        let run = tg
            .gemm_batch::<f32>(&desc, 1.0, &[], &[], 0.5, &mut [], &mut ws)
            .unwrap();
        assert_eq!(run.total, 0.0, "{desc} does nothing");
        assert_eq!(ws.grows(), 0);
    }
    // k == 0: C is scaled by beta, through the same narrow(merge) chain
    // a real kernel would apply.
    let desc = GemmBatch::packed(GemmType::TT, 2, 3, 2, 0);
    let mut c: Vec<f64> = (0..12).map(|i| i as f64 - 5.5).collect();
    let c0 = c.clone();
    tg.gemm_batch::<f64>(&desc, 1.0, &[], &[], -2.0, &mut c, &mut ws)
        .unwrap();
    for (got, want) in c.iter().zip(c0.iter().map(|v| -2.0 * v)) {
        assert_eq!(*got, want);
    }
    // Mismatched slab lengths are an error, not UB.
    let bad = GemmBatch::packed(GemmType::NN, 2, 8, 8, 8);
    assert!(tg
        .gemm_batch::<f32>(
            &bad,
            1.0,
            &[0.0; 64],
            &[0.0; 128],
            0.0,
            &mut [0.0; 128],
            &mut ws
        )
        .is_err());
}
