//! Property test for the routine layer's fast host data path.
//!
//! The fast engine (parallel packing, panel microkernel, reusable
//! workspace) must be *bit-for-bit* identical to the reference engine
//! (serial packing, `run_native`, fresh allocations) — not merely within
//! tolerance. One seeded RNG drives every case; one `Workspace` is
//! reused across all fast-path calls with shapes that shrink and then
//! grow again, so stale buffer contents from larger earlier problems are
//! live in every later case.

use clgemm::params::small_test_params;
use clgemm::routine::{GemmOptions, TunedGemm};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::workspace::{Workspace, WorkspaceScalar};
use clgemm_blas::{GemmType, Trans};
use clgemm_device::DeviceId;
use clgemm_shim::rng::Rng;

fn tuned_with_layouts(la: BlockLayout, lb: BlockLayout) -> TunedGemm {
    let mut d = small_test_params(Precision::F64);
    let mut s = small_test_params(Precision::F32);
    for p in [&mut d, &mut s] {
        p.layout_a = la;
        p.layout_b = lb;
    }
    TunedGemm::new(DeviceId::Tahiti.spec(), d, s)
}

fn rand_matrix<T: WorkspaceScalar>(rng: &mut Rng, rows: usize, cols: usize) -> Matrix<T> {
    let order = if rng.bool() {
        StorageOrder::ColMajor
    } else {
        StorageOrder::RowMajor
    };
    let mut vals: Vec<f64> = (0..rows.max(1) * cols.max(1))
        .map(|_| rng.f64() * 4.0 - 2.0)
        .collect();
    // A few exact values so alpha/beta interactions hit exact zeros too.
    if let Some(v) = vals.first_mut() {
        *v = 0.0;
    }
    Matrix::from_fn(rows, cols, order, |i, j| {
        T::from_f64(vals[i * cols.max(1) + j])
    })
}

/// Run one case through both engines and demand exact equality.
fn check_case<T: WorkspaceScalar>(
    tg: &TunedGemm,
    ws: &mut Workspace,
    rng: &mut Rng,
    ty: GemmType,
    m: usize,
    n: usize,
    k: usize,
) {
    let (ar, ac) = if ty.ta == Trans::No { (m, k) } else { (k, m) };
    let (br, bc) = if ty.tb == Trans::No { (k, n) } else { (n, k) };
    let a = rand_matrix::<T>(rng, ar, ac);
    let b = rand_matrix::<T>(rng, br, bc);
    let c0 = rand_matrix::<T>(rng, m, n);
    // α = 0 exercises the fast engine's pack-free short-circuit against
    // the reference's full pipeline (slice equality treats −0 == +0, the
    // only representation the short-circuit may legally change).
    let alpha = T::from_f64(*rng.choose(&[0.0, 1.0, -0.5, 1.25, 2.0]).unwrap());
    let beta = T::from_f64(*rng.choose(&[0.0, 1.0, -0.75, 0.5]).unwrap());

    let mut c_fast = c0.clone();
    tg.gemm_with(
        ty,
        alpha,
        &a,
        &b,
        beta,
        &mut c_fast,
        ws,
        &GemmOptions::default(),
    );

    let mut c_ref = c0.clone();
    let mut fresh = Workspace::new();
    tg.gemm_with(
        ty,
        alpha,
        &a,
        &b,
        beta,
        &mut c_ref,
        &mut fresh,
        &GemmOptions::reference(),
    );

    assert_eq!(
        c_fast.as_slice(),
        c_ref.as_slice(),
        "fast != reference for {ty} {m}x{n}x{k} α={alpha} β={beta}"
    );
}

#[test]
fn fast_path_is_bit_identical_across_layouts_types_and_reuse() {
    let mut rng = Rng::new(0x1234_5678_9abc_def0);
    // Odd and prime extents so nothing divides the 16/16/8 blocking;
    // ordered large → small → large so the single reused workspace
    // shrinks and then grows mid-sequence.
    let shapes = [
        (29usize, 31usize, 23usize),
        (5, 7, 3),
        (13, 1, 17),
        (37, 41, 29),
    ];
    let mut case = 0usize;
    for la in BlockLayout::ALL {
        for lb in BlockLayout::ALL {
            let tg = tuned_with_layouts(la, lb);
            // ONE workspace across every type and shape for this pair.
            let mut ws = Workspace::new();
            for ty in GemmType::ALL {
                let (m, n, k) = shapes[case % shapes.len()];
                if case.is_multiple_of(2) {
                    check_case::<f64>(&tg, &mut ws, &mut rng, ty, m, n, k);
                    check_case::<f32>(&tg, &mut ws, &mut rng, ty, n, m, k);
                } else {
                    check_case::<f32>(&tg, &mut ws, &mut rng, ty, m, n, k);
                    check_case::<f64>(&tg, &mut ws, &mut rng, ty, n, m, k);
                }
                case += 1;
            }
        }
    }
    assert_eq!(case, 36, "every layout pair and type combination ran");
}

#[test]
fn reused_workspace_never_grows_for_non_increasing_shapes() {
    let tg = tuned_with_layouts(BlockLayout::Cbl, BlockLayout::Rbl);
    let mut ws = Workspace::new();
    let mut rng = Rng::new(7);
    // Largest first: everything after must reuse without growth.
    check_case::<f64>(&tg, &mut ws, &mut rng, GemmType::NN, 41, 37, 29);
    let grows = ws.grows();
    for (m, n, k) in [(41, 37, 29), (17, 19, 13), (3, 2, 5), (41, 37, 29)] {
        check_case::<f64>(&tg, &mut ws, &mut rng, GemmType::TN, m, n, k);
    }
    assert_eq!(
        ws.grows(),
        grows,
        "no growth for shapes within the high-water mark"
    );
}
