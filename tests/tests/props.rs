//! Property-based tests (proptest) on the core invariants:
//!
//! * any structurally valid parameter set yields a kernel that compiles
//!   and executes bit-identically to the native oracle;
//! * packing is invertible for arbitrary shapes and layouts;
//! * the timing model stays finite, positive, and monotone in work.

use clgemm::params::{Algorithm, KernelParams, StrideMode};
use clgemm::profile::launch_profile;
use clgemm::tuner::search::verify_kernel;
use clgemm_blas::layout::{round_up, BlockLayout};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{pack_operand, unpack_operand, PackSpec};
use clgemm_blas::scalar::Precision;
use clgemm_blas::Trans;
use clgemm_device::{estimate, DeviceId};
use proptest::prelude::*;

/// Strategy producing *valid* kernel parameter sets (built from factors
/// so every divisibility constraint holds by construction).
fn valid_params() -> impl Strategy<Value = KernelParams> {
    (
        (
            2usize..=8,                      // mdimc
            2usize..=8,                      // ndimc
            1usize..=4,                      // mwi
            prop::sample::select(vec![2usize, 4]), // nwi (divisible by vw later)
        ),
        (
            1usize..=3,                      // kwg blocks of kwi
            prop::sample::select(vec![1usize, 2]), // kwi
            prop::sample::select(vec![1usize, 2]), // vw
        ),
        (
            any::<bool>(),                   // stride_m unit?
            any::<bool>(),                   // stride_n unit?
        ),
        (
            0usize..3,                       // algorithm index
            0usize..3,                       // layout_a index
            0usize..3,                       // layout_b index
            any::<bool>(),                   // precision f64?
        ),
    )
        .prop_filter_map("constraints", |((mdimc, ndimc, mwi, nwi), (kblocks, kwi, vw), (sm, sn), (alg, la, lb, dp))| {
            if nwi % vw != 0 {
                return None;
            }
            let algorithm = Algorithm::ALL[alg];
            let p = KernelParams {
                mwg: mdimc * mwi,
                nwg: ndimc * nwi,
                kwg: kblocks * kwi * 2,
                mdimc,
                ndimc,
                kwi,
                mdima: mdimc,
                ndimb: ndimc,
                vw,
                stride_m: if sm { StrideMode::Unit } else { StrideMode::NonUnit },
                stride_n: if sn { StrideMode::Unit } else { StrideMode::NonUnit },
                local_a: algorithm != Algorithm::Ba || la == 0,
                local_b: algorithm != Algorithm::Ba || lb == 0,
                layout_a: BlockLayout::ALL[la],
                layout_b: BlockLayout::ALL[lb],
                algorithm,
                precision: if dp { Precision::F64 } else { Precision::F32 },
            };
            p.validate().ok()?;
            Some(p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The flagship property: every valid parameter set survives the
    /// paper's pipeline — generation, compilation, VM execution — and
    /// matches the native oracle bit for bit.
    #[test]
    fn any_valid_params_verify_end_to_end(p in valid_params()) {
        verify_kernel(&p).unwrap_or_else(|e| panic!("{e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// pack ∘ unpack = id for any shape, layout, blocking and transpose.
    #[test]
    fn pack_unpack_roundtrip(
        k in 1usize..40,
        w in 1usize..40,
        wwg in 1usize..12,
        kwg in 1usize..12,
        layout_idx in 0usize..3,
        transpose in any::<bool>(),
    ) {
        let layout = BlockLayout::ALL[layout_idx];
        let (rows, cols) = if transpose { (w, k) } else { (k, w) };
        let x = Matrix::<f64>::test_pattern(rows, cols, StorageOrder::ColMajor, 5);
        let spec = PackSpec {
            trans: if transpose { Trans::Yes } else { Trans::No },
            layout,
            wwg,
            kwg,
        };
        let (buf, dims) = pack_operand(&x, spec, k, w);
        prop_assert_eq!(dims.k, round_up(k, kwg));
        prop_assert_eq!(dims.width, round_up(w, wwg));
        let back = unpack_operand(&buf, layout, dims, k, w, StorageOrder::ColMajor);
        for p in 0..k {
            for c in 0..w {
                prop_assert_eq!(back.at(p, c), x.at_op(spec.trans, p, c));
            }
        }
    }

    /// The timing model is finite, positive, and at least linear in K.
    #[test]
    fn timing_model_sane_and_monotone(p in valid_params()) {
        let dev = DeviceId::Tahiti.spec();
        let m = p.mwg * 2;
        let n = p.nwg * 2;
        let k1 = p.k_multiple() * 2;
        let k2 = k1 * 4;
        let prof1 = launch_profile(&p, &dev, m, n, k1);
        let prof2 = launch_profile(&p, &dev, m, n, k2);
        if let (Ok(e1), Ok(e2)) = (estimate(&dev, &prof1), estimate(&dev, &prof2)) {
            prop_assert!(e1.seconds.is_finite() && e1.seconds > 0.0);
            prop_assert!(e2.seconds > e1.seconds, "4x the K work must take longer");
            // Efficiency can never exceed the boosted peak.
            let flops1 = 2.0 * (m * n * k1) as f64;
            let boosted_peak =
                dev.peak_gflops(p.precision == Precision::F64) * dev.micro.boost_factor;
            prop_assert!(e1.gflops(flops1) <= boosted_peak * 1.0001);
        }
    }

    /// Register and local-memory estimates never go negative or absurd,
    /// and DB always doubles local memory vs BA.
    #[test]
    fn resource_estimates_consistent(p in valid_params()) {
        prop_assert!(p.regs_per_wi() >= 24);
        prop_assert!(p.lds_bytes() <= 2 * (p.kwg * (p.mwg + p.nwg)) * p.elem_bytes());
        if p.algorithm == Algorithm::Db {
            let mut ba = p;
            ba.algorithm = Algorithm::Ba;
            prop_assert_eq!(p.lds_bytes(), 2 * ba.lds_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The search never returns an invalid or unlaunchable kernel, on any
    /// device, with or without measurement noise.
    #[test]
    fn search_winner_always_valid(seed in 0u64..1000, noisy in any::<bool>()) {
        use clgemm::tuner::{tune, SearchOpts, SearchSpace};
        let dev = DeviceId::Cayman.spec();
        let space = SearchSpace::smoke(&dev);
        let opts = SearchOpts {
            top_k: 4,
            max_sweep_points: 3,
            verify_winner: false,
            noise: if noisy { 0.05 } else { 0.0 },
            noise_seed: seed,
            ..Default::default()
        };
        let res = tune(&dev, Precision::F32, &space, &opts);
        prop_assert!(res.best.params.validate().is_ok());
        prop_assert!(res.best.params.lds_bytes() <= dev.local_mem_bytes());
        prop_assert!(res.best.gflops > 0.0);
    }
}
