//! Randomised property tests on the core invariants:
//!
//! * any structurally valid parameter set yields a kernel that compiles
//!   and executes bit-identically to the native oracle;
//! * packing is invertible for arbitrary shapes and layouts;
//! * the timing model stays finite, positive, and monotone in work.
//!
//! Cases are generated from a seeded [`clgemm_shim::Rng`], so every run
//! exercises the same inputs and failures reproduce deterministically.

use clgemm::params::{Algorithm, KernelParams, StrideMode};
use clgemm::profile::launch_profile;
use clgemm::tuner::search::verify_kernel;
use clgemm_blas::layout::{round_up, BlockLayout};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{pack_operand, unpack_operand, PackSpec};
use clgemm_blas::scalar::Precision;
use clgemm_blas::Trans;
use clgemm_device::{estimate, DeviceId};
use clgemm_shim::Rng;

/// Draw a *valid* kernel parameter set (built from factors so every
/// divisibility constraint holds by construction). Retries until the
/// resource validator accepts the draw.
fn valid_params(rng: &mut Rng) -> KernelParams {
    loop {
        let mdimc = rng.range(2, 9);
        let ndimc = rng.range(2, 9);
        let mwi = rng.range(1, 5);
        let nwi = *rng.choose(&[2usize, 4]).unwrap();
        let kblocks = rng.range(1, 4);
        let kwi = *rng.choose(&[1usize, 2]).unwrap();
        let vw = *rng.choose(&[1usize, 2]).unwrap();
        if !nwi.is_multiple_of(vw) {
            continue;
        }
        let algorithm = *rng.choose(&Algorithm::ALL).unwrap();
        let la = rng.range(0, 3);
        let lb = rng.range(0, 3);
        let p = KernelParams {
            mwg: mdimc * mwi,
            nwg: ndimc * nwi,
            kwg: kblocks * kwi * 2,
            mdimc,
            ndimc,
            kwi,
            mdima: mdimc,
            ndimb: ndimc,
            vw,
            stride_m: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            stride_n: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            local_a: algorithm != Algorithm::Ba || la == 0,
            local_b: algorithm != Algorithm::Ba || lb == 0,
            layout_a: BlockLayout::ALL[la],
            layout_b: BlockLayout::ALL[lb],
            algorithm,
            precision: if rng.bool() {
                Precision::F64
            } else {
                Precision::F32
            },
        };
        if p.validate().is_ok() {
            return p;
        }
    }
}

/// The flagship property: every valid parameter set survives the
/// paper's pipeline — generation, compilation, VM execution — and
/// matches the native oracle bit for bit.
#[test]
fn any_valid_params_verify_end_to_end() {
    let mut rng = Rng::new(0xC0FFEE);
    for case in 0..24 {
        let p = valid_params(&mut rng);
        verify_kernel(&p).unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// pack ∘ unpack = id for any shape, layout, blocking and transpose.
#[test]
fn pack_unpack_roundtrip() {
    let mut rng = Rng::new(42);
    for _ in 0..64 {
        let k = rng.range(1, 40);
        let w = rng.range(1, 40);
        let wwg = rng.range(1, 12);
        let kwg = rng.range(1, 12);
        let layout = BlockLayout::ALL[rng.range(0, 3)];
        let transpose = rng.bool();

        let (rows, cols) = if transpose { (w, k) } else { (k, w) };
        let x = Matrix::<f64>::test_pattern(rows, cols, StorageOrder::ColMajor, 5);
        let spec = PackSpec {
            trans: if transpose { Trans::Yes } else { Trans::No },
            layout,
            wwg,
            kwg,
        };
        let (buf, dims) = pack_operand(&x, spec, k, w);
        assert_eq!(dims.k, round_up(k, kwg));
        assert_eq!(dims.width, round_up(w, wwg));
        let back = unpack_operand(&buf, layout, dims, k, w, StorageOrder::ColMajor);
        for p in 0..k {
            for c in 0..w {
                assert_eq!(back.at(p, c), x.at_op(spec.trans, p, c));
            }
        }
    }
}

/// The timing model is finite, positive, and at least linear in K.
#[test]
fn timing_model_sane_and_monotone() {
    let mut rng = Rng::new(7);
    let dev = DeviceId::Tahiti.spec();
    for _ in 0..64 {
        let p = valid_params(&mut rng);
        let m = p.mwg * 2;
        let n = p.nwg * 2;
        let k1 = p.k_multiple() * 2;
        let k2 = k1 * 4;
        let prof1 = launch_profile(&p, &dev, m, n, k1);
        let prof2 = launch_profile(&p, &dev, m, n, k2);
        if let (Ok(e1), Ok(e2)) = (estimate(&dev, &prof1), estimate(&dev, &prof2)) {
            assert!(e1.seconds.is_finite() && e1.seconds > 0.0);
            assert!(e2.seconds > e1.seconds, "4x the K work must take longer");
            // Efficiency can never exceed the boosted peak.
            let flops1 = 2.0 * (m * n * k1) as f64;
            let boosted_peak =
                dev.peak_gflops(p.precision == Precision::F64) * dev.micro.boost_factor;
            assert!(e1.gflops(flops1) <= boosted_peak * 1.0001);
        }
    }
}

/// Register and local-memory estimates never go negative or absurd,
/// and DB always doubles local memory vs BA.
#[test]
fn resource_estimates_consistent() {
    let mut rng = Rng::new(11);
    for _ in 0..64 {
        let p = valid_params(&mut rng);
        assert!(p.regs_per_wi() >= 24);
        assert!(p.lds_bytes() <= 2 * (p.kwg * (p.mwg + p.nwg)) * p.elem_bytes());
        if p.algorithm == Algorithm::Db {
            let mut ba = p;
            ba.algorithm = Algorithm::Ba;
            assert_eq!(p.lds_bytes(), 2 * ba.lds_bytes());
        }
    }
}

/// The search never returns an invalid or unlaunchable kernel, on any
/// device, with or without measurement noise.
#[test]
fn search_winner_always_valid() {
    use clgemm::tuner::{tune, SearchOpts, SearchSpace};
    let mut rng = Rng::new(99);
    let dev = DeviceId::Cayman.spec();
    let space = SearchSpace::smoke(&dev);
    for _ in 0..16 {
        let seed = rng.next_u64() % 1000;
        let noisy = rng.bool();
        let opts = SearchOpts {
            top_k: 4,
            max_sweep_points: 3,
            verify_winner: false,
            noise: if noisy { 0.05 } else { 0.0 },
            noise_seed: seed,
            ..Default::default()
        };
        let res = tune(&dev, Precision::F32, &space, &opts);
        assert!(res.best.params.validate().is_ok());
        assert!(res.best.params.lds_bytes() <= dev.local_mem_bytes());
        assert!(res.best.gflops > 0.0);
    }
}
