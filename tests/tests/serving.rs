//! Serving-layer equivalence: however the server batches, caches and
//! schedules a workload across devices, every request's `C` must be
//! bit-for-bit identical to running the same `TunedGemm::gemm` call
//! sequentially with the parameters the server reports having used.

use clgemm::params::{small_test_params, KernelParams};
use clgemm::routine::TunedGemm;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::{GemmType, Trans};
use clgemm_device::{DeviceId, DeviceSpec};
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Outcome, Priority, ServeConfig};
use clgemm_shim::Rng;

fn pool() -> Vec<DeviceSpec> {
    vec![
        DeviceId::Tahiti.spec(),
        DeviceId::Cayman.spec(),
        DeviceId::Fermi.spec(),
    ]
}

/// A random well-formed request: random shape, transpose type,
/// precision, priority and scalars.
fn random_request(rng: &mut Rng) -> GemmRequest {
    // Dimensions are drawn within one of three bucket classes (32³, 64³,
    // 128³) so that requests collide in buckets often enough to exercise
    // coalescing and the cache, while shapes still vary freely inside a
    // bucket.
    fn dim(rng: &mut Rng, class: usize) -> usize {
        match class {
            0 => rng.range(17, 33),
            1 => rng.range(33, 65),
            _ => rng.range(65, 129),
        }
    }
    let class = rng.range(0, 3);
    let m = dim(rng, class);
    let n = dim(rng, class);
    let k = dim(rng, class);
    let ty = GemmType::ALL[rng.range(0, 4)];
    let (ar, ac) = if ty.ta == Trans::Yes { (k, m) } else { (m, k) };
    let (br, bc) = if ty.tb == Trans::Yes { (n, k) } else { (k, n) };
    let priority = [Priority::High, Priority::Normal, Priority::Low][rng.range(0, 3)];
    let order = StorageOrder::ColMajor;
    let payload = if rng.range(0, 2) == 0 {
        GemmPayload::F64 {
            alpha: rng.f64() * 2.0 - 1.0,
            a: Matrix::test_pattern(ar, ac, order, rng.next_u64()),
            b: Matrix::test_pattern(br, bc, order, rng.next_u64()),
            beta: rng.f64() * 2.0 - 1.0,
            c: Matrix::test_pattern(m, n, order, rng.next_u64()),
        }
    } else {
        GemmPayload::F32 {
            alpha: (rng.f64() * 2.0 - 1.0) as f32,
            a: Matrix::test_pattern(ar, ac, order, rng.next_u64()),
            b: Matrix::test_pattern(br, bc, order, rng.next_u64()),
            beta: (rng.f64() * 2.0 - 1.0) as f32,
            c: Matrix::test_pattern(m, n, order, rng.next_u64()),
        }
    };
    GemmRequest::new(ty, payload).with_priority(priority)
}

/// Replay a served request sequentially through `TunedGemm::gemm` with
/// the parameters the response reports, from the original operands.
fn replay_sequentially(
    devices: &[DeviceSpec],
    device: &str,
    params: KernelParams,
    ty: GemmType,
    original: &GemmPayload,
) -> GemmPayload {
    let spec = devices
        .iter()
        .find(|d| d.code_name == device)
        .unwrap_or_else(|| panic!("unknown device {device}"))
        .clone();
    let tuned = match original.precision() {
        Precision::F64 => TunedGemm::new(spec, params, small_test_params(Precision::F32)),
        Precision::F32 => TunedGemm::new(spec, small_test_params(Precision::F64), params),
    };
    let mut payload = original.clone();
    match &mut payload {
        GemmPayload::F64 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            tuned.gemm(ty, *alpha, a, b, *beta, c);
        }
        GemmPayload::F32 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            tuned.gemm(ty, *alpha, a, b, *beta, c);
        }
    }
    payload
}

/// `C` as raw bits, so comparison is bit-for-bit rather than approximate.
fn c_bits(p: &GemmPayload) -> Vec<u64> {
    match p {
        GemmPayload::F64 { c, .. } => c.as_slice().iter().map(|v| v.to_bits()).collect(),
        GemmPayload::F32 { c, .. } => c
            .as_slice()
            .iter()
            .map(|v| u64::from(v.to_bits()))
            .collect(),
    }
}

#[test]
fn batched_scheduled_execution_matches_sequential_gemm_bit_for_bit() {
    let devices = pool();
    for seed in [0xC0FFEE_u64, 7, 99] {
        let mut rng = Rng::new(seed);
        let mut server = GemmServer::new(
            devices.clone(),
            ServeConfig {
                max_batch: 3,
                cache_capacity: 16,
                ..Default::default()
            },
        );
        // Several drains against one server so later rounds hit the
        // cache and land on pre-loaded queues — the interleaving and
        // placement differ per round, the results must not.
        let mut originals: Vec<GemmRequest> = Vec::new();
        for _round in 0..3 {
            let batch_start = originals.len();
            for _ in 0..8 {
                let req = random_request(&mut rng);
                originals.push(req.clone());
                server.submit(req).expect("queue has room");
            }
            assert_eq!(server.drain(), originals.len() - batch_start);
        }

        let responses = server.take_responses();
        assert_eq!(responses.len(), originals.len());
        for resp in &responses {
            assert_eq!(resp.outcome, Outcome::Completed);
            let original = &originals[resp.id as usize];
            let expect = replay_sequentially(
                &devices,
                &resp.device,
                resp.params,
                resp.ty,
                &original.payload,
            );
            assert_eq!(
                c_bits(&resp.payload),
                c_bits(&expect),
                "seed {seed}, request {}: served C diverges from sequential replay \
                 on {} with {:?}",
                resp.id,
                resp.device,
                resp.params
            );
        }
        // The workload is varied enough that the serving machinery must
        // actually have been exercised.
        let stats = server.stats();
        assert!(stats.cache_hits > 0, "seed {seed}: no cache hit:\n{stats}");
        assert!(
            stats.max_batch > 1,
            "seed {seed}: nothing coalesced:\n{stats}"
        );
        assert!(
            stats.devices_used() >= 2,
            "seed {seed}: one device did it all:\n{stats}"
        );
    }
}

#[test]
fn concurrent_submitters_lose_nothing_and_stay_bit_exact() {
    let devices = pool();
    let mut server = GemmServer::new(devices.clone(), ServeConfig::default());
    let submitter = server.submitter();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;

    // Each thread records which id its requests were assigned.
    let assigned: Vec<(u64, GemmRequest)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let submitter = submitter.clone();
                scope.spawn(move || {
                    let mut rng = Rng::new(0xAB5E_ED00 + t as u64);
                    let mut mine = Vec::with_capacity(PER_THREAD);
                    for _ in 0..PER_THREAD {
                        let req = random_request(&mut rng);
                        let id = submitter.submit(req.clone()).expect("queue has room");
                        mine.push((id, req));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panic"))
            .collect()
    });

    assert_eq!(server.drain(), THREADS * PER_THREAD);
    let responses = server.take_responses();
    assert_eq!(responses.len(), THREADS * PER_THREAD);
    for resp in responses {
        let (_, original) = assigned
            .iter()
            .find(|(id, _)| *id == resp.id)
            .expect("response for a request nobody sent");
        let expect = replay_sequentially(
            &devices,
            &resp.device,
            resp.params,
            resp.ty,
            &original.payload,
        );
        assert_eq!(
            c_bits(&resp.payload),
            c_bits(&expect),
            "request {} diverged",
            resp.id
        );
    }
}

#[test]
fn single_device_and_multi_device_servers_agree_on_results() {
    // Placement freedom must never change numerics: serve the same
    // workload on a one-device pool and a three-device pool and compare
    // C for requests that used the same kernel parameters.
    let mut rng = Rng::new(42);
    let workload: Vec<GemmRequest> = (0..10).map(|_| random_request(&mut rng)).collect();

    let run = |devices: Vec<DeviceSpec>| {
        let mut server = GemmServer::new(devices, ServeConfig::default());
        for req in &workload {
            server.submit(req.clone()).expect("queue has room");
        }
        server.drain();
        let mut responses = server.take_responses();
        responses.sort_by_key(|r| r.id);
        responses
    };

    let solo = run(vec![DeviceId::Tahiti.spec()]);
    let multi = run(pool());
    for (a, b) in solo.iter().zip(&multi) {
        assert_eq!(a.id, b.id);
        if a.params == b.params {
            assert_eq!(c_bits(&a.payload), c_bits(&b.payload), "request {}", a.id);
        }
    }
}
