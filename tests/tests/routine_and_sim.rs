//! Integration of the routine layer with the reference BLAS, and of the
//! sim runtime with generated kernels.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::small_test_params;
use clgemm::profile::launch_profile;
use clgemm::routine::TunedGemm;
use clgemm_blas::error::{compare, gemm_tolerance};
use clgemm_blas::gemm_ref::gemm_blocked;
use clgemm_blas::layout::PackedDims;
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_clc::NdRange;
use clgemm_device::DeviceId;
use clgemm_integration::gemm_operands;
use clgemm_sim::{CommandQueue, ExecMode, KernelArg, Platform};

#[test]
fn routine_matches_reference_on_awkward_sizes() {
    let tg = TunedGemm::new(
        DeviceId::Cayman.spec(),
        small_test_params(Precision::F64),
        small_test_params(Precision::F32),
    );
    for ty in GemmType::ALL {
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (16, 16, 16),
            (33, 29, 31),
            (64, 1, 64),
        ] {
            let (a, b, c0) = gemm_operands::<f64>(ty, m, n, k);
            let mut c = c0.clone();
            tg.gemm(ty, 0.5, &a, &b, 2.0, &mut c);
            let mut c_ref = c0.clone();
            gemm_blocked(ty, 0.5, &a, &b, 2.0, &mut c_ref);
            let rep = compare(&c, &c_ref);
            assert!(
                rep.passes(gemm_tolerance::<f64>(k)),
                "{ty} {m}x{n}x{k}: rel err {}",
                rep.max_rel
            );
        }
    }
}

#[test]
fn generated_kernel_runs_through_the_sim_runtime() {
    // The full OpenCL-host-API path: platform → device → context →
    // buffers → build → enqueue with profile → functional result + event
    // timing.
    let p = small_test_params(Precision::F32);
    let gen = generate(&p).unwrap();
    let platform = Platform::table1();
    let device = platform.device("Kepler").unwrap();
    let mut ctx = device.create_context();
    let prog = ctx.build_program(&gen.source).unwrap();
    assert!(prog.kernel_names().any(|n| n == KERNEL_NAME));

    let (m, n, k) = (p.mwg, p.nwg, 2 * p.kwg);
    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();
    let a = ctx.create_buffer_f32(a_dims.len()).unwrap();
    let b = ctx.create_buffer_f32(b_dims.len()).unwrap();
    let c = ctx.create_buffer_f32(m * n).unwrap();
    ctx.write_f32(a, &vec![0.5; a_dims.len()]).unwrap();
    ctx.write_f32(b, &vec![2.0; b_dims.len()]).unwrap();

    let profile = launch_profile(&p, device.spec(), m, n, k);
    let nd = gen.ndrange(m, n);
    let mut q = CommandQueue::new();
    let ev = q
        .enqueue_kernel(
            &mut ctx,
            &prog,
            KERNEL_NAME,
            NdRange::d2(nd.global, nd.local),
            &[
                KernelArg::Buf(a),
                KernelArg::Buf(b),
                KernelArg::Buf(c),
                KernelArg::I32(m as i32),
                KernelArg::I32(n as i32),
                KernelArg::I32(k as i32),
                KernelArg::F32(1.0),
                KernelArg::F32(0.0),
            ],
            Some(&profile),
            ExecMode::Functional { detect_races: true },
        )
        .unwrap();
    assert!(ev.seconds() > 0.0, "profiled event has a duration");
    assert!(ev.estimate.is_some() && ev.stats.is_some());

    // Every C element is sum over k of 0.5*2.0 = k.
    let out = ctx.read_f32(c).unwrap();
    for v in out {
        assert!((v - k as f32).abs() < 1e-4, "{v} vs {k}");
    }
    assert!(q.finish() > 0.0);
}

#[test]
fn timing_only_mode_is_much_cheaper_but_equal_time() {
    let p = small_test_params(Precision::F32);
    let gen = generate(&p).unwrap();
    let platform = Platform::table1();
    let device = platform.device("Tahiti").unwrap();
    let mut ctx = device.create_context();
    let prog = ctx.build_program(&gen.source).unwrap();
    let (m, n, k) = (p.mwg, p.nwg, 2 * p.kwg);
    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();
    let a = ctx.create_buffer_f32(a_dims.len()).unwrap();
    let b = ctx.create_buffer_f32(b_dims.len()).unwrap();
    let c = ctx.create_buffer_f32(m * n).unwrap();
    let profile = launch_profile(&p, device.spec(), m, n, k);
    let nd = gen.ndrange(m, n);
    let args = [
        KernelArg::Buf(a),
        KernelArg::Buf(b),
        KernelArg::Buf(c),
        KernelArg::I32(m as i32),
        KernelArg::I32(n as i32),
        KernelArg::I32(k as i32),
        KernelArg::F32(1.0),
        KernelArg::F32(0.0),
    ];
    let mut q = CommandQueue::new();
    let t_func = q
        .enqueue_kernel(
            &mut ctx,
            &prog,
            KERNEL_NAME,
            NdRange::d2(nd.global, nd.local),
            &args,
            Some(&profile),
            ExecMode::Functional {
                detect_races: false,
            },
        )
        .unwrap()
        .seconds();
    let t_timing = q
        .enqueue_kernel(
            &mut ctx,
            &prog,
            KERNEL_NAME,
            NdRange::d2(nd.global, nd.local),
            &args,
            Some(&profile),
            ExecMode::TimingOnly,
        )
        .unwrap()
        .seconds();
    assert_eq!(
        t_func, t_timing,
        "virtual time must not depend on execution mode"
    );
}

#[test]
fn search_winner_beats_hand_picked_baseline() {
    use clgemm::tuner::search::measure_gflops;
    use clgemm::tuner::{tune, SearchOpts, SearchSpace};
    let dev = DeviceId::Fermi.spec();
    let space = SearchSpace::smoke(&dev);
    let opts = SearchOpts {
        top_k: 8,
        max_sweep_points: 6,
        verify_winner: true,
        ..Default::default()
    };
    let res = tune(&dev, Precision::F64, &space, &opts);
    assert!(res.verified);
    // The winner must beat the naive small test kernel by a wide margin.
    let baseline = small_test_params(Precision::F64);
    let base_g = measure_gflops(&baseline, &dev, 1536).unwrap_or(0.0);
    assert!(
        res.best.gflops > base_g,
        "tuned {} must beat untuned {base_g}",
        res.best.gflops
    );
}
