//! Property tests for the SIMD-width-aware register-tile selector.
//!
//! The selector replaced a silent clamp into `1..=TILE_MAX` in the fast
//! host path: a tuned 32×8 blocking executed as 16×8 with no trace in
//! the run record. These tests pin the replacement's contract from three
//! sides: (1) every decision the selector can make is structurally valid
//! and lane-aligned, (2) whatever tile it picks, the microkernel stays
//! bit-for-bit identical to the reference executor across all nine
//! layout pairs, and (3) an oversize tuned blocking routed through the
//! full routine is *reported* as substituted — and still exact.

use clgemm::executor::{run_native, run_native_fast, Tile, TILE_MAX};
use clgemm::params::{small_test_params, KernelParams};
use clgemm::routine::{GemmOptions, TunedGemm};
use clgemm::tile::{TileReason, TileSelector};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::workspace::Workspace;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_shim::simd::SimdLevel;

/// A tuned-blocking grid covering aligned, misaligned and oversize
/// shapes (the paper's device blockings all land somewhere in here).
fn tuned_grid() -> Vec<(usize, usize)> {
    let edges = [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32];
    let mut grid = Vec::new();
    for &mwi in &edges {
        for &nwi in &edges {
            grid.push((mwi, nwi));
        }
    }
    grid
}

#[test]
fn every_decision_is_valid_and_lane_aligned() {
    for level in SimdLevel::ALL {
        let sel = TileSelector::for_level(level);
        for precision in [Precision::F32, Precision::F64] {
            let lanes = sel.lanes(precision);
            for tuned in tuned_grid() {
                for (m, n) in [(1usize, 1usize), (16, 16), (1024, 1024)] {
                    let d = sel.select(precision, tuned, m, n);
                    assert_eq!(d.tuned, tuned);
                    assert_eq!(d.lanes, lanes);
                    assert!(
                        d.tile.mr() >= 1 && d.tile.mr() <= TILE_MAX,
                        "{level}/{precision} {tuned:?}: mr {} out of range",
                        d.tile.mr()
                    );
                    assert!(
                        d.tile.nr() >= 1 && d.tile.nr() <= TILE_MAX,
                        "{level}/{precision} {tuned:?}: nr {} out of range",
                        d.tile.nr()
                    );
                    let tuned_fits = Tile::new(tuned.0, tuned.1).is_some();
                    let tuned_aligned = tuned_fits && tuned.1 % lanes == 0;
                    match d.reason {
                        TileReason::Tuned => {
                            assert!(tuned_aligned);
                            assert_eq!(d.tile.dims(), tuned, "verbatim means verbatim");
                            assert!(!d.substituted());
                        }
                        TileReason::LaneRealigned => {
                            assert!(tuned_fits && !tuned_aligned);
                            assert!(d.substituted());
                            assert_eq!(d.tile.nr() % lanes, 0);
                        }
                        TileReason::Oversize => {
                            assert!(!tuned_fits);
                            assert!(d.substituted());
                            assert_eq!(d.tile.nr() % lanes, 0);
                        }
                        TileReason::SmallShape => {
                            assert!(
                                m.max(n) <= clgemm::tile::SMALL_SHAPE_MAX,
                                "small sweep only applies to small problems"
                            );
                            assert!(d.substituted());
                            assert_ne!(d.tile.dims(), tuned, "else it would report Tuned");
                            assert_eq!(d.tile.nr() % lanes, 0);
                        }
                    }
                }
            }
        }
    }
}

fn packed_pattern(layout: BlockLayout, dims: PackedDims, k: usize, seed: usize) -> Vec<f64> {
    let mut buf = vec![0.0f64; dims.len()];
    for p in 0..k {
        for w in 0..dims.width {
            let v = ((p * 29 + w * 11 + seed * 17) % 19) as f64 - 9.0;
            buf[layout.offset(p, w, dims)] = v * 0.41;
        }
    }
    buf
}

#[test]
fn selected_tiles_stay_bit_identical_across_all_layout_pairs() {
    // Whatever tile each SIMD tier's selector picks, the fast executor
    // must match the reference exactly — tile substitution is a pure
    // performance decision, never a numerical one.
    let (m, n, k) = (24usize, 16usize, 11usize);
    let da = PackedDims::new(16, 24, 8, 4).unwrap();
    let db = PackedDims::new(16, 16, 8, 4).unwrap();
    for la in BlockLayout::ALL {
        for lb in BlockLayout::ALL {
            let pa = packed_pattern(la, da, k, 3);
            let pb = packed_pattern(lb, db, k, 5);
            let c0: Vec<f64> = (0..m * n).map(|i| (i % 13) as f64 - 6.0).collect();
            let mut c_ref = c0.clone();
            run_native(m, n, k, 1.5, &pa, da, la, &pb, db, lb, -0.25, &mut c_ref);
            for level in SimdLevel::ALL {
                let sel = TileSelector::for_level(level);
                for tuned in [(4usize, 4usize), (6, 2), (32, 8), (3, 5)] {
                    let d = sel.select(Precision::F64, tuned, m, n);
                    let mut c_fast = c0.clone();
                    run_native_fast(
                        m,
                        n,
                        k,
                        1.5,
                        &pa,
                        da,
                        la,
                        &pb,
                        db,
                        lb,
                        -0.25,
                        &mut c_fast,
                        d.tile,
                    );
                    assert_eq!(
                        c_fast, c_ref,
                        "{la}/{lb} {level} tuned {tuned:?} -> {}",
                        d.tile
                    );
                }
            }
        }
    }
}

/// Valid params whose work-item blocking is 32×8 — exactly the shape the
/// old code silently clamped to 16×8.
fn oversize_params(precision: Precision) -> KernelParams {
    let mut p = small_test_params(precision);
    p.mwg = 64;
    p.nwg = 64;
    p.mdimc = 2;
    p.ndimc = 8;
    p
}

#[test]
fn oversize_tuned_blocking_is_reported_not_silently_clamped() {
    let tg = TunedGemm::new(
        DeviceId::Tahiti.spec(),
        oversize_params(Precision::F64),
        oversize_params(Precision::F32),
    );
    assert_eq!(tg.params(Precision::F64).mwi(), 32, "premise: Mwi = 32");
    assert_eq!(tg.params(Precision::F64).nwi(), 8, "premise: Nwi = 8");

    let a = Matrix::<f64>::test_pattern(70, 20, StorageOrder::ColMajor, 1);
    let b = Matrix::<f64>::test_pattern(20, 66, StorageOrder::ColMajor, 2);
    let c0 = Matrix::<f64>::test_pattern(70, 66, StorageOrder::ColMajor, 3);

    let mut c_fast = c0.clone();
    let mut ws = Workspace::new();
    let run = tg.gemm_with(
        GemmType::NN,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c_fast,
        &mut ws,
        &GemmOptions::default(),
    );

    // The substitution is visible in the run record...
    let d = run.tile.expect("fast run must report its tile decision");
    assert_eq!(d.tuned, (32, 8));
    assert_eq!(d.reason, TileReason::Oversize);
    assert!(d.substituted(), "a 32-row tile cannot run verbatim");
    assert!(d.tile.mr() <= TILE_MAX && d.tile.nr() <= TILE_MAX);

    // ...and in the prediction output, identically.
    assert_eq!(
        tg.predict(true, GemmType::NN, 70, 66, 20).tile.unwrap(),
        d,
        "prediction and execution must report the same decision"
    );

    // ...and the substituted tile is still bit-exact vs the reference.
    let mut c_ref = c0.clone();
    let mut fresh = Workspace::new();
    tg.gemm_with(
        GemmType::NN,
        1.25,
        &a,
        &b,
        -0.5,
        &mut c_ref,
        &mut fresh,
        &GemmOptions::reference(),
    );
    assert_eq!(c_fast.as_slice(), c_ref.as_slice());
}
