//! Pin the analytic launch profile against the VM's *dynamic* counters.
//!
//! The timing model is only trustworthy if the traffic the profile
//! predicts matches what generated kernels actually execute. The VM
//! counts executed MADs, memory instructions and barriers; here we
//! compare them with the `launch_profile` accounting.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{small_test_params, Algorithm, KernelParams};
use clgemm::profile::launch_profile;
use clgemm_blas::layout::PackedDims;
use clgemm_blas::scalar::Precision;
use clgemm_clc::vm::DynStats;
use clgemm_clc::{Arg, BufData, ExecOptions, Program};
use clgemm_device::DeviceId;

fn run_vm(p: &KernelParams, m: usize, n: usize, k: usize) -> DynStats {
    let gen = generate(p).unwrap();
    let prog = Program::compile(&gen.source).unwrap();
    let kernel = prog.kernel(KERNEL_NAME).unwrap();
    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();
    let mut bufs = vec![
        BufData::F32(vec![1.0; a_dims.len()]),
        BufData::F32(vec![1.0; b_dims.len()]),
        BufData::F32(vec![0.0; m * n]),
    ];
    let args = [
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
        Arg::F32(1.0),
        Arg::F32(0.0),
    ];
    kernel
        .launch(gen.ndrange(m, n), &args, &mut bufs, &ExecOptions::default())
        .unwrap()
}

#[test]
fn mad_count_matches_exactly() {
    let p = small_test_params(Precision::F32);
    let dev = DeviceId::Tahiti.spec();
    let (m, n, k) = (2 * p.mwg, 2 * p.nwg, 2 * p.kwg);
    let stats = run_vm(&p, m, n, k);
    let prof = launch_profile(&p, &dev, m, n, k);
    // Inner-loop MADs plus the merge MAD per C element.
    let expect = prof.mad_ops * prof.outer_iters as f64 * prof.wg_size as f64 * prof.n_wgs as f64;
    let merge = (m * n) as f64; // one mad per element in the merge
    assert_eq!(
        stats.mads as f64,
        expect + merge,
        "profile mad accounting drifted"
    );
}

#[test]
fn barrier_count_matches_algorithm() {
    let dev = DeviceId::Tahiti.spec();
    for (alg, expected_per_two_blocks) in [
        (Algorithm::Ba, 4.0),
        (Algorithm::Pl, 6.0),
        (Algorithm::Db, 2.0),
    ] {
        let mut p = small_test_params(Precision::F32);
        p.algorithm = alg;
        let (m, n) = (p.mwg, p.nwg);
        let k = 2 * p.k_multiple().max(2 * p.kwg); // several blocks
        let stats = run_vm(&p, m, n, k);
        let blocks = (k / p.kwg) as f64;
        let per_block = stats.barriers as f64 / blocks;
        let expected = expected_per_two_blocks / 2.0;
        // PL has a prologue barrier and DB epilogue barriers, so allow
        // one extra over the whole run.
        let total_expected = expected * blocks;
        assert!(
            (stats.barriers as f64 - total_expected).abs() <= 2.0,
            "{alg}: {} barriers vs expected ~{total_expected} ({per_block:.2}/block)",
            stats.barriers
        );
        let prof = launch_profile(&p, &dev, m, n, k);
        assert!(
            (prof.barriers - expected).abs() < 1e-9,
            "{alg}: profile says {} barriers/iter, expected {expected}",
            prof.barriers
        );
    }
}

#[test]
fn mem_instruction_count_is_close() {
    // The profile's per-iteration memory-instruction estimate should be
    // within ~25 % of what the VM executes (the profile folds loader and
    // PL bookkeeping into averages).
    let dev = DeviceId::Tahiti.spec();
    for alg in Algorithm::ALL {
        let mut p = small_test_params(Precision::F32);
        p.algorithm = alg;
        let (m, n) = (p.mwg, p.nwg);
        let k = 2 * p.k_multiple();
        let stats = run_vm(&p, m, n, k);
        let prof = launch_profile(&p, &dev, m, n, k);
        let iters = (k / p.kwg) as f64;
        let wg = p.wg_size() as f64;
        let predicted = prof.mem_instrs * iters * wg + prof.mem_instrs_once * wg;
        let actual = stats.mem_global_instrs as f64 + stats.mem_local_instrs as f64;
        let rel = (predicted - actual).abs() / actual;
        assert!(
            rel < 0.25,
            "{alg}: predicted {predicted} vs VM {actual} mem instrs (rel {rel:.3})"
        );
    }
}

#[test]
fn local_traffic_only_when_local_memory_used() {
    let mut p = small_test_params(Precision::F32);
    let stats_with = run_vm(&p, p.mwg, p.nwg, 2 * p.kwg);
    assert!(stats_with.mem_local_bytes > 0);
    p.local_a = false;
    p.local_b = false;
    let stats_without = run_vm(&p, p.mwg, p.nwg, 2 * p.kwg);
    assert_eq!(stats_without.mem_local_bytes, 0);
    assert_eq!(stats_without.barriers, 0);
    assert!(stats_without.mem_global_bytes > stats_with.mem_global_bytes);
}

#[test]
fn vector_width_reduces_vm_instruction_count() {
    let mut p = small_test_params(Precision::F32);
    p.vw = 1;
    let v1 = run_vm(&p, p.mwg, p.nwg, 2 * p.kwg);
    p.vw = 4;
    let v4 = run_vm(&p, p.mwg, p.nwg, 2 * p.kwg);
    assert!(
        v4.mem_global_instrs + v4.mem_local_instrs < v1.mem_global_instrs + v1.mem_local_instrs
    );
    assert_eq!(v1.mads, v4.mads, "same arithmetic regardless of vw");
}
