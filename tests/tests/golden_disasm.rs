//! Golden-file check for the compiled engine's disassembly.
//!
//! The flagship kernel (BA, f32, the `small_test_params` tile set used
//! by the 1024³ acceptance case) is compiled through the SSA pipeline
//! and its `disassemble_ir` text — optimised SSA followed by the
//! pre-scheduled trace plan — is diffed against a committed golden
//! file. Any pass or allocator change that moves the schedule shows up
//! here as a reviewable diff instead of a silent perf change.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! CLGEMM_BLESS=1 cargo test -p clgemm-integration --test golden_disasm
//! ```

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{small_test_params, Algorithm};
use clgemm_blas::scalar::Precision;
use clgemm_clc::Program;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/flagship_ba_f32.ir");

#[test]
fn flagship_disassembly_matches_golden_file() {
    let mut p = small_test_params(Precision::F32);
    p.algorithm = Algorithm::Ba;
    let gen = generate(&p).expect("generate flagship kernel");
    let prog = Program::compile(&gen.source).expect("compile");
    let kernel = prog.kernel(KERNEL_NAME).expect("kernel present");
    let got = clgemm_clc::disassemble_ir(kernel.compiled())
        .expect("trace compiler must accept the flagship kernel");

    if std::env::var_os("CLGEMM_BLESS").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run once with CLGEMM_BLESS=1");
    if got != want {
        // A full assert_eq! dump is unreadable at this size; show the
        // first divergent line instead.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "flagship disassembly diverges from golden file at line {} \
                 (regenerate with CLGEMM_BLESS=1 if intentional)",
                i + 1
            );
        }
        panic!(
            "flagship disassembly length changed: {} vs {} lines \
             (regenerate with CLGEMM_BLESS=1 if intentional)",
            got.lines().count(),
            want.lines().count()
        );
    }
}
