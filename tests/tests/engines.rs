//! Engine-equivalence property tests: the fast VM (typed register
//! banks, fused superinstructions, parallel work-groups) and the
//! compiled engine (SSA pipeline → pre-scheduled trace code) must both
//! be indistinguishable from the reference interpreter — bit-identical
//! output buffers and equal `DynStats` on every generated kernel, and
//! identical failure classes on kernels that must fail testing. A
//! separate decline-list test pins down exactly which kernel shapes the
//! trace compiler refuses (they fall back to the fast VM) and checks
//! the fallback still matches the reference.
//!
//! Cases come from a seeded [`clgemm_shim::Rng`], so failures reproduce
//! deterministically.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, Engine, ExecOptions, Program, RuntimeError};
use clgemm_shim::Rng;

/// Draw a valid parameter set (same constructive generator as the
/// props suite: divisibility holds by construction, resource limits by
/// retry).
fn valid_params(rng: &mut Rng) -> KernelParams {
    loop {
        let mdimc = rng.range(2, 9);
        let ndimc = rng.range(2, 9);
        let mwi = rng.range(1, 5);
        let nwi = *rng.choose(&[2usize, 4]).unwrap();
        let kblocks = rng.range(1, 4);
        let kwi = *rng.choose(&[1usize, 2]).unwrap();
        let vw = *rng.choose(&[1usize, 2]).unwrap();
        if !nwi.is_multiple_of(vw) {
            continue;
        }
        let algorithm = *rng.choose(&Algorithm::ALL).unwrap();
        let la = rng.range(0, 3);
        let lb = rng.range(0, 3);
        let p = KernelParams {
            mwg: mdimc * mwi,
            nwg: ndimc * nwi,
            kwg: kblocks * kwi * 2,
            mdimc,
            ndimc,
            kwi,
            mdima: mdimc,
            ndimb: ndimc,
            vw,
            stride_m: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            stride_n: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            local_a: algorithm != Algorithm::Ba || la == 0,
            local_b: algorithm != Algorithm::Ba || lb == 0,
            layout_a: BlockLayout::ALL[la],
            layout_b: BlockLayout::ALL[lb],
            algorithm,
            precision: if rng.bool() {
                Precision::F64
            } else {
                Precision::F32
            },
        };
        if p.validate().is_ok() {
            return p;
        }
    }
}

/// Exact bit pattern of a buffer, so `-0.0 != 0.0` and NaN payloads
/// count (PartialEq on floats would blur both).
fn bits(b: &BufData) -> Vec<u64> {
    match b {
        BufData::F32(v) => v.iter().map(|x| u64::from(x.to_bits())).collect(),
        BufData::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
        BufData::I32(v) => v.iter().map(|x| *x as u32 as u64).collect(),
    }
}

fn fill(rng: &mut Rng, len: usize, prec: Precision) -> BufData {
    match prec {
        Precision::F32 => BufData::F32(
            (0..len)
                .map(|_| (rng.range(0, 2000) as f32) / 1000.0 - 1.0)
                .collect(),
        ),
        Precision::F64 => BufData::F64(
            (0..len)
                .map(|_| (rng.range(0, 2000) as f64) / 1000.0 - 1.0)
                .collect(),
        ),
    }
}

/// All three engines on one generated kernel; panics on any
/// divergence. Returns whether the kernel took the specialised fast
/// plan and whether the trace compiler accepted it.
fn check_case(case: usize, rng: &mut Rng, p: &KernelParams) -> (bool, bool) {
    // Two blocks per dimension so several work-groups run (the fast
    // engine parallelises across them) and k covers two KWG tiles.
    let (m, n) = (2 * p.mwg, 2 * p.nwg);
    let k = 2 * p.k_multiple();
    let gen = generate(p).unwrap_or_else(|e| panic!("case {case}: generate: {e}"));
    let prog = Program::compile(&gen.source)
        .unwrap_or_else(|e| panic!("case {case}: compile: {e}\n{}", gen.source));
    let kernel = prog.kernel(KERNEL_NAME).expect("kernel present");

    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();
    let bufs = vec![
        fill(rng, a_dims.len(), p.precision),
        fill(rng, b_dims.len(), p.precision),
        fill(rng, m * n, p.precision),
    ];
    let (alpha, beta) = (0.75, -0.5);
    let mut args = vec![
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
    ];
    match p.precision {
        Precision::F32 => {
            args.push(Arg::F32(alpha as f32));
            args.push(Arg::F32(beta as f32));
        }
        Precision::F64 => {
            args.push(Arg::F64(alpha));
            args.push(Arg::F64(beta));
        }
    }
    let nd = gen.ndrange(m, n);

    let mut ref_bufs = bufs.clone();
    let reference = kernel
        .launch(nd, &args, &mut ref_bufs, &ExecOptions::reference())
        .unwrap_or_else(|e| panic!("case {case}: reference launch: {e}\n{}", p.describe()));

    for engine in [Engine::Fast, Engine::Compiled] {
        let opts = ExecOptions {
            engine,
            ..Default::default()
        };
        let mut eng_bufs = bufs.clone();
        let stats = kernel
            .launch(nd, &args, &mut eng_bufs, &opts)
            .unwrap_or_else(|e| panic!("case {case}: {engine:?} launch: {e}\n{}", p.describe()));
        assert_eq!(
            stats,
            reference,
            "case {case}: {engine:?} DynStats diverged\n{}",
            p.describe()
        );
        for (i, (eb, rb)) in eng_bufs.iter().zip(&ref_bufs).enumerate() {
            assert_eq!(
                bits(eb),
                bits(rb),
                "case {case}: {engine:?} buffer {i} not bit-identical\n{}",
                p.describe()
            );
        }
    }
    let ck = kernel.compiled();
    (ck.fast.is_some(), ck.trace.is_some())
}

/// ≥200 random parameter sets: identical buffers and stats across all
/// three engines, and every generated kernel must actually take both
/// accelerated plans (a silent fallback would make the equivalence
/// test vacuous).
#[test]
fn engines_agree_on_random_params() {
    let mut rng = Rng::new(0xFA57_E9E5);
    let cases = 200;
    let (mut specialized, mut traced) = (0usize, 0usize);
    for case in 0..cases {
        let p = valid_params(&mut rng);
        let (fast, compiled) = check_case(case, &mut rng, &p);
        specialized += usize::from(fast);
        traced += usize::from(compiled);
    }
    assert_eq!(
        specialized, cases,
        "every generated kernel should specialise onto the fast plan"
    );
    assert_eq!(
        traced, cases,
        "every generated kernel should be accepted by the trace compiler"
    );
}

/// The explicit decline list: kernel shapes the trace compiler refuses,
/// each with its pinned reason. Declining is a routing decision, not a
/// failure — the launch falls back to the fast VM and must still match
/// the reference bit-for-bit. If a pipeline change starts accepting one
/// of these (or declining something new), this test is the place that
/// documents it.
#[test]
fn compiled_engine_decline_list() {
    let n = 32usize;
    let declines: &[(&str, &str, &[Arg])] = &[
        // A bounds guard branches on get_global_id — varying per
        // work-item, so the trace (one schedule per work-group) cannot
        // represent both sides.
        (
            r"__kernel void k(__global float* y, int n) {
                int i = get_global_id(0);
                if (i < n) { y[i] = y[i] + 1.0f; }
            }",
            "work-item-divergent branch condition",
            &[Arg::Buf(0), Arg::I32(32)],
        ),
        // Loop trip count depends on loaded data.
        (
            r"__kernel void k(__global float* y) {
                int i = get_global_id(0);
                float x = y[i];
                while (x > 0.5f) { x = x - 1.0f; }
                y[i] = x;
            }",
            "work-item-divergent branch condition",
            &[Arg::Buf(0)],
        ),
        // Loop trip count depends on the work-item id.
        (
            r"__kernel void k(__global float* y) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < i + 1; j = j + 1) { acc = acc + 2.0f; }
                y[i] = acc;
            }",
            "work-item-divergent branch condition",
            &[Arg::Buf(0)],
        ),
    ];
    for (case, (src, want, args)) in declines.iter().enumerate() {
        let prog = Program::compile(src).unwrap_or_else(|e| panic!("decline {case}: {e}"));
        let kernel = prog.kernel("k").expect("kernel present");
        let ck = kernel.compiled();
        assert!(ck.trace.is_none(), "decline {case}: unexpectedly accepted");
        let reason = ck.trace_decline.as_deref().unwrap_or("");
        assert!(
            reason.contains(want),
            "decline {case}: reason {reason:?} does not mention {want:?}"
        );
        // The fallback still has to be right: Compiled (→ fast VM) and
        // the reference must agree bit-for-bit.
        let nd = clgemm_clc::NdRange::d1(n, 8);
        let init = BufData::F32((0..n).map(|i| (i as f32) / 3.0 - 4.0).collect());
        let mut cb = vec![init.clone()];
        let cs = kernel
            .launch(nd, args, &mut cb, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("decline {case}: compiled-route launch: {e}"));
        let mut rb = vec![init];
        let rs = kernel
            .launch(nd, args, &mut rb, &ExecOptions::reference())
            .unwrap_or_else(|e| panic!("decline {case}: reference launch: {e}"));
        assert_eq!(cs, rs, "decline {case}: DynStats diverged on fallback");
        assert_eq!(
            bits(&cb[0]),
            bits(&rb[0]),
            "decline {case}: fallback buffers not bit-identical"
        );
    }
}

/// A kernel whose work-items diverge at a barrier must fail with the
/// same error on every engine (the compiled route declines this kernel
/// and reaches the failure through its fast-VM fallback).
#[test]
fn divergence_fails_identically_on_all_engines() {
    let src = r#"
        __kernel void div(__global double* y) {
            int l = get_local_id(0);
            if (l == 0) { barrier(1); }
            y[get_global_id(0)] = (double)l;
        }
    "#;
    let prog = Program::compile(src).unwrap();
    let kernel = prog.kernel("div").unwrap();
    let nd = clgemm_clc::NdRange::d1(8, 4);
    let mut b2 = vec![BufData::F64(vec![0.0; 8])];
    let re = kernel
        .launch(nd, &[Arg::Buf(0)], &mut b2, &ExecOptions::reference())
        .unwrap_err();
    assert!(matches!(re, RuntimeError::BarrierDivergence { .. }), "{re}");
    for engine in [Engine::Fast, Engine::Compiled] {
        let opts = ExecOptions {
            engine,
            ..Default::default()
        };
        let mut b1 = vec![BufData::F64(vec![0.0; 8])];
        let fe = kernel
            .launch(nd, &[Arg::Buf(0)], &mut b1, &opts)
            .unwrap_err();
        assert_eq!(fe.to_string(), re.to_string(), "{engine:?}");
    }
}

/// A kernel where distinct work-groups write the same global cell must
/// fail as a global race on every engine. Attribution (which pair of
/// groups is reported) is schedule-dependent on the parallel engines,
/// so only the error class is compared.
#[test]
fn inter_group_race_fails_identically_on_all_engines() {
    let src = r#"
        __kernel void clash(__global double* y) {
            y[0] = (double)get_global_id(0);
        }
    "#;
    let prog = Program::compile(src).unwrap();
    let kernel = prog.kernel("clash").unwrap();
    let nd = clgemm_clc::NdRange::d1(8, 2);
    for engine in [Engine::Compiled, Engine::Fast, Engine::Reference] {
        let opts = ExecOptions {
            engine,
            ..Default::default()
        };
        let mut bufs = vec![BufData::F64(vec![0.0])];
        let err = kernel
            .launch(nd, &[Arg::Buf(0)], &mut bufs, &opts)
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::GlobalRace { .. }),
            "{engine:?}: {err}"
        );
    }
}
