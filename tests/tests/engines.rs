//! Engine-equivalence property tests: the fast VM (typed register
//! banks, fused superinstructions, parallel work-groups) must be
//! indistinguishable from the reference interpreter — bit-identical
//! output buffers and equal `DynStats` on every generated kernel, and
//! identical failure classes on kernels that must fail testing.
//!
//! Cases come from a seeded [`clgemm_shim::Rng`], so failures reproduce
//! deterministically.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, Engine, ExecOptions, Program, RuntimeError};
use clgemm_shim::Rng;

/// Draw a valid parameter set (same constructive generator as the
/// props suite: divisibility holds by construction, resource limits by
/// retry).
fn valid_params(rng: &mut Rng) -> KernelParams {
    loop {
        let mdimc = rng.range(2, 9);
        let ndimc = rng.range(2, 9);
        let mwi = rng.range(1, 5);
        let nwi = *rng.choose(&[2usize, 4]).unwrap();
        let kblocks = rng.range(1, 4);
        let kwi = *rng.choose(&[1usize, 2]).unwrap();
        let vw = *rng.choose(&[1usize, 2]).unwrap();
        if !nwi.is_multiple_of(vw) {
            continue;
        }
        let algorithm = *rng.choose(&Algorithm::ALL).unwrap();
        let la = rng.range(0, 3);
        let lb = rng.range(0, 3);
        let p = KernelParams {
            mwg: mdimc * mwi,
            nwg: ndimc * nwi,
            kwg: kblocks * kwi * 2,
            mdimc,
            ndimc,
            kwi,
            mdima: mdimc,
            ndimb: ndimc,
            vw,
            stride_m: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            stride_n: if rng.bool() {
                StrideMode::Unit
            } else {
                StrideMode::NonUnit
            },
            local_a: algorithm != Algorithm::Ba || la == 0,
            local_b: algorithm != Algorithm::Ba || lb == 0,
            layout_a: BlockLayout::ALL[la],
            layout_b: BlockLayout::ALL[lb],
            algorithm,
            precision: if rng.bool() {
                Precision::F64
            } else {
                Precision::F32
            },
        };
        if p.validate().is_ok() {
            return p;
        }
    }
}

/// Exact bit pattern of a buffer, so `-0.0 != 0.0` and NaN payloads
/// count (PartialEq on floats would blur both).
fn bits(b: &BufData) -> Vec<u64> {
    match b {
        BufData::F32(v) => v.iter().map(|x| u64::from(x.to_bits())).collect(),
        BufData::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
        BufData::I32(v) => v.iter().map(|x| *x as u32 as u64).collect(),
    }
}

fn fill(rng: &mut Rng, len: usize, prec: Precision) -> BufData {
    match prec {
        Precision::F32 => BufData::F32(
            (0..len)
                .map(|_| (rng.range(0, 2000) as f32) / 1000.0 - 1.0)
                .collect(),
        ),
        Precision::F64 => BufData::F64(
            (0..len)
                .map(|_| (rng.range(0, 2000) as f64) / 1000.0 - 1.0)
                .collect(),
        ),
    }
}

/// Both engines on one generated kernel; panics on any divergence.
/// Returns whether the kernel took the specialised fast plan.
fn check_case(case: usize, rng: &mut Rng, p: &KernelParams) -> bool {
    // Two blocks per dimension so several work-groups run (the fast
    // engine parallelises across them) and k covers two KWG tiles.
    let (m, n) = (2 * p.mwg, 2 * p.nwg);
    let k = 2 * p.k_multiple();
    let gen = generate(p).unwrap_or_else(|e| panic!("case {case}: generate: {e}"));
    let prog = Program::compile(&gen.source)
        .unwrap_or_else(|e| panic!("case {case}: compile: {e}\n{}", gen.source));
    let kernel = prog.kernel(KERNEL_NAME).expect("kernel present");

    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();
    let bufs = vec![
        fill(rng, a_dims.len(), p.precision),
        fill(rng, b_dims.len(), p.precision),
        fill(rng, m * n, p.precision),
    ];
    let (alpha, beta) = (0.75, -0.5);
    let mut args = vec![
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
    ];
    match p.precision {
        Precision::F32 => {
            args.push(Arg::F32(alpha as f32));
            args.push(Arg::F32(beta as f32));
        }
        Precision::F64 => {
            args.push(Arg::F64(alpha));
            args.push(Arg::F64(beta));
        }
    }
    let nd = gen.ndrange(m, n);

    let mut fast_bufs = bufs.clone();
    let fast = kernel
        .launch(nd, &args, &mut fast_bufs, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("case {case}: fast launch: {e}\n{}", p.describe()));
    let mut ref_bufs = bufs;
    let reference = kernel
        .launch(nd, &args, &mut ref_bufs, &ExecOptions::reference())
        .unwrap_or_else(|e| panic!("case {case}: reference launch: {e}\n{}", p.describe()));

    assert_eq!(
        fast,
        reference,
        "case {case}: DynStats diverged\n{}",
        p.describe()
    );
    for (i, (fb, rb)) in fast_bufs.iter().zip(&ref_bufs).enumerate() {
        assert_eq!(
            bits(fb),
            bits(rb),
            "case {case}: buffer {i} not bit-identical\n{}",
            p.describe()
        );
    }
    kernel.compiled().fast.is_some()
}

/// ≥200 random parameter sets: identical buffers and stats across both
/// engines, and every generated kernel must actually take the fast
/// plan (a silent fallback would make the equivalence test vacuous).
#[test]
fn fast_and_reference_agree_on_random_params() {
    let mut rng = Rng::new(0xFA57_E9E5);
    let cases = 200;
    let mut specialized = 0usize;
    for case in 0..cases {
        let p = valid_params(&mut rng);
        if check_case(case, &mut rng, &p) {
            specialized += 1;
        }
    }
    assert_eq!(
        specialized, cases,
        "every generated kernel should specialise onto the fast plan"
    );
}

/// A kernel whose work-items diverge at a barrier must fail with the
/// same error on both engines.
#[test]
fn divergence_fails_identically_on_both_engines() {
    let src = r#"
        __kernel void div(__global double* y) {
            int l = get_local_id(0);
            if (l == 0) { barrier(1); }
            y[get_global_id(0)] = (double)l;
        }
    "#;
    let prog = Program::compile(src).unwrap();
    let kernel = prog.kernel("div").unwrap();
    let nd = clgemm_clc::NdRange::d1(8, 4);
    let mut b1 = vec![BufData::F64(vec![0.0; 8])];
    let fe = kernel
        .launch(nd, &[Arg::Buf(0)], &mut b1, &ExecOptions::default())
        .unwrap_err();
    let mut b2 = vec![BufData::F64(vec![0.0; 8])];
    let re = kernel
        .launch(nd, &[Arg::Buf(0)], &mut b2, &ExecOptions::reference())
        .unwrap_err();
    assert!(matches!(fe, RuntimeError::BarrierDivergence { .. }), "{fe}");
    assert_eq!(fe.to_string(), re.to_string());
}

/// A kernel where distinct work-groups write the same global cell must
/// fail as a global race on both engines. Attribution (which pair of
/// groups is reported) is schedule-dependent on the parallel engine, so
/// only the error class is compared.
#[test]
fn inter_group_race_fails_identically_on_both_engines() {
    let src = r#"
        __kernel void clash(__global double* y) {
            y[0] = (double)get_global_id(0);
        }
    "#;
    let prog = Program::compile(src).unwrap();
    let kernel = prog.kernel("clash").unwrap();
    let nd = clgemm_clc::NdRange::d1(8, 2);
    for engine in [Engine::Fast, Engine::Reference] {
        let opts = ExecOptions {
            engine,
            ..Default::default()
        };
        let mut bufs = vec![BufData::F64(vec![0.0])];
        let err = kernel
            .launch(nd, &[Arg::Buf(0)], &mut bufs, &opts)
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::GlobalRace { .. }),
            "{engine:?}: {err}"
        );
    }
}
