//! Serving under overload: weighted-fair queueing must divide service
//! by configured tenant weight, admitted work must never starve, and
//! idempotent coalescing must stay bit-exact — duplicates receive the
//! same bits as one executed representative, and that representative
//! replays bit-for-bit through a sequential `TunedGemm::gemm` call.

use clgemm::params::{small_test_params, KernelParams};
use clgemm::routine::TunedGemm;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::{DeviceId, DeviceSpec};
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Outcome, ServeConfig};
use clgemm_shim::Rng;
use std::collections::HashSet;

fn pool() -> Vec<DeviceSpec> {
    vec![
        DeviceId::Tahiti.spec(),
        DeviceId::Cayman.spec(),
        DeviceId::Fermi.spec(),
    ]
}

/// An n³ F64 request with fresh random operands for `tenant`.
fn sized_request(rng: &mut Rng, n: usize, tenant: &str) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(n, n, order, rng.next_u64()),
            b: Matrix::test_pattern(n, n, order, rng.next_u64()),
            beta: 0.5,
            c: Matrix::test_pattern(n, n, order, rng.next_u64()),
        },
    )
    .with_tenant(tenant)
}

/// `C` as raw bits, so comparison is bit-for-bit rather than approximate.
fn c_bits(p: &GemmPayload) -> Vec<u64> {
    match p {
        GemmPayload::F64 { c, .. } => c.as_slice().iter().map(|v| v.to_bits()).collect(),
        GemmPayload::F32 { c, .. } => c
            .as_slice()
            .iter()
            .map(|v| u64::from(v.to_bits()))
            .collect(),
    }
}

/// Replay a served request sequentially through `TunedGemm::gemm` with
/// the parameters the response reports, from the original operands.
fn replay_sequentially(
    devices: &[DeviceSpec],
    device: &str,
    params: KernelParams,
    ty: GemmType,
    original: &GemmPayload,
) -> GemmPayload {
    let spec = devices
        .iter()
        .find(|d| d.code_name == device)
        .unwrap_or_else(|| panic!("unknown device {device}"))
        .clone();
    let tuned = match original.precision() {
        Precision::F64 => TunedGemm::new(spec, params, small_test_params(Precision::F32)),
        Precision::F32 => TunedGemm::new(spec, small_test_params(Precision::F64), params),
    };
    let mut payload = original.clone();
    match &mut payload {
        GemmPayload::F64 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            tuned.gemm(ty, *alpha, a, b, *beta, c);
        }
        GemmPayload::F32 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            tuned.gemm(ty, *alpha, a, b, *beta, c);
        }
    }
    payload
}

#[test]
fn weighted_fairness_holds_at_overload_and_nothing_starves() {
    for seed in [0xFA1u64, 7, 2026] {
        let mut rng = Rng::new(seed);
        let mut server = GemmServer::new(
            pool(),
            ServeConfig {
                queue_capacity: 200,
                drain_quota: 20,
                tenant_weights: vec![("inter".into(), 4), ("bulk".into(), 1)],
                ..Default::default()
            },
        );
        // Overload: both tenants submit far more than one drain quota
        // of equal-cost work. The bulk lane's weighted share of the
        // queue is 200/5 = 40, so 40 per tenant fills both lanes.
        let mut inter_ids = HashSet::new();
        let mut bulk_ids = HashSet::new();
        for _ in 0..40 {
            inter_ids.insert(
                server
                    .submit(sized_request(&mut rng, 64, "inter"))
                    .expect("inter lane has room"),
            );
            bulk_ids.insert(
                server
                    .submit(sized_request(&mut rng, 64, "bulk"))
                    .expect("bulk lane has room"),
            );
        }

        // While both lanes stay backlogged, quota-limited drains must
        // split service by weight: 4 inter for every 1 bulk.
        let mut answered: Vec<u64> = Vec::new();
        let mut served_inter = 0usize;
        let mut served_bulk = 0usize;
        for _ in 0..2 {
            assert_eq!(server.drain(), 20, "seed {seed}: quota must fill");
            for r in server.take_responses() {
                assert_eq!(r.outcome, Outcome::Completed);
                if inter_ids.contains(&r.id) {
                    served_inter += 1;
                } else {
                    assert!(bulk_ids.contains(&r.id), "seed {seed}: unknown id {}", r.id);
                    served_bulk += 1;
                }
                answered.push(r.id);
            }
        }
        assert!(served_bulk > 0, "seed {seed}: the light tenant starved");
        let ratio = served_inter as f64 / served_bulk as f64;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "seed {seed}: service ratio {ratio:.2} ({served_inter}:{served_bulk}) \
             strays from the 4:1 weights"
        );

        // No starvation: every admitted request is eventually answered,
        // exactly once, even for the underweighted tenant.
        loop {
            let n = server.drain();
            answered.extend(server.take_responses().iter().map(|r| r.id));
            if n == 0 {
                break;
            }
        }
        let unique: HashSet<u64> = answered.iter().copied().collect();
        assert_eq!(
            unique.len(),
            answered.len(),
            "seed {seed}: duplicate answers"
        );
        let expected: HashSet<u64> = inter_ids.union(&bulk_ids).copied().collect();
        assert_eq!(
            unique, expected,
            "seed {seed}: admitted work went unanswered"
        );
    }
}

#[test]
fn coalesced_duplicates_are_bit_identical_and_replay_sequentially() {
    let devices = pool();
    for seed in [11u64, 0xBEEF] {
        let mut rng = Rng::new(seed);
        // A workload where some requests appear two or three times,
        // bit-identically — the duplicates must coalesce.
        let mut workload: Vec<GemmRequest> = Vec::new();
        let mut dup_groups: Vec<Vec<usize>> = Vec::new();
        for _ in 0..8 {
            let n = [32usize, 48, 64][rng.range(0, 3)];
            let req = sized_request(&mut rng, n, "default");
            let copies = 1 + rng.range(0, 3); // 1..=3 submissions
            let mut group = Vec::new();
            for _ in 0..copies {
                group.push(workload.len());
                workload.push(req.clone());
            }
            dup_groups.push(group);
        }

        let mut server = GemmServer::new(devices.clone(), ServeConfig::default());
        let ids: Vec<u64> = workload
            .iter()
            .map(|req| server.submit(req.clone()).expect("queue has room"))
            .collect();
        assert_eq!(server.drain(), workload.len());
        let mut responses = server.take_responses();
        responses.sort_by_key(|r| r.id);

        let n_dups: usize = dup_groups.iter().map(|g| g.len() - 1).sum();
        assert_eq!(
            server.stats().coalesce_hits,
            n_dups as u64,
            "seed {seed}: every duplicate must share its leader's execution"
        );

        for group in &dup_groups {
            let members: Vec<_> = group.iter().map(|&w| &responses[ids[w] as usize]).collect();
            let leader = members[0];
            assert_eq!(leader.outcome, Outcome::Completed);
            // Every member of the group carries identical bits, device
            // and parameters — one execution, fanned out.
            for m in &members[1..] {
                assert_eq!(m.outcome, Outcome::Completed);
                assert_eq!(m.device, leader.device, "seed {seed}");
                assert_eq!(m.params, leader.params, "seed {seed}");
                assert_eq!(
                    c_bits(&m.payload),
                    c_bits(&leader.payload),
                    "seed {seed}: coalesced duplicate diverged from its leader"
                );
            }
            // And the shared result replays bit-for-bit sequentially.
            let expect = replay_sequentially(
                &devices,
                &leader.device,
                leader.params,
                leader.ty,
                &workload[group[0]].payload,
            );
            assert_eq!(
                c_bits(&leader.payload),
                c_bits(&expect),
                "seed {seed}: coalesced execution diverged from sequential replay"
            );
        }
    }
}

#[test]
fn result_cache_replays_are_bit_identical_across_drains() {
    let devices = pool();
    let mut rng = Rng::new(404);
    let req = sized_request(&mut rng, 48, "default");
    let mut server = GemmServer::new(devices, ServeConfig::default());
    server.submit(req.clone()).expect("queue has room");
    server.drain();
    let first = server.take_responses().pop().expect("one response");

    // The same bits, resubmitted after the drain: answered from the
    // result cache without executing, with the original's exact result.
    server.submit(req).expect("queue has room");
    assert_eq!(server.drain(), 1);
    let replay = server.take_responses().pop().expect("one response");
    assert_eq!(replay.outcome, Outcome::Completed);
    assert_eq!(replay.device, first.device);
    assert_eq!(replay.params, first.params);
    assert_eq!(c_bits(&replay.payload), c_bits(&first.payload));
    assert_eq!(server.stats().coalesce_hits, 1);
}
