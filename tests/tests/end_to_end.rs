//! The flagship integration test: for a grid of parameter sets, run the
//! full paper pipeline — generate OpenCL C, compile it with the clc
//! frontend, execute it in the work-group VM (race detection on), and
//! compare bit-for-bit against the native executor and within tolerance
//! against the reference BLAS.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::executor::run_native;
use clgemm::params::{small_test_params, Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, ExecOptions, Program};

/// Run one parameter set end to end on a 2-block-per-dimension problem.
fn run_case(p: &KernelParams) {
    p.validate().unwrap_or_else(|e| panic!("{e}"));
    let (m, n) = (2 * p.mwg, 2 * p.nwg);
    let k = 2 * p.k_multiple();
    let gen = generate(p).expect("generation");
    let prog = Program::compile(&gen.source).unwrap_or_else(|e| {
        panic!(
            "compile failed: {e}\nparams: {}\n{}",
            p.describe(),
            gen.source
        )
    });
    let kernel = prog.kernel(KERNEL_NAME).expect("kernel present");

    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).unwrap();
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).unwrap();

    match p.precision {
        Precision::F64 => {
            let a: Vec<f64> = (0..a_dims.len())
                .map(|i| ((i * 7 + 3) % 13) as f64 / 13.0 - 0.4)
                .collect();
            let b: Vec<f64> = (0..b_dims.len())
                .map(|i| ((i * 5 + 1) % 11) as f64 / 11.0 - 0.6)
                .collect();
            let c0: Vec<f64> = (0..m * n)
                .map(|i| ((i * 3 + 2) % 7) as f64 / 7.0 - 0.5)
                .collect();
            let mut c_native = c0.clone();
            run_native(
                m,
                n,
                k,
                1.5,
                &a,
                a_dims,
                p.layout_a,
                &b,
                b_dims,
                p.layout_b,
                -0.25,
                &mut c_native,
            );

            let mut bufs = vec![BufData::F64(a), BufData::F64(b), BufData::F64(c0)];
            let args = [
                Arg::Buf(0),
                Arg::Buf(1),
                Arg::Buf(2),
                Arg::I32(m as i32),
                Arg::I32(n as i32),
                Arg::I32(k as i32),
                Arg::F64(1.5),
                Arg::F64(-0.25),
            ];
            kernel
                .launch(gen.ndrange(m, n), &args, &mut bufs, &ExecOptions::default())
                .unwrap_or_else(|e| panic!("VM run failed: {e}\nparams: {}", p.describe()));
            let BufData::F64(c_vm) = &bufs[2] else {
                panic!("C buffer type changed")
            };
            for (i, (vm, nat)) in c_vm.iter().zip(&c_native).enumerate() {
                assert_eq!(
                    vm.to_bits(),
                    nat.to_bits(),
                    "f64 bit mismatch at {i}: {vm} vs {nat} for {}",
                    p.describe()
                );
            }
        }
        Precision::F32 => {
            let a: Vec<f32> = (0..a_dims.len())
                .map(|i| ((i * 7 + 3) % 13) as f32 / 13.0 - 0.4)
                .collect();
            let b: Vec<f32> = (0..b_dims.len())
                .map(|i| ((i * 5 + 1) % 11) as f32 / 11.0 - 0.6)
                .collect();
            let c0: Vec<f32> = (0..m * n)
                .map(|i| ((i * 3 + 2) % 7) as f32 / 7.0 - 0.5)
                .collect();
            let mut c_native = c0.clone();
            run_native(
                m,
                n,
                k,
                1.5f32,
                &a,
                a_dims,
                p.layout_a,
                &b,
                b_dims,
                p.layout_b,
                -0.25f32,
                &mut c_native,
            );

            let mut bufs = vec![BufData::F32(a), BufData::F32(b), BufData::F32(c0)];
            let args = [
                Arg::Buf(0),
                Arg::Buf(1),
                Arg::Buf(2),
                Arg::I32(m as i32),
                Arg::I32(n as i32),
                Arg::I32(k as i32),
                Arg::F32(1.5),
                Arg::F32(-0.25),
            ];
            kernel
                .launch(gen.ndrange(m, n), &args, &mut bufs, &ExecOptions::default())
                .unwrap_or_else(|e| panic!("VM run failed: {e}\nparams: {}", p.describe()));
            let BufData::F32(c_vm) = &bufs[2] else {
                panic!("C buffer type changed")
            };
            for (i, (vm, nat)) in c_vm.iter().zip(&c_native).enumerate() {
                assert_eq!(
                    vm.to_bits(),
                    nat.to_bits(),
                    "f32 bit mismatch at {i}: {vm} vs {nat} for {}",
                    p.describe()
                );
            }
        }
    }
}

#[test]
fn all_algorithms_both_precisions() {
    for precision in [Precision::F64, Precision::F32] {
        for alg in Algorithm::ALL {
            let mut p = small_test_params(precision);
            p.algorithm = alg;
            run_case(&p);
        }
    }
}

#[test]
fn all_layout_combinations() {
    for la in BlockLayout::ALL {
        for lb in BlockLayout::ALL {
            let mut p = small_test_params(Precision::F64);
            p.layout_a = la;
            p.layout_b = lb;
            run_case(&p);
        }
    }
}

#[test]
fn all_stride_modes() {
    for sm in [StrideMode::Unit, StrideMode::NonUnit] {
        for sn in [StrideMode::Unit, StrideMode::NonUnit] {
            let mut p = small_test_params(Precision::F32);
            p.stride_m = sm;
            p.stride_n = sn;
            run_case(&p);
        }
    }
}

#[test]
fn all_local_memory_combinations() {
    for (la, lb) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut p = small_test_params(Precision::F64);
        p.local_a = la;
        p.local_b = lb;
        run_case(&p);
    }
}

#[test]
fn vector_widths() {
    for vw in [1usize, 2, 4] {
        let mut p = small_test_params(Precision::F32);
        p.vw = vw;
        run_case(&p);
    }
    // vw = 8 needs nwi divisible by 8.
    let mut p = small_test_params(Precision::F32);
    p.nwg = 32; // nwi = 8
    p.vw = 8;
    run_case(&p);
}

#[test]
fn asymmetric_blocking_and_loader_reshape() {
    let mut p = small_test_params(Precision::F64);
    p.mwg = 24;
    p.nwg = 8;
    p.kwg = 12;
    p.mdimc = 4;
    p.ndimc = 4;
    p.mdima = 8; // kdima = 2, kwg % 2 == 0, mwg % 8 == 0
    p.ndimb = 2; // kdimb = 8, kwg % 8 ... 12 % 8 != 0 -> fix kwg
    p.kwg = 16;
    p.kwi = 2;
    run_case(&p);
}

#[test]
fn non_power_of_two_blocking() {
    // The paper §III-F: the power-of-two restriction was lifted in this
    // generator generation; e.g. Tahiti's winner uses Mwg=96, Kwg=48.
    let mut p = small_test_params(Precision::F64);
    p.mwg = 12;
    p.nwg = 12;
    p.kwg = 6;
    p.mdimc = 6;
    p.ndimc = 2;
    p.mdima = 12;
    p.ndimb = 12;
    p.kwi = 3;
    p.vw = 2;
    run_case(&p);
}

#[test]
fn kwi_equal_kwg_fully_unrolled() {
    let mut p = small_test_params(Precision::F32);
    p.kwi = p.kwg; // inner loop fully unrolled into one trip
    run_case(&p);
}
