//! Integration properties of the analytical predictor, the persistent
//! tuning database, and the predictor-backed serving path.
//!
//! The unit suites prove each layer in isolation; this file proves the
//! contracts *between* them: every prediction on every built-in
//! profile is launchable under the device's occupancy model, predicted
//! quality tracks a real search, a restarted server warms from disk,
//! and a damaged database degrades instead of taking the server down.

use std::path::{Path, PathBuf};

use clgemm::params::KernelParams;
use clgemm::predict::{
    predict, predict_best, predict_enabled, predict_enabled_in, FeasibleSet, MAX_CANDIDATES,
};
use clgemm::tile::{TileReason, TileSelector};
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::{Measurement, SearchSpace};
use clgemm::tuning_db::{DbError, DbKey, TuningDb, DB_ENV, DB_MAGIC, DB_SCHEMA_VERSION};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::occupancy::occupancy;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "clgemm-predict-int-{name}-{}.jsonl",
        std::process::id()
    ))
}

fn dgemm_request(s: usize) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(s, s, order, 1),
            b: Matrix::test_pattern(s, s, order, 2),
            beta: 0.0,
            c: Matrix::zeros(s, s, order),
        },
    )
}

/// Smallest size ≥ `base` that every blocking dimension of `p` divides
/// (the profile model rejects ragged shapes; the tuner pads the same way).
fn padded(p: &KernelParams, base: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let lcm = |a: usize, b: usize| a / gcd(a, b) * b;
    let step = lcm(lcm(p.mwg, p.nwg), p.k_multiple());
    base.div_ceil(step) * step
}

fn serve_cfg(path: &Path, refine: bool) -> ServeConfig {
    ServeConfig {
        predict: true,
        background_refine: refine,
        tuning_db: Some(path.to_path_buf()),
        ..Default::default()
    }
}

/// Every prediction on every built-in profile must clear the hard
/// resource gates: structural validity, the register budget the
/// feasible set derived, and a strictly positive occupancy under the
/// device's own residency model.
#[test]
fn predictions_clear_every_hard_constraint_on_every_profile() {
    for id in DeviceId::ALL {
        let dev = id.spec();
        for precision in [Precision::F32, Precision::F64] {
            let feasible = FeasibleSet::derive(&dev, precision);
            let preds = predict(&dev, precision);
            assert!(
                !preds.is_empty() && preds.len() <= MAX_CANDIDATES,
                "{id:?} {precision:?}: {} predictions",
                preds.len()
            );
            for pred in &preds {
                let p: &KernelParams = &pred.params;
                p.validate()
                    .unwrap_or_else(|e| panic!("{id:?} {precision:?}: {e:?}\n{}", p.describe()));
                assert!(
                    p.regs_per_wi() <= feasible.max_regs_per_wi(),
                    "{id:?} {precision:?}: {} regs over budget {}",
                    p.regs_per_wi(),
                    feasible.max_regs_per_wi()
                );
                let occ = occupancy(&dev, p.wg_size(), p.regs_per_wi(), p.lds_bytes())
                    .unwrap_or_else(|e| panic!("{id:?} {precision:?}: unlaunchable: {e:?}"));
                assert!(
                    occ.wavefronts_per_cu > 0,
                    "{id:?} {precision:?}: zero occupancy"
                );
            }
        }
    }
}

/// On CPUs the predicted per-work-item blocking must survive tile
/// selection untouched: the host microkernel realigns tiles whose
/// column edge does not fill whole SIMD vectors, and a prediction that
/// triggers that substitution was never really "predicted".
#[test]
fn cpu_predictions_stay_lane_aligned_through_tile_selection() {
    for id in DeviceId::ALL {
        let dev = id.spec();
        if !dev.is_cpu() {
            continue;
        }
        let lanes = dev.micro.native_simd_lanes;
        let selector = TileSelector::with_lanes(lanes, (lanes / 2).max(1));
        for precision in [Precision::F32, Precision::F64] {
            for pred in predict(&dev, precision) {
                let p = pred.params;
                let d = selector.select(precision, (p.mwi(), p.nwi()), 2048, 2048);
                assert_eq!(
                    d.reason,
                    TileReason::Tuned,
                    "{id:?} {precision:?}: predicted {}x{} tile was substituted ({:?})",
                    p.mwi(),
                    p.nwi(),
                    d.reason
                );
            }
        }
    }
}

/// The zero-search prediction must land within 2× of what an actual
/// search over the smoke space finds, on every profile — scored by the
/// same analytic model the tuner's stage 1 uses, at the stage-1 size.
#[test]
fn predicted_best_reaches_half_of_the_searched_winner() {
    for id in DeviceId::ALL {
        let dev = id.spec();
        let n = if dev.is_cpu() { 1536 } else { 4096 };
        for precision in [Precision::F32, Precision::F64] {
            let searched = SearchSpace::smoke(&dev)
                .enumerate(&dev, precision)
                .iter()
                .filter_map(|p| measure_gflops(p, &dev, padded(p, n)))
                .fold(0.0f64, f64::max);
            assert!(searched > 0.0, "{id:?} {precision:?}: empty smoke space");
            let best = predict_best(&dev, precision).expect("non-empty prediction");
            let predicted = measure_gflops(&best.params, &dev, padded(&best.params, n))
                .expect("predictions are launchable");
            assert!(
                predicted >= 0.5 * searched,
                "{id:?} {precision:?}: predicted {predicted:.1} < half of searched {searched:.1}"
            );
        }
    }
}

/// Cold start, background refine, restart: the first server predicts
/// (no synchronous search), the refiner persists its measurement, and
/// a second server over the same file serves the bucket from disk.
#[test]
fn serve_restart_warms_from_the_on_disk_database() {
    let path = tmp("restart");
    let _ = std::fs::remove_file(&path);
    {
        let mut server = GemmServer::new(vec![DeviceId::Tahiti.spec()], serve_cfg(&path, true));
        server.submit(dgemm_request(100)).expect("queue has room");
        server.drain();
        let snap = server.stats();
        assert_eq!(snap.predict_cold_starts, 1, "first sight must predict");
        assert_eq!(snap.db_misses, 1, "nothing on disk yet");
        assert_eq!(server.wait_refines(), 1, "cold start enqueues a refine");
        assert_eq!(server.tuning_db().len(), 1, "refine must persist");
    }
    // Plain round-trip, outside any server.
    let db = TuningDb::open(&path).expect("reopens clean");
    assert_eq!(db.len(), 1);
    assert_eq!(db.corrupt_entries(), 0);
    {
        let mut server = GemmServer::new(vec![DeviceId::Tahiti.spec()], serve_cfg(&path, false));
        server.submit(dgemm_request(100)).expect("queue has room");
        server.drain();
        let snap = server.stats();
        assert_eq!(snap.db_hits, 1, "restart must warm from disk");
        assert_eq!(snap.predict_cold_starts, 0, "db hit preempts the predictor");
    }
    std::fs::remove_file(&path).unwrap();
}

/// A database from the future is refused with a typed error — and a
/// server pointed at it degrades to an in-memory db rather than dying.
/// A crash-truncated tail loses only the chopped entry.
#[test]
fn damaged_databases_degrade_instead_of_failing() {
    // Newer schema: typed rejection…
    let path = tmp("version");
    std::fs::write(
        &path,
        format!("{{\"magic\":\"{DB_MAGIC}\",\"schema_version\":999}}\n"),
    )
    .unwrap();
    match TuningDb::open(&path) {
        Err(DbError::VersionMismatch { found, expected }) => {
            assert_eq!((found, expected), (999, DB_SCHEMA_VERSION));
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // …but the server keeps serving (predictor path, memory-only db).
    let mut server = GemmServer::new(vec![DeviceId::Tahiti.spec()], serve_cfg(&path, false));
    server.submit(dgemm_request(100)).expect("queue has room");
    server.drain();
    assert_eq!(server.stats().predict_cold_starts, 1);
    assert!(
        server.tuning_db().path().is_none(),
        "unreadable file must degrade to an in-memory db"
    );
    std::fs::remove_file(&path).unwrap();

    // Crash-truncated tail: the intact prefix survives a reopen.
    let path = tmp("truncated");
    let _ = std::fs::remove_file(&path);
    let key = |n: usize| DbKey {
        fingerprint: DeviceId::Tahiti.spec().fingerprint(),
        m: n,
        n,
        k: n,
        gemm: "*".to_string(),
        storage: Precision::F64.to_string(),
    };
    let meas = Measurement {
        params: clgemm::params::tahiti_dgemm_best(),
        n: 1024,
        gflops: 800.0,
    };
    {
        let mut db = TuningDb::open(&path).unwrap();
        db.commit(key(1024), meas.clone()).unwrap();
        db.commit(key(2048), meas).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 10]).unwrap();
    let db = TuningDb::open(&path).expect("truncated file still opens");
    assert_eq!(db.len(), 1, "intact prefix entry survives");
    assert_eq!(db.corrupt_entries(), 1, "chopped tail is counted");
    assert!(db.get(&key(1024)).is_some());
    std::fs::remove_file(&path).unwrap();
}

/// Both env overrides, exercised in ONE test function so no parallel
/// test observes a half-mutated process environment.
#[test]
fn env_overrides_reach_the_predictor_and_the_database() {
    // Pure parsing first.
    assert!(predict_enabled_in(None));
    assert!(predict_enabled_in(Some("on")));
    assert!(!predict_enabled_in(Some("off")));
    assert!(!predict_enabled_in(Some("0")));

    std::env::set_var("CLGEMM_PREDICT", "off");
    assert!(!predict_enabled());
    assert!(
        !ServeConfig::default().predict,
        "serve default must honour CLGEMM_PREDICT=off"
    );
    std::env::remove_var("CLGEMM_PREDICT");
    assert!(predict_enabled());
    assert!(ServeConfig::default().predict);

    let path = tmp("env");
    let _ = std::fs::remove_file(&path);
    std::env::set_var(DB_ENV, &path);
    let db = TuningDb::from_env();
    assert_eq!(db.path(), Some(path.as_path()));
    assert_eq!(
        ServeConfig::default().tuning_db.as_deref(),
        Some(path.as_path()),
        "serve default must honour {DB_ENV}"
    );
    std::env::remove_var(DB_ENV);
    assert!(TuningDb::from_env().path().is_none());
    assert!(ServeConfig::default().tuning_db.is_none());
    let _ = std::fs::remove_file(&path);
}
