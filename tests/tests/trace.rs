//! Observability-layer integration: concurrent metric recording must
//! merge exactly (no lost updates, no double counting), and the serving
//! layer must emit a coherent per-request span lifecycle
//! (enqueue → queue-wait → execute → complete) that nests inside its
//! batch span.

use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig};
use clgemm_shim::Rng;
use clgemm_trace::ring::{events_since, Event};
use clgemm_trace::{MetricValue, Registry};

/// What one worker thread did to the shared registry, tallied locally.
#[derive(Default, Clone, Copy)]
struct LocalTally {
    counter_adds: u64,
    observes: u64,
    observed_sum: u64,
    spans: u64,
}

/// Hammer one registry's counters, histograms and the span rings from
/// every available core with a seeded workload, then check the merged
/// snapshot against the sum of the per-thread tallies. The seqlock
/// rings and lock-free metric handles must lose nothing.
#[test]
fn concurrent_recording_merges_exactly() {
    clgemm_trace::set_enabled(true);
    const THREADS: usize = 8;
    const OPS: usize = 400;

    let reg = Registry::new();
    let counter = reg.counter("prop_hits_total");
    let hist = reg.histogram("prop_latency_seconds", 1e-9);
    let threads: Vec<u64> = (0..THREADS as u64).collect();

    let tallies: Vec<LocalTally> = clgemm_shim::par::par_map(&threads, |_, &t| {
        let mut rng = Rng::new(0x0B5E_ED00 + t);
        let mut tally = LocalTally::default();
        for i in 0..OPS {
            match rng.range(0, 3) {
                0 => {
                    let k = rng.range(1, 100) as u64;
                    counter.add(k);
                    tally.counter_adds += k;
                }
                1 => {
                    let v = rng.next_u64() % 1_000_000;
                    hist.observe(v);
                    tally.observes += 1;
                    tally.observed_sum += v;
                }
                _ => {
                    let _outer = clgemm_trace::span!("prop.span", (t << 32) | i as u64);
                    if rng.bool() {
                        let _inner = clgemm_trace::span!("prop.inner", (t << 32) | i as u64);
                    }
                    tally.spans += 1;
                }
            }
        }
        tally
    });

    let counter_total: u64 = tallies.iter().map(|t| t.counter_adds).sum();
    let observes: u64 = tallies.iter().map(|t| t.observes).sum();
    let observed_sum: u64 = tallies.iter().map(|t| t.observed_sum).sum();
    let spans: u64 = tallies.iter().map(|t| t.spans).sum();

    let snap = reg.snapshot();
    assert_eq!(snap.counter("prop_hits_total"), Some(counter_total));
    let h = snap.hist("prop_latency_seconds").expect("hist");
    assert_eq!(h.count, observes);
    // Count and sum are exact atomics; quantiles are bucketed estimates
    // bounded by the true extremes.
    assert!((h.sum - observed_sum as f64 * 1e-9).abs() < 1e-9);
    assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);

    // Every span landed in some thread's ring exactly once.
    let outer: Vec<Event> = clgemm_trace::ring::all_events()
        .into_iter()
        .filter(|e| e.name == "prop.span")
        .collect();
    assert_eq!(outer.len() as u64, spans, "span events lost or duplicated");
    // Inner spans report a deeper nesting level than their outer span
    // and stay inside its interval on the same thread.
    for inner in clgemm_trace::ring::all_events()
        .iter()
        .filter(|e| e.name == "prop.inner")
    {
        let parent = outer
            .iter()
            .find(|o| o.tag == inner.tag && o.thread == inner.thread)
            .expect("inner span without its outer span");
        assert!(parent.depth < inner.depth);
        assert!(parent.contains(inner), "inner span escaped its parent");
    }

    // The snapshot's typed accessors agree with the raw entry list.
    assert!(matches!(
        snap.get("prop_hits_total"),
        Some(MetricValue::Counter(v)) if *v == counter_total
    ));
}

fn request(m: usize, n: usize, k: usize) -> GemmRequest {
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(m, k, StorageOrder::ColMajor, 1),
            b: Matrix::test_pattern(k, n, StorageOrder::ColMajor, 2),
            beta: 0.5,
            c: Matrix::test_pattern(m, n, StorageOrder::ColMajor, 3),
        },
    )
}

/// Serve a small workload and check each request's span lifecycle:
/// an enqueue event, a queue-wait span starting at admission, an
/// execute span nested inside a batch-execute span on the same thread,
/// and a completion event after execution — in that order.
#[test]
fn serving_emits_a_coherent_span_lifecycle_per_request() {
    clgemm_trace::set_enabled(true);
    let t0 = clgemm_trace::now_ns();

    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec(), DeviceId::Fermi.spec()],
        ServeConfig {
            registry: Some(Registry::new()),
            ..Default::default()
        },
    );
    let mut ids = Vec::new();
    for i in 0..6 {
        let sz = 24 + 8 * i;
        ids.push(server.submit(request(sz, sz, sz)).expect("queue has room"));
    }
    assert_eq!(server.drain(), ids.len());

    let events: Vec<Event> = events_since(t0);
    let find = |name: &str, tag: u64| -> Vec<&Event> {
        events
            .iter()
            .filter(|e| e.name == name && e.tag == tag)
            .collect()
    };
    let batches: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "serve.batch.execute")
        .collect();
    assert!(!batches.is_empty(), "no batch-execute span recorded");

    for &id in &ids {
        let enq = find("serve.request.enqueue", id);
        assert_eq!(enq.len(), 1, "request {id}: want one enqueue event");
        let wait = find("serve.request.queue_wait", id);
        assert_eq!(wait.len(), 1, "request {id}: want one queue-wait span");
        let exec = find("serve.request.execute", id);
        assert_eq!(exec.len(), 1, "request {id}: want one execute span");
        let done = find("serve.request.complete", id);
        assert_eq!(done.len(), 1, "request {id}: want one complete event");

        // Lifecycle order on the trace clock.
        assert!(enq[0].start_ns >= t0);
        // The wait span starts at the admission timestamp, which is
        // captured just before the enqueue event fires.
        assert!(
            wait[0].start_ns <= enq[0].start_ns,
            "request {id}: queue wait began after the enqueue event"
        );
        assert!(
            exec[0].start_ns >= wait[0].end_ns(),
            "request {id}: executed while still queued"
        );
        assert!(
            done[0].start_ns >= exec[0].end_ns(),
            "request {id}: completed before execution finished"
        );

        // The execute span nests inside exactly one batch span, on the
        // batch's thread, one level deeper.
        let parents: Vec<_> = batches
            .iter()
            .filter(|b| b.thread == exec[0].thread && b.contains(exec[0]))
            .collect();
        assert_eq!(
            parents.len(),
            1,
            "request {id}: execute span must nest in exactly one batch"
        );
        assert!(parents[0].depth < exec[0].depth);
    }

    // Batch spans carry the batch id as their tag and cover disjoint
    // request sets whose union is the whole workload.
    let covered: usize = batches
        .iter()
        .map(|b| {
            events
                .iter()
                .filter(|e| {
                    e.name == "serve.request.execute" && e.thread == b.thread && b.contains(e)
                })
                .count()
        })
        .sum();
    assert_eq!(covered, ids.len());
}
