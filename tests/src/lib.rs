//! Cross-crate integration tests for the `clgemm` workspace.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! shared helpers.

use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Scalar;
use clgemm_blas::{GemmType, Trans};

/// Build col-major operands of the right shapes for `op(A)op(B)` with
/// deterministic contents.
pub fn gemm_operands<T: Scalar>(
    ty: GemmType,
    m: usize,
    n: usize,
    k: usize,
) -> (Matrix<T>, Matrix<T>, Matrix<T>) {
    let (ar, ac) = match ty.ta {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (br, bc) = match ty.tb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    (
        Matrix::test_pattern(ar, ac, StorageOrder::ColMajor, 11),
        Matrix::test_pattern(br, bc, StorageOrder::ColMajor, 22),
        Matrix::test_pattern(m, n, StorageOrder::ColMajor, 33),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_shapes_follow_the_type() {
        let (a, b, c) = gemm_operands::<f64>(GemmType::TN, 4, 5, 6);
        assert_eq!((a.rows(), a.cols()), (6, 4));
        assert_eq!((b.rows(), b.cols()), (6, 5));
        assert_eq!((c.rows(), c.cols()), (4, 5));
    }
}
