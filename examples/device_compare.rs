//! Tune every Table I processor for both precisions and print the
//! cross-device comparison — a condensed Table II.
//!
//! ```text
//! cargo run --release -p clgemm --example device_compare
//! ```

use clgemm::prelude::*;

fn main() {
    println!(
        "{:<13} {:>5}  {:>9} {:>6}  {:>9} {:>6}   winner summary",
        "device", "CUs", "DGEMM GF", "eff", "SGEMM GF", "eff"
    );
    for id in DeviceId::TABLE1 {
        let dev = id.spec();
        let space = SearchSpace::for_device(&dev);
        let opts = SearchOpts {
            verify_winner: false,
            ..Default::default()
        };
        let d = tune(&dev, Precision::F64, &space, &opts);
        let s = tune(&dev, Precision::F32, &space, &opts);
        println!(
            "{:<13} {:>5}  {:>9.0} {:>5.0}%  {:>9.0} {:>5.0}%   {} | {}",
            dev.code_name,
            dev.compute_units,
            d.best.gflops,
            100.0 * d.efficiency,
            s.best.gflops,
            100.0 * s.efficiency,
            short(&d.best.params),
            short(&s.best.params),
        );
    }
    println!("\npaper (Table II): Tahiti 863/3047, Cayman 580/2167, Kepler 128/1440,");
    println!("                  Fermi 370/896, Sandy Bridge 64/140, Bulldozer 37/87");
}

fn short(p: &KernelParams) -> String {
    format!(
        "{}x{}x{} {} {},{}",
        p.mwg,
        p.nwg,
        p.kwg,
        p.algorithm.tag(),
        p.layout_a.tag(),
        p.layout_b.tag()
    )
}
