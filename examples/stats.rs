//! One-stop observability tour — and the CI dead-metric lint.
//!
//! Drives every instrumented layer (serving, tuned routine, tuner, VM)
//! against the process-global registry, then prints the same state
//! three ways: the human `StatsSnapshot` display, the Prometheus text
//! exposition and the JSON document `clgemm-report` consumes. Exits
//! non-zero if any registered metric was never exercised — a metric
//! nobody can move is a metric nobody should ship.
//!
//! ```text
//! cargo run --release -p clgemm-bench --example stats
//! ```

use clgemm::prelude::*;
use clgemm_blas::GemmType;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Priority, RejectReason, ServeConfig};
use clgemm_shim::Rng;
use clgemm_trace::Registry;

fn payload_f64(rng: &mut Rng, m: usize, n: usize, k: usize) -> GemmPayload {
    let order = StorageOrder::ColMajor;
    GemmPayload::F64 {
        alpha: 1.0,
        a: Matrix::test_pattern(m, k, order, rng.next_u64()),
        b: Matrix::test_pattern(k, n, order, rng.next_u64()),
        beta: 0.5,
        c: Matrix::test_pattern(m, n, order, rng.next_u64()),
    }
}

/// Valid parameters whose LDS footprint exceeds every built-in device's
/// local memory: committable to the tuning database, never launchable —
/// exactly what a stale entry looks like.
fn unlaunchable_params() -> KernelParams {
    use clgemm::params::{Algorithm, StrideMode};
    KernelParams {
        mwg: 128,
        nwg: 128,
        kwg: 64,
        mdimc: 16,
        ndimc: 16,
        kwi: 2,
        mdima: 16,
        ndimb: 16,
        vw: 2,
        stride_m: StrideMode::Unit,
        stride_n: StrideMode::Unit,
        local_a: true,
        local_b: true,
        layout_a: BlockLayout::Cbl,
        layout_b: BlockLayout::Cbl,
        algorithm: Algorithm::Ba,
        precision: Precision::F64,
    }
}

fn main() {
    clgemm_trace::set_enabled(true);
    let t0 = clgemm_trace::now_ns();

    // ---- persistent tuning database ------------------------------------
    // One db seeded with a stale (unlaunchable) entry per device for the
    // 64³ bucket — forcing the stale path — and a second db holding a
    // known-good winner, so the warm-restart hit path fires too.
    let tmp = std::env::temp_dir();
    let db_path = tmp.join(format!("clgemm-stats-db-{}.jsonl", std::process::id()));
    let hit_path = tmp.join(format!("clgemm-stats-hit-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&db_path);
    let _ = std::fs::remove_file(&hit_path);
    {
        use clgemm_serve::ShapeBucket;
        let mut db = TuningDb::open(&db_path).expect("fresh db");
        for dev in [DeviceId::Tahiti.spec(), DeviceId::Fermi.spec()] {
            let bucket = ShapeBucket::of(64, 64, 64);
            db.commit(
                DbKey {
                    fingerprint: dev.fingerprint(),
                    m: bucket.m,
                    n: bucket.n,
                    k: bucket.k,
                    gemm: "*".to_string(),
                    storage: Precision::F64.to_string(),
                },
                Measurement {
                    params: unlaunchable_params(),
                    n: 64,
                    gflops: 1.0,
                },
            )
            .expect("stale seed commits");
        }
        let mut good = TuningDb::open(&hit_path).expect("fresh db");
        let bucket = ShapeBucket::of(256, 256, 256);
        good.commit(
            DbKey {
                fingerprint: DeviceId::Tahiti.spec().fingerprint(),
                m: bucket.m,
                n: bucket.n,
                k: bucket.k,
                gemm: "*".to_string(),
                storage: Precision::F64.to_string(),
            },
            Measurement {
                params: clgemm::params::tahiti_dgemm_best(),
                n: 256,
                gflops: 800.0,
            },
        )
        .expect("good seed commits");
    }

    // ---- serving layer -------------------------------------------------
    // Default config → the process-global registry, so the serve
    // histograms land next to the routine/tuner/VM metrics below. The
    // predictor serves every cold bucket instantly; the background
    // refiner re-derives them with real searches off the serving path.
    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec(), DeviceId::Fermi.spec()],
        ServeConfig {
            max_batch: 4,
            predict: true,
            background_refine: true,
            tuning_db: Some(db_path.clone()),
            tenant_weights: vec![("inter".into(), 4), ("bulk".into(), 1)],
            ..Default::default()
        },
    );
    let mut rng = Rng::new(7);
    let shapes = [40usize, 96, 120];
    for i in 0..24 {
        let s = shapes[rng.range(0, shapes.len())];
        let tenant = if i % 3 == 0 { "inter" } else { "bulk" };
        let mut req =
            GemmRequest::new(GemmType::NN, payload_f64(&mut rng, s, s, s)).with_tenant(tenant);
        if i % 5 == 0 {
            req = req.with_priority(Priority::High);
        }
        // Generous deadlines complete and record positive slack.
        req = req.with_deadline(60.0);
        server.submit(req).expect("queue has room");
        if i % 8 == 7 {
            server.drain();
        }
    }
    // An unmeetable deadline is shed at admission — moving the shed
    // counter and the lateness histogram.
    let unmeetable =
        GemmRequest::new(GemmType::NN, payload_f64(&mut rng, 64, 64, 64)).with_deadline(0.0);
    assert!(
        matches!(
            server.submit(unmeetable),
            Err(RejectReason::DeadlineUnmeetable { .. })
        ),
        "a deadline of 0.0 must be shed at admission"
    );
    // Identical concurrent submissions coalesce onto one execution.
    let dup = GemmRequest::new(GemmType::NN, payload_f64(&mut rng, 64, 64, 64));
    server.submit(dup.clone()).expect("queue has room");
    server.submit(dup).expect("queue has room");
    server.drain();

    // ---- routine layer (hybrid path choice) ----------------------------
    let device = DeviceId::Tahiti.spec();
    let hybrid = HybridGemm::new(TunedGemm::new(
        device.clone(),
        clgemm::params::tahiti_dgemm_best(),
        clgemm::params::small_test_params(Precision::F32),
    ));
    for s in [24usize, 512] {
        let a = Matrix::<f64>::test_pattern(s, s, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(s, s, StorageOrder::ColMajor, 2);
        let mut c = Matrix::<f64>::zeros(s, s, StorageOrder::ColMajor);
        hybrid.gemm(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
    }

    // ---- strided-batched path ------------------------------------------
    // One small direct-path batch and one past-crossover packed batch,
    // both with f16 storage: together they move the batch-size
    // histogram, both path counters, the convert-on-pack counter and
    // the serve-side drift gauge + entries histogram.
    {
        use clgemm_serve::{BatchedPayload, BatchedRequest};
        let mut run = |batch: usize, m: usize, n: usize, k: usize| {
            let desc = GemmBatch::packed(GemmType::NN, batch, m, n, k);
            let fill = |seed: usize, len: usize| -> Vec<F16> {
                (0..len)
                    .map(|i| F16::from_f64(((i * 7 + seed) % 16) as f64 * 0.25 - 2.125))
                    .collect()
            };
            let req = BatchedRequest::new(
                desc,
                BatchedPayload::F16 {
                    alpha: 1.0,
                    a: fill(1, batch * m * k),
                    b: fill(2, batch * k * n),
                    beta: 0.0,
                    c: fill(3, batch * m * n),
                },
            );
            server.run_batched(req).expect("batched call serves")
        };
        let direct = run(6, 32, 32, 32);
        assert_eq!(direct.run.path, BatchPath::Direct);
        let packed = run(2, DIRECT_BATCH_MAX + 8, 16, 16);
        assert_eq!(packed.run.path, BatchPath::Packed);
        assert!(packed.run.widened, "f16 storage must widen on pack");
    }

    // Block on the background refiner: every predicted cold start above
    // gets re-derived by a real (smoke-sized) search, upgrading the
    // cache entries to `Refined`, persisting them into the tuning db,
    // and moving the refine histogram + predicted-vs-tuned gauge.
    let refined = server.wait_refines();
    assert!(refined > 0, "cold starts must enqueue background refines");

    // ---- warm restart from the tuning database -------------------------
    // A second server over the pre-seeded "good" db: the very first
    // request for the 256³ bucket resolves from disk — no predictor, no
    // tuner — which is the whole point of persisting measurements.
    {
        let mut warm = GemmServer::new(
            vec![DeviceId::Tahiti.spec()],
            ServeConfig {
                predict: true,
                background_refine: false,
                tuning_db: Some(hit_path.clone()),
                ..Default::default()
            },
        );
        let mut rng = Rng::new(11);
        warm.submit(GemmRequest::new(
            GemmType::NN,
            payload_f64(&mut rng, 200, 200, 200),
        ))
        .expect("queue has room");
        warm.drain();
        let snap = warm.stats();
        assert_eq!(snap.db_hits, 1, "256³ bucket must warm from disk");
        assert_eq!(snap.predict_cold_starts, 0, "db hit preempts predictor");
    }

    // ---- tuner + VM layers ---------------------------------------------
    // A smoke-sized search with winner verification: the verify step
    // compiles the winning kernel and runs it through the fast VM, so
    // one call exercises the tuner counters AND the vm_* bridge.
    let space = SearchSpace::smoke(&device);
    let opts = SearchOpts {
        top_k: 10,
        max_sweep_points: 8,
        predictor_prune: true,
        ..Default::default()
    };
    let result = tune(&device, Precision::F64, &space, &opts);
    assert!(result.verified, "winner must verify in the VM");

    // ---- clc compiler pipeline -----------------------------------------
    // Compile and launch a small kernel on the default (compiled)
    // engine so the `clc.compile` span and the per-pass clc_compile_*
    // counters move and stay out of the dead-metric list.
    {
        use clgemm_clc::{Arg, BufData, ExecOptions, NdRange, Program};
        let src = r"__kernel void saxpy(__global const float* x,
                                        __global float* y, float a) {
            int i = get_global_id(0);
            y[i] = a * x[i] + y[i];
        }";
        let prog = Program::compile(src).expect("saxpy compiles");
        let kernel = prog.kernel("saxpy").expect("kernel present");
        assert!(
            kernel.compiled().trace.is_some(),
            "saxpy must take the compiled engine, not a fallback: {:?}",
            kernel.compiled().trace_decline
        );
        let n = 256usize;
        let mut bufs = vec![
            BufData::F32((0..n).map(|i| i as f32 / 7.0).collect()),
            BufData::F32(vec![1.0; n]),
        ];
        let args = [Arg::Buf(0), Arg::Buf(1), Arg::F32(0.5)];
        kernel
            .launch(
                NdRange::d1(n, 64),
                &args,
                &mut bufs,
                &ExecOptions::default(),
            )
            .expect("compiled-engine launch");
    }

    // ---- one snapshot, three renderings --------------------------------
    println!("{}", server.stats());

    let snap = Registry::global().snapshot();
    println!("---- prometheus ----");
    println!("{}", snap.to_prometheus());
    println!("---- json ----");
    println!("{}", snap.to_json().to_string_pretty());

    let spans = clgemm_trace::ring::events_since(t0);
    let dropped = clgemm_trace::ring::dropped_events();
    println!("---- spans ----");
    println!("{} span events recorded ({dropped} dropped)", spans.len());
    for name in [
        "serve.batch.execute",
        "serve.batched.execute",
        "routine.gemm",
        "routine.gemm_batch",
        "tuner.run",
        "clc.launch",
        "clc.compile",
    ] {
        let n = spans.iter().filter(|e| e.name == name).count();
        println!("  {name:<22} {n}");
        assert!(n > 0, "expected at least one {name} span");
    }

    // ---- the lint -------------------------------------------------------
    // Key cross-layer metrics must exist and have moved…
    for metric in [
        "routine_gemm_total",
        "tuner_runs_total",
        "vm_instrs_total",
        "clc_compile_total",
        "clc_compile_ops_in_total",
        "clc_compile_ops_out_total",
        "routine_convert_on_pack_total",
        "routine_batch_path_total{path=\"direct\"}",
        "routine_batch_path_total{path=\"packed\"}",
        "predict_cold_start_total",
        "tuning_db_hit_total",
        "tuning_db_miss_total",
        "tuning_db_stale_total",
        "serve_coalesce_hits_total",
    ] {
        assert!(
            snap.counter(metric).is_some_and(|v| v > 0),
            "{metric} missing or zero"
        );
    }
    assert!(snap.hist("serve_queue_wait_seconds").expect("hist").count > 0);
    assert!(
        snap.hist("serve_deadline_slack_seconds")
            .expect("hist")
            .count
            > 0
    );
    assert!(
        snap.hist("serve_deadline_lateness_seconds")
            .expect("hist")
            .count
            > 0,
        "the shed request's lateness must be observed"
    );
    assert!(snap.hist("routine_batch_size").expect("hist").count > 0);
    assert!(snap.hist("serve_batched_entries").expect("hist").count > 0);
    assert!(
        snap.hist("tuner_background_refine_seconds")
            .expect("hist")
            .count
            > 0
    );
    // Labeled metrics whose exact label set is scheduler-dependent:
    // a prefix scan over the snapshot suffices.
    for prefix in [
        "predict_vs_tuned_gflops_ratio{",
        "tuner_pruned_total{",
        "serve_admitted_total{tenant=",
        "serve_shed_total{reason=",
    ] {
        assert!(
            snap.entries
                .iter()
                .any(|(name, _)| name.starts_with(prefix)),
            "no metric with prefix {prefix}"
        );
    }

    // …and nothing registered may have stayed at rest.
    let dead = Registry::global().dead_metrics();
    assert!(
        dead.is_empty(),
        "dead metrics (registered but never exercised): {dead:?}"
    );
    println!(
        "\ndead-metric lint: {} metrics, all live",
        snap.entries.len()
    );

    let _ = std::fs::remove_file(&db_path);
    let _ = std::fs::remove_file(&hit_path);
}
