//! Run a mixed GEMM workload through the serving subsystem and print
//! the serving counters.
//!
//! ```text
//! cargo run --release -p clgemm-serve --example serve
//! cargo run --release -p clgemm-serve --example serve -- 64 4   # requests, devices
//! ```

use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{
    GemmPayload, GemmRequest, GemmServer, Outcome, Priority, RejectReason, ServeConfig,
};
use clgemm_shim::Rng;

fn usage(bad: &str) -> ! {
    eprintln!("error: bad argument {bad:?}");
    eprintln!("usage: serve [n_requests >= 1] [n_devices, 1..=7]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_requests: usize = match args.first() {
        None => 48,
        Some(a) => match a.parse() {
            Ok(n) if n >= 1 => n,
            _ => usage(a),
        },
    };
    let n_devices: usize = match args.get(1) {
        None => 3,
        Some(a) => match a.parse() {
            Ok(n) if (1..=7).contains(&n) => n,
            _ => usage(a),
        },
    };

    let devices: Vec<_> = DeviceId::ALL
        .iter()
        .take(n_devices)
        .map(|id| id.spec())
        .collect();
    println!("serving {n_requests} requests on {n_devices} device(s):");
    for d in &devices {
        println!("  {}", d.code_name);
    }

    let mut server = GemmServer::new(
        devices,
        ServeConfig {
            max_batch: 4,
            cache_capacity: 24,
            // An interactive tenant gets 4× the bulk tenant's share of
            // the fair queue under contention.
            tenant_weights: vec![("inter".into(), 4), ("bulk".into(), 1)],
            ..Default::default()
        },
    );

    // A skewed workload: a few popular shape buckets (as a serving
    // workload would have), mixed precisions and transpose types, two
    // tenants, an occasional urgent request and an occasional
    // unmeetable deadline (shed at admission, before queueing).
    let mut rng = Rng::new(2012);
    let popular = [40usize, 96, 120, 200];
    let mut submitted = 0usize;
    let mut shed_at_admission = 0usize;
    while submitted < n_requests {
        // Submit in bursts, draining between them, so later bursts hit
        // the warm cache and land on already-loaded device queues.
        let burst = (n_requests - submitted).min(12);
        for _ in 0..burst {
            let n = popular[rng.range(0, popular.len())];
            let ty = GemmType::ALL[rng.range(0, 4)];
            let order = StorageOrder::ColMajor;
            let payload = if rng.range(0, 3) == 0 {
                GemmPayload::F32 {
                    alpha: 1.0,
                    a: Matrix::test_pattern(n, n, order, rng.next_u64()),
                    b: Matrix::test_pattern(n, n, order, rng.next_u64()),
                    beta: 0.5,
                    c: Matrix::test_pattern(n, n, order, rng.next_u64()),
                }
            } else {
                GemmPayload::F64 {
                    alpha: 1.0,
                    a: Matrix::test_pattern(n, n, order, rng.next_u64()),
                    b: Matrix::test_pattern(n, n, order, rng.next_u64()),
                    beta: 0.5,
                    c: Matrix::test_pattern(n, n, order, rng.next_u64()),
                }
            };
            let tenant = if rng.range(0, 3) == 0 {
                "inter"
            } else {
                "bulk"
            };
            let mut req = GemmRequest::new(ty, payload).with_tenant(tenant);
            if rng.range(0, 8) == 0 {
                req = req.with_priority(Priority::High);
            }
            if rng.range(0, 16) == 0 {
                req = req.with_deadline(0.0); // always unmeetable: exercises shedding
            }
            match server.submit(req) {
                Ok(_) => submitted += 1,
                Err(RejectReason::DeadlineUnmeetable { .. } | RejectReason::Overloaded(_)) => {
                    shed_at_admission += 1; // admission control did its job
                }
                Err(RejectReason::QueueFull(_)) => break, // backpressure: drain and retry
            }
        }
        server.drain();
    }

    let responses = server.take_responses();
    let served = responses
        .iter()
        .filter(|r| r.outcome == Outcome::Completed)
        .count();
    let shed = responses.len() - served;
    let virtual_s: f64 = server
        .workers()
        .iter()
        .map(clgemm_sim::DeviceWorker::busy_until)
        .fold(0.0, f64::max);
    let flops: f64 = responses
        .iter()
        .filter(|r| r.outcome == Outcome::Completed)
        .map(|r| r.run.gflops * r.run.total * 1e9)
        .sum();

    println!();
    println!("{}", server.stats());
    println!(
        "served {served} requests ({shed} shed in-batch, {shed_at_admission} shed at admission) \
         in {:.3} virtual ms — {:.1} aggregate GFlop/s across the pool",
        virtual_s * 1e3,
        if virtual_s > 0.0 {
            flops / virtual_s / 1e9
        } else {
            0.0
        }
    );

    // Tiny workloads can legitimately miss every cache lookup or fit in
    // one batch; only demand the full demonstration at realistic sizes.
    if n_requests >= 24 {
        let stats = server.stats();
        assert!(stats.cache_hits > 0, "example must demonstrate cache hits");
        assert!(
            stats.devices_used() >= 2.min(n_devices),
            "example must use the device pool"
        );
        assert!(
            stats.max_batch > 1,
            "example must coalesce at least one batch"
        );
    }
}
