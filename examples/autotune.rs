//! Auto-tune GEMM for one device and print a Table-II-style summary.
//!
//! ```text
//! cargo run --release -p clgemm --example autotune -- fermi sgemm
//! cargo run --release -p clgemm --example autotune -- tahiti dgemm --smoke
//! ```

use clgemm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device_name = args.first().map(String::as_str).unwrap_or("tahiti");
    let precision = match args.get(1).map(String::as_str).unwrap_or("dgemm") {
        "sgemm" | "f32" | "single" => Precision::F32,
        _ => Precision::F64,
    };
    let smoke = args.iter().any(|a| a == "--smoke");

    let device: DeviceSpec = match device_name.parse::<DeviceId>() {
        Ok(id) => id.spec(),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("known devices: tahiti cayman kepler fermi sandybridge bulldozer cypress");
            std::process::exit(2);
        }
    };

    let space = if smoke {
        SearchSpace::smoke(&device)
    } else {
        SearchSpace::for_device(&device)
    };
    println!("tuning {precision} on {device} ...");
    let t0 = std::time::Instant::now();
    let res = tune(&device, precision, &space, &SearchOpts::default());
    println!(
        "searched {} candidates ({} unlaunchable) in {:.1}s; winner verified: {}",
        res.candidates,
        res.failures,
        t0.elapsed().as_secs_f64(),
        res.verified
    );

    println!(
        "\nbest kernel: {:.1} GFlop/s at N={} ({:.1}% of listed peak)",
        res.best.gflops,
        res.best.n,
        100.0 * res.efficiency
    );
    println!("  {}", res.best.params.describe());

    println!("\ntop {} kernels:", res.top.len().min(10));
    for (rank, m) in res.top.iter().take(10).enumerate() {
        println!(
            "  #{:<2} {:>8.1} GF  {}",
            rank + 1,
            m.gflops,
            m.params.describe()
        );
    }

    println!("\nwinner across sizes:");
    let show_every = (res.sweep.len() / 12).max(1);
    for (i, (n, g)) in res.sweep.iter().enumerate() {
        if i % show_every == 0 {
            println!("  N={n:<6} {g:>8.1} GF");
        }
    }
}
