//! Define a *custom* device profile and let the auto-tuner adapt to it —
//! the performance-portability claim of the paper, demonstrated on
//! hardware that never existed.
//!
//! The custom device is a bandwidth-starved GPU: Tahiti's ALUs with a
//! quarter of its memory bandwidth. The tuner should respond by choosing
//! larger work-group tiles (higher arithmetic intensity) than it picks
//! for the real Tahiti.
//!
//! ```text
//! cargo run --release -p clgemm --example custom_device
//! ```

use clgemm::prelude::*;

fn main() {
    let tahiti = DeviceId::Tahiti.spec();

    let mut starved = tahiti.clone();
    starved.code_name = "Tahiti-LowBW".into();
    starved.product_name = "hypothetical bandwidth-starved GCN".into();
    starved.global_bw_gbs = tahiti.global_bw_gbs / 4.0; // 66 GB/s

    let opts = SearchOpts {
        verify_winner: false,
        ..Default::default()
    };
    let mut results = Vec::new();
    for dev in [&tahiti, &starved] {
        let space = SearchSpace::for_device(dev);
        let res = tune(dev, Precision::F64, &space, &opts);
        println!(
            "{:<13} BW {:>5.0} GB/s -> {:>6.0} GF ({:>4.1}% peak)  tile {}x{} (intensity {:.1} flop/B)",
            dev.code_name,
            dev.global_bw_gbs,
            res.best.gflops,
            100.0 * res.efficiency,
            res.best.params.mwg,
            res.best.params.nwg,
            intensity(&res.best.params),
        );
        println!("   {}", res.best.params.describe());
        results.push(res);
    }

    let base = intensity(&results[0].best.params);
    let starved_i = intensity(&results[1].best.params);
    println!("\narithmetic intensity chosen: {base:.1} -> {starved_i:.1} flop/byte");
    if starved_i > base {
        println!(
            "the tuner responded to the bandwidth cut by picking a larger C tile, as expected"
        );
    } else {
        println!("note: intensities are equal — the starved device is still compute-bound at this tile size");
    }
}

/// Arithmetic intensity of a work-group tile: flops per unique DRAM byte.
fn intensity(p: &KernelParams) -> f64 {
    let e = p.elem_bytes() as f64;
    2.0 * (p.mwg * p.nwg) as f64 / ((p.mwg + p.nwg) as f64 * e)
}
