//! Quickstart: tune a GEMM kernel for the simulated Tahiti GPU and run a
//! multiplication through the tuned routine.
//!
//! ```text
//! cargo run --release -p clgemm --example quickstart
//! ```

use clgemm::prelude::*;

fn main() {
    // 1. Pick a device — the AMD Tahiti GPU (Radeon HD 7970), the
    //    paper's fastest processor.
    let device = DeviceId::Tahiti.spec();
    println!("device: {device}");
    println!(
        "  peak: {:.0} GF DGEMM / {:.0} GF SGEMM",
        device.peak_gflops(true),
        device.peak_gflops(false)
    );

    // 2. Tune. The default space enumerates a few hundred thousand
    //    candidates; the deterministic timing model measures them in
    //    about a second.
    let space = SearchSpace::for_device(&device);
    let opts = SearchOpts::default();
    println!("\ntuning DGEMM ...");
    let dgemm = tune(&device, Precision::F64, &space, &opts);
    println!(
        "  winner: {:.0} GFlop/s ({:.0}% of peak), {} candidates, verified={}",
        dgemm.best.gflops,
        100.0 * dgemm.efficiency,
        dgemm.candidates,
        dgemm.verified
    );
    println!("  params: {}", dgemm.best.params.describe());

    println!("tuning SGEMM ...");
    let sgemm = tune(&device, Precision::F32, &space, &opts);
    println!(
        "  winner: {:.0} GFlop/s ({:.0}% of peak)",
        sgemm.best.gflops,
        100.0 * sgemm.efficiency
    );

    // 3. Use the winners as a BLAS-like routine. Sizes need not be
    //    multiples of anything — the routine zero-pads.
    let tuned = TunedGemm::new(device, dgemm.best.params, sgemm.best.params);
    let (m, n, k) = (500, 300, 400);
    let a = Matrix::<f64>::test_pattern(m, k, StorageOrder::ColMajor, 1);
    let b = Matrix::<f64>::test_pattern(k, n, StorageOrder::ColMajor, 2);
    let mut c = Matrix::<f64>::zeros(m, n, StorageOrder::ColMajor);
    let run = tuned.gemm(GemmType::NN, 1.0, &a, &b, 0.0, &mut c);
    println!("\nDGEMM NN {m}x{n}x{k}:");
    println!("  kernel          {:>9.3} ms", run.kernel * 1e3);
    println!("  pack A          {:>9.3} ms", run.pack_a * 1e3);
    println!("  pack B          {:>9.3} ms", run.pack_b * 1e3);
    println!("  stage/merge C   {:>9.3} ms", run.stage_c * 1e3);
    println!(
        "  total           {:>9.3} ms  -> {:.0} GFlop/s",
        run.total * 1e3,
        run.gflops
    );

    // 4. Check the result against the reference implementation.
    let mut c_ref = Matrix::<f64>::zeros(m, n, StorageOrder::ColMajor);
    clgemm_blas::gemm_ref::gemm_parallel(GemmType::NN, 1.0, &a, &b, 0.0, &mut c_ref);
    let err = clgemm_blas::max_rel_error(&c, &c_ref);
    println!("\nmax relative error vs reference: {err:.2e}");
    assert!(err < 1e-10);
    println!("OK");
}
