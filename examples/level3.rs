//! GEMM as a building block: a GEMM-based Level-3 BLAS routine.
//!
//! The paper's introduction motivates GEMM as *the* building block of
//! LAPACK and the other Level-3 BLAS (Kågström et al.'s GEMM-based
//! approach). This example implements a blocked SYRK,
//! `C ← α·A·Aᵀ + β·C` (symmetric rank-k update, lower triangle), by
//! routing every off-diagonal block through the tuned GEMM routine — the
//! way a downstream user would consume this library.
//!
//! ```text
//! cargo run --release -p clgemm --example level3
//! ```

use clgemm::prelude::*;

/// Extract a sub-matrix copy (a real BLAS would use views; copies keep
/// the example simple).
fn block(a: &Matrix<f64>, r0: usize, rows: usize, c0: usize, cols: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, StorageOrder::ColMajor, |i, j| {
        a.at(r0 + i, c0 + j)
    })
}

/// Blocked GEMM-based SYRK (lower): `C ← α·A·Aᵀ + β·C` for `n × k` A.
/// Off-diagonal blocks are NT GEMMs through the tuned routine; diagonal
/// blocks fall back to a small symmetric update on the host.
fn syrk_lower(
    tuned: &TunedGemm,
    alpha: f64,
    a: &Matrix<f64>,
    beta: f64,
    c: &mut Matrix<f64>,
    bs: usize,
) -> usize {
    let n = a.rows();
    let k = a.cols();
    assert_eq!(c.rows(), n);
    assert_eq!(c.cols(), n);
    let mut gemm_calls = 0;
    let mut i0 = 0;
    while i0 < n {
        let ib = bs.min(n - i0);
        // Off-diagonal blocks C[i][j] for j < i: a GEMM each.
        let mut j0 = 0;
        while j0 < i0 {
            let jb = bs.min(n - j0);
            let ai = block(a, i0, ib, 0, k);
            let aj = block(a, j0, jb, 0, k);
            let mut cij = block(c, i0, ib, j0, jb);
            tuned.gemm(GemmType::NT, alpha, &ai, &aj, beta, &mut cij);
            gemm_calls += 1;
            for j in 0..jb {
                for i in 0..ib {
                    *c.at_mut(i0 + i, j0 + j) = cij.at(i, j);
                }
            }
            j0 += jb;
        }
        // Diagonal block: small host-side symmetric update.
        for j in 0..ib {
            for i in j..ib {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc = a.at(i0 + i, p).mul_add(a.at(i0 + j, p), acc);
                }
                let old = c.at(i0 + i, i0 + j);
                *c.at_mut(i0 + i, i0 + j) = alpha.mul_add(acc, beta * old);
            }
        }
        i0 += ib;
    }
    gemm_calls
}

fn main() {
    // Tune once (thinned space keeps the example snappy; use
    // SearchSpace::for_device for the full run).
    let device = DeviceId::Tahiti.spec();
    let space = SearchSpace::smoke(&device);
    let opts = SearchOpts {
        verify_winner: false,
        ..Default::default()
    };
    let tuned = TunedGemm::tune(&device, &space, &opts);
    println!(
        "tuned DGEMM on {}: {}",
        device.code_name,
        tuned.params(Precision::F64).describe()
    );

    let (n, k, bs) = (192usize, 96usize, 64usize);
    let a = Matrix::<f64>::test_pattern(n, k, StorageOrder::ColMajor, 1);
    let c0 = Matrix::<f64>::test_pattern(n, n, StorageOrder::ColMajor, 2);

    let mut c = c0.clone();
    let calls = syrk_lower(&tuned, 1.0, &a, 0.5, &mut c, bs);
    println!("SYRK n={n} k={k}: {calls} GEMM calls on {bs}x{bs} blocks");

    // Verify the lower triangle against a naive SYRK.
    let mut max_err = 0.0f64;
    for j in 0..n {
        for i in j..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc = a.at(i, p).mul_add(a.at(j, p), acc);
            }
            let want = 1.0f64.mul_add(acc, 0.5 * c0.at(i, j));
            max_err = max_err.max((c.at(i, j) - want).abs() / want.abs().max(1.0));
        }
    }
    println!("max relative error in lower triangle: {max_err:.2e}");
    assert!(max_err < 1e-12);
    println!("OK — Level-3 BLAS on top of the tuned GEMM works");
}
