//! Dump the OpenCL C source the generator emits.
//!
//! ```text
//! cargo run -p clgemm --example codegen_dump                # paper's Tahiti DGEMM winner
//! cargo run -p clgemm --example codegen_dump -- pl          # PL variant of a small kernel
//! cargo run -p clgemm --example codegen_dump -- db          # DB variant
//! ```

use clgemm::codegen::{generate, source_stats, KERNEL_NAME};
use clgemm::params::{small_test_params, tahiti_dgemm_best, Algorithm};
use clgemm::prelude::*;
use clgemm_clc::Program;

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_default();
    let params = match variant.as_str() {
        "pl" => {
            let mut p = small_test_params(Precision::F64);
            p.algorithm = Algorithm::Pl;
            p
        }
        "db" => {
            let mut p = small_test_params(Precision::F64);
            p.algorithm = Algorithm::Db;
            p
        }
        "small" => small_test_params(Precision::F32),
        _ => tahiti_dgemm_best(),
    };

    let gen = generate(&params).expect("valid parameter set");
    println!("// parameters: {}", params.describe());
    println!(
        "// resources: {} register slots/work-item, {} B local memory/work-group",
        params.regs_per_wi(),
        params.lds_bytes()
    );
    let stats = source_stats(&gen);
    println!(
        "// source: {} lines, {} bytes, {} mad() sites",
        stats.lines, stats.bytes, stats.mads
    );

    // Prove the emitted source survives the frontend before printing it.
    let prog = Program::compile(&gen.source).expect("generated source must compile");
    let kernel = prog.kernel(KERNEL_NAME).expect("kernel present");
    println!("// compiles: yes (clgemm-clc frontend)\n");
    println!("{}", gen.source);

    if std::env::args().any(|a| a == "--disasm") {
        println!("\n// ---- lowered bytecode ----");
        println!("{}", clgemm_clc::disassemble(kernel.compiled()));
    }
}
